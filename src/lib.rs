//! Umbrella crate for the FUNNEL reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so the examples and integration
//! tests can `use funnel_suite::...`. Library users should depend on the
//! individual crates (most commonly [`funnel_core`]) directly.

#![forbid(unsafe_code)]

pub use funnel_core as core;
pub use funnel_detect as detect;
pub use funnel_diag as diag;
pub use funnel_did as did;
pub use funnel_eval as eval;
pub use funnel_linalg as linalg;
pub use funnel_obs as obs;
pub use funnel_sim as sim;
pub use funnel_sst as sst;
pub use funnel_timeseries as timeseries;
pub use funnel_topology as topology;
