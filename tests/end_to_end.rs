//! Cross-crate integration tests: the full FUNNEL pipeline over simulated
//! worlds, exercising every crate together.

use funnel_suite::core::pipeline::{AssessmentMode, Funnel};
use funnel_suite::core::FunnelConfig;
use funnel_suite::detect::delay::{detection_delay, DelayOutcome};
use funnel_suite::sim::effect::{ChangeEffect, EffectScope, ExternalShock};
use funnel_suite::sim::kpi::KpiKind;
use funnel_suite::sim::world::{SimConfig, WorldBuilder};
use funnel_suite::timeseries::inject::ChangeShape;
use funnel_suite::topology::change::{ChangeKind, LaunchMode};
use funnel_suite::topology::impact::Entity;

/// A dark launch with a real regression: detected, attributed, and the
/// detection delay is operationally small.
#[test]
fn regression_detected_attributed_and_fast() {
    let mut b = WorldBuilder::new(SimConfig::days(11, 8));
    let svc = b.add_service("it.web", 6).unwrap();
    let minute = 7 * 1440 + 11 * 60;
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        90.0,
    );
    let change = b
        .deploy_change(ChangeKind::Upgrade, svc, 2, minute, effect, "slow build")
        .unwrap();
    let world = b.build();

    let funnel = Funnel::paper_default();
    let a = funnel.assess_change(&world, change).unwrap();
    assert!(a.has_impact());

    let item = a
        .caused_items()
        .find(|i| {
            i.key.kind == KpiKind::PageViewResponseDelay
                && matches!(i.key.entity, Entity::Instance(_))
        })
        .expect("treated instance delay attributed");
    let event = item.detection.expect("detected");
    let outcome = detection_delay(&[event], minute);
    match outcome {
        DelayOutcome::Detected { minutes } => {
            assert!(minutes <= 30, "delay {minutes} min too long");
        }
        DelayOutcome::Missed => panic!("detection exists but delay says missed"),
    }
}

/// A change with no effect on a service hit by an external shock: the
/// detector fires, DiD exonerates — no impact attributed.
#[test]
fn external_shock_not_blamed_on_software() {
    let mut b = WorldBuilder::new(SimConfig::days(13, 8));
    let svc = b.add_service("it.shocked", 6).unwrap();
    let minute = 7 * 1440 + 600;
    let change = b
        .deploy_change(
            ChangeKind::ConfigChange,
            svc,
            2,
            minute,
            ChangeEffect::none(),
            "noop",
        )
        .unwrap();
    b.add_shock(ExternalShock {
        services: vec![svc],
        kind: KpiKind::AccessFailureCount,
        shape: ChangeShape::LevelShift { delta: 40.0 },
        onset: minute + 10,
    });
    let world = b.build();

    let funnel = Funnel::paper_default();
    let a = funnel.assess_change(&world, change).unwrap();
    // The shock is detected on failure-count KPIs...
    let failure_detections = a
        .items
        .iter()
        .filter(|i| i.key.kind == KpiKind::AccessFailureCount && i.detection.is_some())
        .count();
    assert!(failure_detections > 0, "shock invisible to the detector?");
    // ...but none of it is attributed to the software change.
    let failure_blamed = a
        .caused_items()
        .filter(|i| i.key.kind == KpiKind::AccessFailureCount)
        .count();
    assert_eq!(failure_blamed, 0, "external shock wrongly attributed");
}

/// Full launch on a seasonal KPI: the seasonal-history mode handles the
/// missing control group, and the diurnal pattern alone is never blamed.
#[test]
fn full_launch_seasonal_mode() {
    let mut b = WorldBuilder::new(SimConfig::days(17, 9));
    let svc = b.add_service("it.seasonal", 5).unwrap();
    let minute = 8 * 1440 + 9 * 60; // morning ramp of day 8
                                    // Change 1: no effect, full launch, deployed on the steep diurnal rise.
    let clean = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            usize::MAX,
            minute,
            ChangeEffect::none(),
            "harmless",
        )
        .unwrap();
    // Change 2: real PVC drop, full launch, an hour and a half later.
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewCount,
        EffectScope::TreatedInstances,
        -500.0,
    );
    let buggy = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            usize::MAX,
            minute + 90,
            effect,
            "lossy",
        )
        .unwrap();
    let world = b.build();

    let mut config = FunnelConfig::paper_default();
    config.history_days = 7;
    let funnel = Funnel::new(config);

    let a_clean = funnel.assess_change(&world, clean).unwrap();
    assert!(
        a_clean
            .items
            .iter()
            .all(|i| i.mode == AssessmentMode::SeasonalHistory),
        "full launch must use the seasonal mode everywhere"
    );
    let pvc_blamed = a_clean
        .caused_items()
        .filter(|i| i.key.kind == KpiKind::PageViewCount)
        .count();
    assert_eq!(pvc_blamed, 0, "diurnal ramp blamed on a harmless change");

    let a_buggy = funnel.assess_change(&world, buggy).unwrap();
    assert!(
        a_buggy
            .caused_items()
            .any(|i| i.key.kind == KpiKind::PageViewCount),
        "real PVC drop missed"
    );
}

/// Launch-mode bookkeeping: dark launches expose a control group, full
/// launches do not; the impact set reflects §3.1 exactly.
#[test]
fn impact_set_shapes() {
    let mut b = WorldBuilder::new(SimConfig::days(23, 8));
    let a = b.add_service("it.a", 6).unwrap();
    let rel = b.add_service("it.b", 3).unwrap();
    b.relate(a, rel).unwrap();
    let dark = b
        .deploy_change(
            ChangeKind::Upgrade,
            a,
            2,
            7 * 1440 + 100,
            ChangeEffect::none(),
            "dark",
        )
        .unwrap();
    let world = b.build();

    let record = world.change_log().get(dark).unwrap();
    assert_eq!(record.launch, LaunchMode::Dark);
    let funnel = Funnel::paper_default();
    let assessment = funnel.assess_change(&world, dark).unwrap();
    let set = &assessment.impact_set;
    assert_eq!(set.tinstances.len(), 2);
    assert_eq!(set.cinstances.len(), 4);
    assert_eq!(set.affected_services, vec![rel]);
    // Monitored items: 2 servers × 4 + 2 instances × 3 + changed service × 3
    // + affected service × 3.
    assert_eq!(assessment.items.len(), 8 + 6 + 3 + 3);
    // Affected-service items are assessed seasonally even under dark launch.
    for item in &assessment.items {
        if item.key.entity == Entity::Service(rel) {
            assert_eq!(item.mode, AssessmentMode::SeasonalHistory);
        }
    }
}

/// Determinism across the whole stack: same seed ⇒ identical assessments.
#[test]
fn pipeline_is_deterministic() {
    let build = || {
        let mut b = WorldBuilder::new(SimConfig::days(31, 8));
        let svc = b.add_service("it.det", 4).unwrap();
        let effect = ChangeEffect::none().with_ramp(
            KpiKind::MemoryUtilization,
            EffectScope::TreatedServers,
            18.0,
            25,
        );
        let id = b
            .deploy_change(ChangeKind::Upgrade, svc, 2, 7 * 1440 + 60, effect, "leak")
            .unwrap();
        (b.build(), id)
    };
    let funnel = Funnel::paper_default();
    let (w1, c1) = build();
    let (w2, c2) = build();
    let a1 = funnel.assess_change(&w1, c1).unwrap();
    let a2 = funnel.assess_change(&w2, c2).unwrap();
    assert_eq!(a1.items.len(), a2.items.len());
    for (x, y) in a1.items.iter().zip(a2.items.iter()) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.caused, y.caused);
        assert_eq!(
            x.detection.map(|d| d.declared_at),
            y.detection.map(|d| d.declared_at)
        );
    }
}

/// The store-backed path equals the world-backed path: materialize the
/// world into the central store and assess from there.
#[test]
fn store_backed_assessment_matches_world_backed() {
    let mut b = WorldBuilder::new(SimConfig::days(37, 8));
    let svc = b.add_service("it.store", 4).unwrap();
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::AccessFailureCount,
        EffectScope::TreatedInstances,
        30.0,
    );
    let id = b
        .deploy_change(ChangeKind::Upgrade, svc, 2, 7 * 1440 + 200, effect, "flaky")
        .unwrap();
    let world = b.build();
    let store = world.materialize().unwrap();

    let funnel = Funnel::paper_default();
    let record = world.change_log().get(id).unwrap();
    let from_world = funnel.assess_change(&world, id).unwrap();
    let from_store = funnel
        .assess_change_with(&store, world.topology(), record, &|s| {
            world.kinds_of_service(s).to_vec()
        })
        .unwrap();
    assert_eq!(from_world.items.len(), from_store.items.len());
    for (a, b) in from_world.items.iter().zip(from_store.items.iter()) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.caused, b.caused);
    }
}
