//! Integration tests pinning the paper's qualitative claims on small,
//! fast cohorts — the claims Table 1 / Fig. 5 make at full scale, checked
//! here in miniature on every `cargo test` run.

use funnel_suite::detect::delay::detection_delay;
use funnel_suite::eval::cohort::{evaluate_cohort, CohortOptions};
use funnel_suite::eval::methods::{Method, MethodRunner};
use funnel_suite::sim::scenario::evaluation_world;
use funnel_suite::timeseries::generate::{KpiClass, KpiGenerator};
use funnel_suite::timeseries::inject::InjectedChange;
use funnel_suite::timeseries::series::TimeSeries;

/// Claim (§1, Table 1): DiD lifts precision over the raw improved SST
/// without sacrificing accuracy.
#[test]
fn did_lifts_precision_over_raw_detector() {
    let (world, mut meta) = evaluation_world(9);
    meta.changes.truncate(16);
    let opts = CohortOptions {
        methods: vec![Method::Funnel, Method::ImprovedSst],
        threads: 4,
        history_days: 6,
    };
    let res = evaluate_cohort(&world, &meta, &opts);
    let f = res.method(Method::Funnel).unwrap().scaled_overall(1.0);
    let s = res.method(Method::ImprovedSst).unwrap().scaled_overall(1.0);
    let fr = f.rates();
    let sr = s.rates();
    assert!(fr.accuracy >= sr.accuracy - 1e-9);
    assert!(
        f.fp < s.fp || s.fp == 0.0,
        "DiD should remove false positives: {} vs {}",
        f.fp,
        s.fp
    );
}

/// Claim (§4.4): CUSUM's accumulation needs more post-change samples than
/// SST before it can declare, i.e. a longer detection delay on the same
/// moderate shift.
#[test]
fn cusum_slower_than_funnel_on_moderate_shift() {
    let gen = KpiGenerator::for_class(KpiClass::Stationary, 200.0);
    let onset = 500u64;
    let sigma = gen.noise_frac * gen.base_level / (1.0 - gen.ar_coeff * gen.ar_coeff).sqrt();
    let mut funnel_delays = Vec::new();
    let mut cusum_delays = Vec::new();
    for seed in 0..6 {
        let mut s = gen.generate(300, 400, seed);
        InjectedChange::level_shift(onset, 4.0 * sigma).apply(&mut s, true);
        for (method, delays) in [
            (Method::Funnel, &mut funnel_delays),
            (Method::Cusum, &mut cusum_delays),
        ] {
            let runner = MethodRunner::new(method);
            let events = runner.run(&s);
            if let Some(minutes) = detection_delay(&events, onset).minutes() {
                delays.push(minutes);
            }
        }
    }
    assert!(!funnel_delays.is_empty(), "FUNNEL missed everything");
    // Compare medians, like Fig. 5 (an occasional late FUNNEL re-detection
    // skews averages; medians are the paper's own summary statistic).
    let med = |v: &[u64]| {
        let mut v = v.to_vec();
        v.sort_unstable();
        v[v.len() / 2] as f64
    };
    // CUSUM either misses some or has a larger median delay.
    let cusum_ok =
        cusum_delays.len() < funnel_delays.len() || med(&cusum_delays) > med(&funnel_delays);
    assert!(
        cusum_ok,
        "CUSUM should trail FUNNEL: funnel {funnel_delays:?} cusum {cusum_delays:?}"
    );
}

/// Claim (§4.2.1): MRLS is sensitive to one-off spikes; FUNNEL's 7-minute
/// persistence rule is not. Measured as *marginal* sensitivity: adding a
/// 3-minute spike to a series must create new MRLS events but no new
/// FUNNEL events (whatever each fires on the underlying noise is its
/// baseline behaviour and is DiD's problem, not the spike's).
#[test]
fn mrls_spike_sensitive_funnel_not() {
    // Quiet deterministic baselines isolate the spike's marginal effect
    // (on heavily AR-wandering noise both methods' events come from the
    // wander, which is the DiD layer's job, not the detector's).
    let mut mrls_fired = 0;
    let mut funnel_fired = 0;
    for variant in 0..6u64 {
        let phase = variant as f64 * 0.7;
        let mut s = TimeSeries::new(
            0,
            (0..300)
                .map(|i| {
                    200.0
                        + 0.8 * ((i as f64) * 0.9 + phase).sin()
                        + 0.5 * ((i as f64) * 0.37 + phase).cos()
                })
                .collect(),
        );
        // A 3-minute transient spike: not a KPI change by definition.
        InjectedChange::spike(150, 60.0, 3).apply(&mut s, true);
        if !MethodRunner::new(Method::Mrls).run(&s).is_empty() {
            mrls_fired += 1;
        }
        if !MethodRunner::new(Method::Funnel).run(&s).is_empty() {
            funnel_fired += 1;
        }
    }
    assert!(
        mrls_fired >= 5,
        "MRLS fired on only {mrls_fired}/6 spike series"
    );
    assert!(
        funnel_fired <= 1,
        "FUNNEL's Eq. 11 filter + persistence should ignore spikes, fired {funnel_fired}/6"
    );
}

/// Claim (§3.2.3): the quick (ω = 5) configuration declares earlier than the
/// precise (ω = 15) one on the same blatant shift.
#[test]
fn quick_config_faster_than_precise() {
    use funnel_suite::detect::detector::DetectorRunner;
    use funnel_suite::detect::sst_adapter::SstDetector;
    use funnel_suite::sst::{FastSst, SstConfig};

    let gen = KpiGenerator::for_class(KpiClass::Stationary, 100.0);
    let onset = 200u64;
    let mut wins_quick = 0;
    let mut comparisons = 0;
    for seed in 0..6 {
        let mut s = gen.generate(100, 250, seed);
        InjectedChange::level_shift(onset, 25.0).apply(&mut s, true);
        let mut delays = Vec::new();
        for config in [SstConfig::quick(), SstConfig::precise()] {
            let runner = DetectorRunner::new(SstDetector::fast(FastSst::new(config)), 0.5, 7);
            let events = runner.run(&s);
            delays.push(detection_delay(&events, onset).minutes());
        }
        if let (Some(q), Some(p)) = (delays[0], delays[1]) {
            comparisons += 1;
            if q <= p {
                wins_quick += 1;
            }
        }
    }
    assert!(comparisons >= 4, "both configs should usually detect");
    assert!(
        wins_quick * 2 >= comparisons,
        "quick config should not be slower: {wins_quick}/{comparisons}"
    );
}

/// Sanity: the evaluation world is self-consistent — every ground-truth
/// item references a monitored entity of its own change.
#[test]
fn ground_truth_items_are_monitored() {
    use funnel_suite::topology::impact::identify_impact_set;
    let (world, _meta) = evaluation_world(5);
    let gt = world.ground_truth();
    assert!(!gt.is_empty());
    for item in gt.iter().take(200) {
        let change = world.change_log().get(item.change).expect("change exists");
        let set = identify_impact_set(world.topology(), change).expect("impact set");
        let monitored = set.monitored_entities();
        assert!(
            monitored.contains(&item.key.entity),
            "GT item {:?} not monitored by its change",
            item.key
        );
    }
}

/// Sanity: series slices used by the pipeline match direct world series
/// (regression guard for slice arithmetic).
#[test]
fn slice_arithmetic_consistency() {
    let (world, meta) = evaluation_world(5);
    let key = funnel_suite::sim::kpi::KpiKey::new(
        funnel_suite::topology::impact::Entity::Service(meta.services[0]),
        funnel_suite::sim::kpi::KpiKind::PageViewCount,
    );
    let s = world.series(&key).unwrap();
    let mid = meta.eval_day_start;
    let sliced = TimeSeries::new(mid - 100, s.slice(mid - 100, mid + 100).to_vec());
    assert_eq!(sliced.len(), 200);
    for m in (mid - 100..mid + 100).step_by(17) {
        assert_eq!(sliced.at(m), s.at(m));
    }
}
