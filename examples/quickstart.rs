//! Quickstart: deploy a software change in a simulated service, run FUNNEL,
//! read the verdicts.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use funnel_suite::core::pipeline::Funnel;
use funnel_suite::core::report;
use funnel_suite::sim::effect::{ChangeEffect, EffectScope};
use funnel_suite::sim::kpi::KpiKind;
use funnel_suite::sim::world::{SimConfig, WorldBuilder};
use funnel_suite::topology::change::ChangeKind;

fn main() {
    // 1. Build a small world: one web service, six instances, eight days of
    //    telemetry (seven of history + the deployment day).
    let mut builder = WorldBuilder::new(SimConfig::days(42, 8));
    let web = builder
        .add_service("shop.web", 6)
        .expect("fresh world accepts the service");

    // 2. Deploy an upgrade at 09:00 on day 7, dark-launched on 2 of the 6
    //    instances. The upgrade has a bug: +80 ms page-view response delay
    //    on the treated instances.
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        80.0,
    );
    let change = builder
        .deploy_change(
            ChangeKind::Upgrade,
            web,
            2,
            7 * 1440 + 9 * 60,
            effect,
            "shop.web v2.3.1 — checkout revamp",
        )
        .expect("effect is well-formed");
    let world = builder.build();

    // 3. Run FUNNEL: impact set → improved SST detection → DiD causality.
    let funnel = Funnel::paper_default();
    let assessment = funnel.assess_change(&world, change).expect("change exists");

    // 4. Read the verdicts.
    println!("{}", report::render(world.topology(), &assessment));
    if assessment.has_impact() {
        println!("=> roll back shop.web v2.3.1");
    } else {
        println!("=> roll forward to the remaining instances");
    }

    // The latency regression must be attributed to the upgrade:
    assert!(assessment.has_impact());
    let delay_items = assessment
        .caused_items()
        .filter(|i| i.key.kind == KpiKind::PageViewResponseDelay)
        .count();
    assert!(delay_items >= 2, "both treated instances should be flagged");
}
