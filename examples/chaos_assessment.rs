//! Chaos run: a dark-launch assessment over degraded telemetry.
//!
//! A real regression (+60 ms response delay on 2 of 8 treated instances) is
//! replayed through the agent → collector path while a deterministic fault
//! plan mauls the transport: ~10 % of agent frames are dropped and a
//! sprinkling are corrupted in flight. The hardened ingestion quarantines
//! what cannot be decoded, the store's coverage masks record what was
//! really measured, and the assessment pipeline annotates every verdict
//! with that provenance — attributing only what adequate data supports and
//! reporting the rest as inconclusive.
//!
//! ```bash
//! cargo run --release --example chaos_assessment
//! ```
//!
//! With `FUNNEL_OBS=1` the whole run executes twice — first with recording
//! off, then with it on — asserts the assessment and rendered report are
//! byte-identical either way (observability is write-only), and writes
//! `results/obs_report.json` plus a stage-timing summary. This is the CI
//! `obs-smoke` vehicle.

use funnel_suite::core::pipeline::{ChangeAssessment, Funnel};
use funnel_suite::core::report;
use funnel_suite::sim::agent::{replay_with_faults, ReplayStats};
use funnel_suite::sim::effect::{ChangeEffect, EffectScope};
use funnel_suite::sim::faults::FaultPlan;
use funnel_suite::sim::kpi::KpiKind;
use funnel_suite::sim::world::{SimConfig, World, WorldBuilder};
use funnel_suite::sim::MetricStore;
use funnel_suite::topology::change::{ChangeId, ChangeKind};

/// One-service world with a genuinely harmful dark launch.
fn build_world() -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig::days(23, 8));
    let svc = b.add_service("prod.search", 8).expect("fresh");
    let regression = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        60.0,
    );
    let t_change = 7 * 1440 + 9 * 60;
    let change = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            2,
            t_change,
            regression,
            "search ranker v4",
        )
        .expect("valid");
    (b.build(), change)
}

/// The full chaos story: lossy replay, then assessment of the degraded
/// store. Everything returned is derived deterministically from the seeds.
fn run(world: &World, change: ChangeId, funnel: &Funnel) -> (ReplayStats, ChangeAssessment) {
    // Replay through the lossy transport: ~10 % frame loss plus a little
    // in-flight corruption, all reproducible from the seed.
    let plan = FaultPlan::lossy(2026, 0.10);
    let store = MetricStore::new();
    let stats = replay_with_faults(world, &store, 4, plan).expect("replay");
    let record = world.change_log().get(change).expect("logged");
    let assessment = funnel
        .assess_change_with(&store, world.topology(), record, &|s| {
            world.kinds_of_service(s).to_vec()
        })
        .expect("assessable");
    (stats, assessment)
}

fn main() {
    let obs_requested = funnel_suite::obs::init_from_env();
    // The baseline pass always runs uninstrumented, so the byte-identity
    // check below compares a genuinely recording run against it.
    funnel_suite::obs::disable();

    let (world, change) = build_world();
    let funnel = Funnel::paper_default();
    let (stats, assessment) = run(&world, change, &funnel);
    println!(
        "replayed {} minutes: {} frames accepted, {} dropped, {} quarantined",
        stats.minutes, stats.frames, stats.dropped_frames, stats.quarantined_frames,
    );

    let rendered = report::render(world.topology(), &assessment);
    println!("\n{rendered}");

    let caused = assessment.caused_items().count();
    let inconclusive = assessment.inconclusive_items().count();
    println!(
        "verdicts: {caused} attributed, {inconclusive} inconclusive, {} total items",
        assessment.items.len()
    );

    // The guarantees this example demonstrates:
    // 1. nothing was attributed on inadequate data,
    let min_cov = funnel.config().min_coverage;
    assert!(
        assessment
            .caused_items()
            .all(|i| i.quality.coverage >= min_cov),
        "an attribution rests on sub-threshold coverage"
    );
    // 2. every verdict carries its provenance,
    assert!(assessment.items.iter().all(|i| i.quality.coverage <= 1.0));
    // 3. inconclusive items are flagged as such, never silently cleared.
    assert!(assessment
        .items
        .iter()
        .filter(|i| i.verdict.is_inconclusive())
        .all(|i| !i.caused));

    println!(
        "\nall attributions rest on >= {:.0}% measured data.",
        min_cov * 100.0
    );

    if obs_requested {
        // Second pass, recording on: observability is write-only, so both
        // the assessment and the operator report must be byte-identical to
        // the uninstrumented run.
        funnel_suite::obs::enable();
        funnel_suite::obs::reset();
        let (_, instrumented) = run(&world, change, &funnel);
        assert_eq!(
            format!("{assessment:?}"),
            format!("{instrumented:?}"),
            "recording changed the assessment"
        );
        assert_eq!(
            rendered,
            report::render(world.topology(), &instrumented),
            "recording changed the rendered report"
        );
        let obs = funnel_suite::obs::report::write_default_if_enabled()
            .expect("write obs report")
            .expect("recording is on");
        println!(
            "\ninstrumented re-run byte-identical; wrote {}",
            funnel_suite::obs::report::DEFAULT_PATH
        );
        print!("{}", obs.human_summary());
    }
}
