//! FUNNEL online: agents → wire frames → central store → subscription →
//! streaming SST, exactly the deployment dataflow of §5.
//!
//! A world is replayed minute-by-minute through per-shard agent threads
//! (binary wire frames over channels, decoded by a collector that also
//! aggregates service KPIs), while the online pipeline consumes the store's
//! subscription feed and declares KPI changes in real time.
//!
//! ```bash
//! cargo run --release --example online_streaming
//! ```

use funnel_suite::core::online::OnlinePipeline;
use funnel_suite::core::FunnelConfig;
use funnel_suite::sim::agent::replay;
use funnel_suite::sim::effect::{ChangeEffect, EffectScope};
use funnel_suite::sim::kpi::{KpiKey, KpiKind};
use funnel_suite::sim::store::MetricStore;
use funnel_suite::sim::world::{SimConfig, WorldBuilder};
use funnel_suite::topology::change::ChangeKind;
use funnel_suite::topology::impact::Entity;

fn main() {
    // A service with a memory leak introduced at minute 240.
    let mut b = WorldBuilder::new(SimConfig {
        seed: 3,
        start: 0,
        duration: 480,
    });
    let svc = b.add_service("stream.api", 4).expect("fresh");
    let effect = ChangeEffect::none().with_ramp(
        KpiKind::MemoryUtilization,
        EffectScope::TreatedServers,
        25.0,
        40,
    );
    b.deploy_change(ChangeKind::Upgrade, svc, 2, 240, effect, "leaky build")
        .expect("valid");
    let world = b.build();

    // Watch the treated servers' memory KPIs.
    let treated: Vec<KpiKey> = world
        .topology()
        .instances_of(svc)
        .iter()
        .take(2)
        .map(|i| KpiKey::new(Entity::Server(i.server), KpiKind::MemoryUtilization))
        .collect();

    let store = MetricStore::shared();
    let pipeline =
        OnlinePipeline::start(&store, Some(treated.clone()), FunnelConfig::paper_default());

    // Replay the world through the agent → collector path (3 shards).
    let stats = replay(&world, &store, 3).expect("replay succeeds");
    println!(
        "replayed {} minutes: {} wire frames, {} measurements, {} service aggregates",
        stats.minutes, stats.frames, stats.records, stats.aggregates
    );

    // Shut the pipeline down, then drain: `finish` joins the worker first,
    // so detections declared after our last look cannot be lost.
    drop(store);
    let (declared, online_stats) = pipeline.finish();
    println!(
        "online pipeline scored {} windows, emitted {} detections",
        online_stats.windows_scored, online_stats.detections
    );
    for d in &declared {
        println!(
            "  {:?} declared at minute {} (score ran from minute {}, peak {:.2})",
            d.key.entity, d.declared_at, d.first_exceeded_at, d.peak_score
        );
    }

    // The leak starts at 240 and ramps over 40 minutes; the stream must
    // catch it on both treated servers, within the ramp.
    assert!(
        declared
            .iter()
            .filter(|d| (240..320).contains(&d.declared_at))
            .count()
            >= 2,
        "both leaking servers should be flagged during the ramp: {declared:?}"
    );
    println!("\nleak caught mid-ramp on the live stream.");
}
