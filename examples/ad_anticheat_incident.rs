//! The Fig. 7 case study as a library walkthrough: a faulty advertising
//! upgrade silently breaks the anti-cheat check for one device class, and
//! the strongly seasonal effective-click KPI collapses. FUNNEL's seasonal
//! DiD separates the collapse from the diurnal pattern and attributes it to
//! the upgrade within minutes (the manual process in the paper took 1.5 h).
//!
//! ```bash
//! cargo run --release --example ad_anticheat_incident
//! ```

use funnel_suite::core::pipeline::{AssessmentMode, Funnel};
use funnel_suite::core::FunnelConfig;
use funnel_suite::sim::kpi::{KpiKey, KpiKind};
use funnel_suite::sim::scenario::ads_world;
use funnel_suite::topology::impact::Entity;

fn main() {
    let (world, ads, change) = ads_world(42);
    let record = world.change_log().get(change).expect("logged");
    println!(
        "upgrade \"{}\" deployed at minute {} ({} instances, full launch)",
        record.description,
        record.minute,
        record.targets.len()
    );

    let mut config = FunnelConfig::paper_default();
    config.history_days = 6; // the scenario world carries 7 days of history
    let funnel = Funnel::new(config);
    let assessment = funnel.assess_change(&world, change).expect("assessable");

    let click_key = KpiKey::new(Entity::Service(ads), KpiKind::EffectiveClickCount);
    let item = assessment
        .items
        .iter()
        .find(|i| i.key == click_key)
        .expect("click KPI is monitored");

    let detection = item.detection.as_ref().expect("collapse detected");
    println!(
        "effective clicks: change declared {} minutes after the deployment",
        detection.declared_at - record.minute
    );
    assert_eq!(
        item.mode,
        AssessmentMode::SeasonalHistory,
        "full launch ⇒ seasonal control"
    );
    assert!(item.caused, "the collapse is the upgrade's fault");
    if let Some((verdict, estimate)) = &item.did {
        println!(
            "seasonal DiD: α = {:+.1} normalized units (t = {:+.1}) over {} samples",
            verdict.alpha(),
            estimate.t_stat,
            estimate.n
        );
    }

    // Detection speed is the headline: well under the 90 manual minutes.
    let delay = detection.declared_at - record.minute;
    assert!(delay <= 30, "detection took {delay} minutes");
    println!("\n(manual assessment took ~90 minutes in the paper's incident)");
}
