//! FUNNEL watches FUNNEL: the pipeline's own telemetry, assessed by the
//! pipeline's own detector.
//!
//! Two acts:
//!
//! 1. **A healthy day.** A full fleet replay (agents → collector → store)
//!    followed by a batch assessment runs with windowed telemetry on. The
//!    per-minute timeline (`results/obs_timeline.json`) and the Chrome
//!    trace-event export (`results/trace.json`, loadable in
//!    `chrome://tracing` or Perfetto) are written, and the self-monitor
//!    confirms every watched pipeline series is change-free.
//! 2. **An incident.** The same fleet replays through a 4-hour collector
//!    partition (every shard dark, nothing buffered). No extra monitoring
//!    code exists for this: the self-monitor feeds the pipeline's own
//!    `collector.frames_ingested` timeline to the same SST + persistence
//!    detector the paper aims at customer KPIs, and declares the ingest
//!    collapse within minutes of the fault — the
//!    `results/pipeline_health.json` verdict.
//!
//! ```bash
//! cargo run --release --example pipeline_health
//! ```

use funnel_suite::core::pipeline::Funnel;
use funnel_suite::core::selfmon::{run_selfmon, SelfMonConfig, DEFAULT_HEALTH_PATH};
use funnel_suite::obs::timeline::DEFAULT_TIMELINE_PATH;
use funnel_suite::obs::trace::{write_chrome_trace, DEFAULT_TRACE_PATH};
use funnel_suite::sim::agent::replay_with_faults;
use funnel_suite::sim::effect::{ChangeEffect, EffectScope};
use funnel_suite::sim::faults::{FaultPlan, HealMode, PartitionScope, PartitionWindow};
use funnel_suite::sim::kpi::KpiKind;
use funnel_suite::sim::world::{SimConfig, World, WorldBuilder};
use funnel_suite::sim::MetricStore;
use funnel_suite::topology::change::{ChangeId, ChangeKind};

const PARTITION_START: u64 = 6 * 1440;
const PARTITION_MINUTES: u64 = 240;

fn build_world() -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig::days(29, 8));
    let svc = b.add_service("prod.health", 6).expect("fresh");
    let regression = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        70.0,
    );
    let change = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            2,
            7 * 1440 + 9 * 60,
            regression,
            "ranker v7",
        )
        .expect("valid");
    (b.build(), change)
}

/// Replays the fleet under `plan` and assesses the change, all with
/// windowed telemetry recording; returns the run's timeline snapshot.
fn instrumented_run(
    world: &World,
    change: ChangeId,
    plan: FaultPlan,
) -> funnel_suite::obs::timeline::TimelineReport {
    funnel_suite::obs::reset();
    let store = MetricStore::new();
    let stats = replay_with_faults(world, &store, 3, plan).expect("replay");
    println!(
        "  replayed {} minutes: {} frames accepted, {} lost to partition",
        stats.minutes, stats.frames, stats.partition_lost_frames
    );
    let record = world.change_log().get(change).expect("logged");
    let assessment = Funnel::paper_default()
        .assess_change_with(&store, world.topology(), record, &|s| {
            world.kinds_of_service(s).to_vec()
        })
        .expect("assessable");
    println!(
        "  assessment: {} items, {} attributed",
        assessment.items.len(),
        assessment.caused_items().count()
    );
    funnel_suite::obs::timeline_snapshot()
}

fn main() {
    funnel_suite::obs::init_from_env();
    funnel_suite::obs::enable();
    let (world, change) = build_world();
    let selfmon = SelfMonConfig::default();

    // ── Act 1: a healthy day.
    println!("── healthy day ──");
    let timeline = instrumented_run(&world, change, FaultPlan::none());
    timeline
        .write_json(DEFAULT_TIMELINE_PATH)
        .expect("write timeline");
    write_chrome_trace(&timeline, DEFAULT_TRACE_PATH).expect("write trace");
    println!(
        "  {} telemetry records across {} minute windows",
        timeline.records(),
        timeline.windows()
    );
    println!("  wrote {DEFAULT_TIMELINE_PATH} and {DEFAULT_TRACE_PATH}");
    let healthy = run_selfmon(&timeline, &selfmon).expect("valid selfmon config");
    for s in &healthy.series {
        println!(
            "  {}: {} windows, {} alert(s)",
            s.name,
            s.windows,
            s.alerts.len()
        );
    }
    assert!(
        healthy.healthy(),
        "self-monitor raised a false alarm on a clean run: {healthy:?}"
    );
    println!("  self-monitor: healthy");

    // ── Act 2: a collector partition, caught by the pipeline's own KPIs.
    println!("\n── incident: {PARTITION_MINUTES}-minute collector partition ──");
    let plan = FaultPlan::none().with_partition(PartitionWindow {
        scope: PartitionScope::Collector,
        start: PARTITION_START,
        duration: PARTITION_MINUTES,
        heal: HealMode::SilentDrop,
    });
    let incident_timeline = instrumented_run(&world, change, plan);
    let incident = run_selfmon(&incident_timeline, &selfmon).expect("valid selfmon config");
    incident
        .write_json(DEFAULT_HEALTH_PATH)
        .expect("write health report");
    println!("  wrote {DEFAULT_HEALTH_PATH}");
    assert!(
        !incident.healthy(),
        "the partition went undetected: {incident:?}"
    );
    let ingest = incident
        .series
        .iter()
        .find(|s| s.name == funnel_suite::obs::names::FRAMES_INGESTED)
        .expect("watched series");
    assert!(!ingest.alerts.is_empty(), "ingest series must alert");
    for a in &ingest.alerts {
        println!(
            "  ALERT {}: change visible at minute {}, declared at minute {} (fault began at {})",
            ingest.name, a.first_exceeded_at, a.declared_at, PARTITION_START
        );
    }
    println!("\nno second monitoring stack: the detector that judges customer KPIs judged its own pipeline.");
    funnel_suite::obs::disable();
}
