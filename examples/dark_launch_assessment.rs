//! Dark launching end to end: why the control group matters.
//!
//! Two things happen at nearly the same time in this scenario:
//!
//! 1. a software change is dark-launched on 2 of 8 instances and introduces
//!    a real regression (+45 failures/min on the treated instances), and
//! 2. an *external* incident (an upstream dependency brown-out) adds
//!    +30 failures/min to **every** instance of a second, untouched
//!    service at a nearby time.
//!
//! A raw detector fires on both. FUNNEL's DiD keeps the first (treated
//! moved relative to control) and rejects the second (treated and control
//! moved together).
//!
//! ```bash
//! cargo run --release --example dark_launch_assessment
//! ```

use funnel_suite::core::pipeline::{AssessmentMode, Funnel};
use funnel_suite::sim::effect::{ChangeEffect, EffectScope, ExternalShock};
use funnel_suite::sim::kpi::KpiKind;
use funnel_suite::sim::world::{SimConfig, WorldBuilder};
use funnel_suite::timeseries::inject::ChangeShape;
use funnel_suite::topology::change::ChangeKind;
use funnel_suite::topology::impact::Entity;

fn main() {
    let mut b = WorldBuilder::new(SimConfig::days(7, 8));
    let svc_buggy = b.add_service("pay.gateway", 8).expect("fresh");
    let svc_shocked = b.add_service("pay.ledger", 8).expect("fresh");

    let t_change = 7 * 1440 + 10 * 60;
    let real_bug = ChangeEffect::none().with_level_shift(
        KpiKind::AccessFailureCount,
        EffectScope::TreatedInstances,
        45.0,
    );
    let buggy = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc_buggy,
            2,
            t_change,
            real_bug,
            "gateway v9",
        )
        .expect("valid");

    // An innocent change on the second service, with an external shock
    // hitting that whole service 10 minutes later.
    let innocent = b
        .deploy_change(
            ChangeKind::ConfigChange,
            svc_shocked,
            2,
            t_change + 5,
            ChangeEffect::none(),
            "ledger thread-pool bump",
        )
        .expect("valid");
    b.add_shock(ExternalShock {
        services: vec![svc_shocked],
        kind: KpiKind::AccessFailureCount,
        shape: ChangeShape::LevelShift { delta: 30.0 },
        onset: t_change + 15,
    });

    let world = b.build();
    let funnel = Funnel::paper_default();

    // --- the real regression is attributed ---
    let a1 = funnel.assess_change(&world, buggy).expect("assessable");
    let attributed: Vec<_> = a1
        .caused_items()
        .filter(|i| i.key.kind == KpiKind::AccessFailureCount)
        .collect();
    println!(
        "gateway v9: {} failure-count KPIs attributed to the upgrade (dark-launch control)",
        attributed.len()
    );
    assert!(!attributed.is_empty());
    assert!(attributed
        .iter()
        .all(|i| i.mode == AssessmentMode::DarkLaunchControl));

    // --- the shock-hit innocent change is exonerated ---
    let a2 = funnel.assess_change(&world, innocent).expect("assessable");
    let false_claims = a2
        .caused_items()
        .filter(|i| matches!(i.key.entity, Entity::Instance(_)))
        .count();
    let detections = a2.items.iter().filter(|i| i.detection.is_some()).count();
    println!(
        "ledger bump: {detections} raw detections on its KPIs, {false_claims} attributed \
         after DiD"
    );
    assert_eq!(
        false_claims, 0,
        "the external shock moved treated and control alike — DiD must reject it"
    );
    assert!(
        detections > 0,
        "the detector should see the shock (that is what DiD is for)"
    );
    println!("\nDiD separated the real regression from the external incident.");
}
