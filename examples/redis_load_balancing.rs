//! The Fig. 6 case study as a library walkthrough: a load-balancing
//! configuration change swaps NIC traffic between two Redis server classes,
//! and FUNNEL attributes both the drop (class A) and the rise (class B) to
//! the change — on a KPI with strong natural variability.
//!
//! ```bash
//! cargo run --release --example redis_load_balancing
//! ```

use funnel_suite::core::pipeline::Funnel;
use funnel_suite::core::FunnelConfig;
use funnel_suite::sim::kpi::{KpiKey, KpiKind};
use funnel_suite::sim::scenario::redis_world;
use funnel_suite::timeseries::stats::mean;
use funnel_suite::topology::impact::Entity;

fn main() {
    let (world, class_a, class_b, change) = redis_world(6);
    let minute = world.change_log().get(change).expect("logged").minute;

    // The scenario world carries 3 days of history; tell FUNNEL's seasonal
    // DiD how much it may use.
    let mut config = FunnelConfig::paper_default();
    config.history_days = 2;
    let funnel = Funnel::new(config);

    let assessment = funnel.assess_change(&world, change).expect("assessable");
    println!(
        "config change at minute {minute}: {} impact-set KPIs assessed, {} attributed",
        assessment.items.len(),
        assessment.caused_items().count()
    );

    // Verify the expected effect, per class, like the operations team did.
    let mut down = 0;
    let mut up = 0;
    for item in assessment.caused_items() {
        let Entity::Server(s) = item.key.entity else {
            continue;
        };
        if item.key.kind != KpiKind::NicThroughput {
            continue;
        }
        let series = world
            .series(&KpiKey::new(item.key.entity, item.key.kind))
            .expect("exists");
        let before = mean(series.slice(minute - 60, minute));
        let after = mean(series.slice(minute, minute + 60));
        let class = if class_a.contains(&s) {
            "A"
        } else if class_b.contains(&s) {
            "B"
        } else {
            "?"
        };
        let dir = if after < before { "down" } else { "up" };
        println!(
            "  server {:?} (class {class}): NIC {before:.0} → {after:.0} Mbit/s ({dir})",
            s
        );
        if after < before {
            down += 1;
        } else {
            up += 1;
        }
    }
    println!("\nexpected outcome confirmed: {down} servers shed load, {up} picked it up");
    assert!(down >= 3 && up >= 3, "both classes must be represented");
}
