//! Diagnosing a change: why the verdict says what it says, and where.
//!
//! Part 1 replays the chaos scenario (a +60 ms dark-launch regression on
//! 2 of 8 `prod.search` instances, through a lossy transport) and runs the
//! opt-in diagnosis stage over the finished assessment, demonstrating its
//! three guarantees:
//!
//! 1. **read-only** — the assessment is byte-identical with the stage on
//!    or off;
//! 2. **deterministic** — the diagnosis report is byte-identical at 1, 3,
//!    and 8 assessment workers;
//! 3. **explanatory** — every `Caused` item gets a population-bias check,
//!    a contribution ranking, and an evidence dossier, written to
//!    `results/diag_report.json` and rendered for the operator.
//!
//! Part 2 is the bias check earning its keep: the same regression assessed
//! twice against hand-built telemetry, once with an honest control pool
//! (baseline matches the treated instances) and once with a *skewed* pool
//! that was already running 40 ms hotter before the deployment. The DiD
//! verdict is `caused` both times — the contrast subtracts the offset — but
//! only the diagnosis layer reports that the skewed counterfactual was
//! never exchangeable with the treated group (`population_mismatch`, à la
//! Lumos), telling the operator how much to trust the effect size.
//!
//! ```bash
//! cargo run --release --example diagnose_change
//! ```
//!
//! This is the worked example behind `OPERATORS.md` and the CI diag smoke.

use std::collections::BTreeMap;

use funnel_suite::core::pipeline::{ChangeAssessment, Funnel};
use funnel_suite::core::{DiagConfig, FunnelConfig, KpiSource};
use funnel_suite::diag::{BiasFlag, DiagReport, DEFAULT_PATH};
use funnel_suite::sim::agent::replay_with_faults;
use funnel_suite::sim::effect::{ChangeEffect, EffectScope};
use funnel_suite::sim::faults::FaultPlan;
use funnel_suite::sim::kpi::{KpiKey, KpiKind};
use funnel_suite::sim::world::{SimConfig, World, WorldBuilder};
use funnel_suite::sim::MetricStore;
use funnel_suite::timeseries::series::TimeSeries;
use funnel_suite::topology::change::{ChangeId, ChangeKind};
use funnel_suite::topology::impact::{identify_impact_set, Entity};

/// The chaos scenario's world: a genuinely harmful dark launch.
fn build_world() -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig::days(23, 8));
    let svc = b.add_service("prod.search", 8).expect("fresh");
    let regression = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        60.0,
    );
    let t_change = 7 * 1440 + 9 * 60;
    let change = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            2,
            t_change,
            regression,
            "search ranker v4",
        )
        .expect("valid");
    (b.build(), change)
}

fn funnel_with(workers: usize, diagnose: bool) -> Funnel {
    let mut config = FunnelConfig::paper_default();
    config.assess.workers = workers;
    if diagnose {
        config.diagnose = DiagConfig::on();
    }
    Funnel::new(config)
}

fn assess_and_diagnose(
    funnel: &Funnel,
    source: &(impl KpiSource + Sync),
    world: &World,
    change: ChangeId,
) -> (ChangeAssessment, Option<DiagReport>) {
    let record = world.change_log().get(change).expect("logged");
    let assessment = funnel
        .assess_change_with(source, world.topology(), record, &|s| {
            world.kinds_of_service(s).to_vec()
        })
        .expect("assessable");
    let diagnosis = funnel.diagnose(source, world.topology(), record, &assessment);
    (assessment, diagnosis)
}

/// A hand-built telemetry source: one fixed series per KPI key. What the
/// bias demo needs is precise control over the control pool's baseline,
/// which no honest simulator provides.
struct MapSource {
    series: BTreeMap<KpiKey, TimeSeries>,
}

impl KpiSource for MapSource {
    fn series(&self, key: &KpiKey) -> Option<TimeSeries> {
        self.series.get(key).cloned()
    }
}

/// Deterministic per-key, per-minute jitter with 7 distinct values — enough
/// texture that the quality screen has nothing to flag.
fn jitter(salt: u64, minute: u64) -> f64 {
    (minute
        .wrapping_mul(2654435761)
        .wrapping_add(salt.wrapping_mul(97))
        % 7) as f64
        * 0.5
}

fn key_salt(key: &KpiKey) -> u64 {
    let entity = match key.entity {
        Entity::Server(s) => 1000 + s.0 as u64,
        Entity::Instance(i) => 2000 + i.0 as u64,
        Entity::Service(s) => 3000 + s.0 as u64,
    };
    entity * 31 + key.kind.name().len() as u64
}

/// Builds the bias-demo world and telemetry: a +60 level shift on the two
/// treated instances' delay KPI, over a fleet whose control instances run
/// at `control_level`. `180.0` is honest (matches the treated baseline);
/// `220.0` is a pool that was hotter *before* the deployment ever landed.
fn bias_demo(control_level: f64) -> (World, ChangeId, MapSource) {
    let mut b = WorldBuilder::new(SimConfig::days(9, 8));
    let svc = b.add_service("prod.pipe", 8).expect("fresh");
    let t0 = 8 * 1440;
    let change = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            2,
            t0,
            ChangeEffect::none(),
            "pipe rebalance v2",
        )
        .expect("valid");
    let world = b.build();

    let record = world.change_log().get(change).expect("logged");
    let impact = identify_impact_set(world.topology(), record).expect("impact set");
    let work = funnel_suite::core::enumerate_work_units(&impact, record, &|s| {
        world.kinds_of_service(s).to_vec()
    });

    // Every series the assessment and the diagnosis will read: the work
    // units, plus the dark-launch control pools at both levels.
    let mut keys = work;
    for &i in &impact.cinstances {
        for &kind in world.kinds_of_service(svc) {
            keys.push(KpiKey::new(Entity::Instance(i), kind));
        }
    }
    for &s in &impact.cservers {
        for kind in KpiKind::SERVER_KINDS {
            keys.push(KpiKey::new(Entity::Server(s), kind));
        }
    }
    keys.sort_unstable();
    keys.dedup();

    let start = t0 - 300;
    let end = t0 + 101;
    let mut series = BTreeMap::new();
    for key in keys {
        let treated_delay = key.kind == KpiKind::PageViewResponseDelay
            && matches!(key.entity, Entity::Instance(i) if impact.tinstances.contains(&i));
        let control = match key.entity {
            Entity::Instance(i) => impact.cinstances.contains(&i),
            Entity::Server(s) => impact.cservers.contains(&s),
            Entity::Service(_) => false,
        };
        let level = if control { control_level } else { 180.0 };
        let salt = key_salt(&key);
        let values: Vec<f64> = (start..end)
            .map(|m| {
                let shift = if treated_delay && m >= t0 { 60.0 } else { 0.0 };
                level + shift + jitter(salt, m)
            })
            .collect();
        series.insert(key, TimeSeries::new(start, values));
    }
    (world, change, MapSource { series })
}

fn main() {
    // ---- Part 1: the chaos scenario, diagnosed -------------------------
    let (world, change) = build_world();
    let store = MetricStore::new();
    let stats =
        replay_with_faults(&world, &store, 4, FaultPlan::lossy(2026, 0.10)).expect("replay");
    println!(
        "replayed {} minutes: {} frames accepted, {} dropped, {} quarantined",
        stats.minutes, stats.frames, stats.dropped_frames, stats.quarantined_frames,
    );

    // Read-only: the assessment must be byte-identical diag-on vs diag-off.
    let (plain, none) = assess_and_diagnose(&funnel_with(1, false), &store, &world, change);
    assert!(none.is_none(), "disabled stage must return no report");
    let (diagnosed, report) = assess_and_diagnose(&funnel_with(1, true), &store, &world, change);
    assert_eq!(
        format!("{plain:?}"),
        format!("{diagnosed:?}"),
        "enabling diagnosis perturbed the assessment"
    );
    let report = report.expect("enabled stage must report");

    // Deterministic: byte-identical diagnosis at any worker count.
    let json = report.to_json();
    for workers in [3usize, 8] {
        let (_, again) = assess_and_diagnose(&funnel_with(workers, true), &store, &world, change);
        assert_eq!(
            json,
            again.expect("enabled").to_json(),
            "diagnosis diverged at {workers} workers"
        );
    }
    println!("diagnosis byte-identical at 1/3/8 workers; assessment unchanged by the stage");

    report.write_json(DEFAULT_PATH).expect("write report");
    println!("wrote {DEFAULT_PATH}\n");
    print!("{}", report.render());
    assert!(!report.items.is_empty(), "chaos run must diagnose items");
    assert_eq!(
        report.items.len(),
        diagnosed.caused_items().count(),
        "default stage diagnoses exactly the caused items"
    );

    // ---- Part 2: the population-bias check -----------------------------
    let funnel = funnel_with(1, true);

    let (honest_world, honest_change, honest_src) = bias_demo(180.0);
    let (honest_assessment, honest) =
        assess_and_diagnose(&funnel, &honest_src, &honest_world, honest_change);
    let honest = honest.expect("enabled");
    assert!(honest_assessment.has_impact(), "regression must be caught");
    assert_eq!(honest.mismatch_count(), 0, "honest pool wrongly flagged");

    let (skewed_world, skewed_change, skewed_src) = bias_demo(220.0);
    let (skewed_assessment, skewed) =
        assess_and_diagnose(&funnel, &skewed_src, &skewed_world, skewed_change);
    let skewed = skewed.expect("enabled");
    assert!(skewed_assessment.has_impact(), "regression must be caught");
    assert!(
        skewed.mismatch_count() > 0,
        "pre-skewed pool must flag population_mismatch"
    );
    assert!(skewed
        .items
        .iter()
        .all(|i| i.bias.flag != BiasFlag::NoControl));

    println!("\n--- bias check: same verdict, different trust ---");
    for (name, diag) in [("honest pool", &honest), ("skewed pool", &skewed)] {
        let flags: Vec<&str> = diag.items.iter().map(|i| i.bias.flag.label()).collect();
        println!(
            "{name}: {} caused item(s), bias flags {flags:?}",
            diag.items.len()
        );
    }
    println!("\nthe DiD verdict is `caused` either way — the diagnosis layer is what");
    println!("tells the operator the skewed pool was never a fair counterfactual.");
}
