//! Partition heal: a zone outage during a dark launch, end to end.
//!
//! A genuinely harmful dark launch (+90 ms response delay on 2 of 6 treated
//! instances) goes out — and ten minutes later a network partition cuts one
//! availability zone (half the agent fleet) off from the collector for 45
//! minutes, right across the assessment window. The story in three acts:
//!
//! 1. **Interim report, partition still open.** The coverage masks show one
//!    long contiguous gap, the gap-aware detector refuses change points
//!    bordering it, and the blocked items come back
//!    `Inconclusive { awaiting_backfill: true }` — flagged for repair, not
//!    guessed at. They are absorbed into a re-assessment queue.
//! 2. **The partition heals.** The dark zone's agents kept a bounded
//!    backlog and trickle it back (staggered catch-up); frames landing
//!    behind the collector's frontier ride the backfill path into their
//!    original historical minutes.
//! 3. **Re-assessment.** Every queued window's coverage crosses the
//!    configured threshold, the queue re-runs the items against the healed
//!    store, and the interim `INCONCL.` lines upgrade to firm verdicts —
//!    the regression, invisible during the outage, is now attributed.
//!
//! ```bash
//! cargo run --release --example partition_heal
//! ```

use funnel_suite::core::pipeline::Funnel;
use funnel_suite::core::reassess::ReassessmentQueue;
use funnel_suite::core::report;
use funnel_suite::sim::agent::{replay_prefix, replay_with_faults};
use funnel_suite::sim::effect::{ChangeEffect, EffectScope};
use funnel_suite::sim::faults::{FaultPlan, HealMode, PartitionScope, PartitionWindow};
use funnel_suite::sim::kpi::KpiKind;
use funnel_suite::sim::world::{SimConfig, WorldBuilder};
use funnel_suite::sim::MetricStore;
use funnel_suite::topology::change::ChangeKind;

fn main() {
    // A one-service world with a harmful dark launch at day 7, 09:00.
    let mut b = WorldBuilder::new(SimConfig::days(31, 8));
    let svc = b.add_service("prod.search", 6).expect("fresh");
    let regression = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        90.0,
    );
    let t_change = 7 * 1440 + 9 * 60;
    let change = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            2,
            t_change,
            regression,
            "search ranker v6",
        )
        .expect("valid");
    let world = b.build();
    let record = world.change_log().get(change).expect("logged");
    let kinds = |s| world.kinds_of_service(s).to_vec();

    // Zone 1 (half the 4-shard fleet) loses its collector link 10 minutes
    // after the deployment, for 45 minutes. The agents buffer the dark span
    // and trickle it back at 2 frames/minute once the link returns.
    let plan = FaultPlan::none().with_partition(PartitionWindow {
        scope: PartitionScope::Zone { zone: 1, zones: 2 },
        start: t_change + 10,
        duration: 45,
        heal: HealMode::StaggeredCatchUp {
            queue: 64,
            per_minute: 2,
        },
    });
    let funnel = Funnel::paper_default();

    // ── Act 1: the interim report, cut off while the zone is still dark.
    let interim_store = MetricStore::new();
    let cutoff = (t_change + 40) as usize;
    replay_prefix(&world, &interim_store, 4, plan.clone(), cutoff).expect("interim replay");
    let mut assessment = funnel
        .assess_change_with(&interim_store, world.topology(), record, &kinds)
        .expect("interim assessment");

    println!("── interim report (partition open, minute {cutoff}) ──\n");
    println!("{}", report::render(world.topology(), &assessment));

    let mut queue = ReassessmentQueue::new();
    let absorbed = queue.absorb(&assessment, funnel.config());
    println!(
        "{} item(s) blocked by the unhealed gap queued for re-assessment; \
         {} attributed so far",
        absorbed,
        assessment.caused_items().count()
    );
    // The outage must not be guessed at: awaiting items exist and none of
    // them was attributed or cleared.
    assert!(absorbed > 0, "the open partition blocked nothing?");
    assert!(assessment.awaiting_backfill_items().all(|i| !i.caused));
    // And against the still-dark store, nothing is ready to re-run.
    assert!(queue.ready(&interim_store).is_empty());

    // ── Act 2: the same schedule to completion — the zone heals and the
    // collector backfills the dark span into its historical minutes.
    let healed_store = MetricStore::new();
    let stats = replay_with_faults(&world, &healed_store, 4, plan).expect("healed replay");
    println!(
        "\n── partition healed ──\n\
         {} buffered frames rode the backfill path ({} records into \
         historical bins, {} frames lost)",
        stats.backfilled_frames, stats.backfilled_records, stats.partition_lost_frames
    );
    assert_eq!(stats.partition_lost_frames, 0, "bounded queue overflowed");

    // ── Act 3: every queued window healed past the coverage trigger; the
    // re-run upgrades the interim verdicts in place.
    let ready = queue.ready(&healed_store).len();
    println!(
        "{ready} of {} queued item(s) ready for re-assessment",
        queue.len()
    );
    let upgrades = queue
        .reassess(&funnel, &healed_store, world.topology(), record)
        .expect("re-assessment");
    let upgraded = assessment.apply_upgrades(upgrades);

    println!("\n── final report (after re-assessment, {upgraded} upgraded) ──\n");
    println!("{}", report::render(world.topology(), &assessment));

    // The guarantees this example demonstrates:
    // 1. the heal resolved every queued item — nothing left in limbo,
    assert!(queue.is_empty(), "items still queued after a full heal");
    assert_eq!(assessment.awaiting_backfill_items().count(), 0);
    // 2. the regression hidden behind the outage is now attributed,
    let delay_attributed = assessment
        .caused_items()
        .any(|i| i.key.kind == KpiKind::PageViewResponseDelay);
    assert!(delay_attributed, "the regression was never attributed");
    // 3. and every attribution rests on adequate, healed coverage.
    let min_cov = funnel.config().min_coverage;
    assert!(assessment
        .caused_items()
        .all(|i| i.quality.coverage >= min_cov));

    println!(
        "the +90ms regression was invisible during the outage, queued instead of \
         guessed, and attributed after the heal."
    );
}
