//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the real API this workspace uses: cheaply
//! clonable immutable [`Bytes`], a growable [`BytesMut`] builder, and the
//! [`Buf`]/[`BufMut`] cursor traits with little-endian accessors. The
//! container has no network access, so external crates are replaced by
//! small vendored equivalents; see `crates/shims/README.md`.

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable, sliceable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-slice sharing the same backing storage.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_ref())
    }
}

/// A growable byte buffer used to build frames.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte buffer; all multi-byte accessors advance.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u64_le(77);
        b.put_u32_le(5);
        b.put_u8(3);
        b.put_f64_le(1.5);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 21);
        assert_eq!(frozen.get_u64_le(), 77);
        assert_eq!(frozen.get_u32_le(), 5);
        assert_eq!(frozen.get_u8(), 3);
        assert_eq!(frozen.get_f64_le(), 1.5);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let s2 = s.slice(0..2);
        assert_eq!(s2.as_ref(), &[2, 3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(0..4);
    }
}
