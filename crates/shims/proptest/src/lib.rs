//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, range and collection strategies, `any::<T>()`, a
//! small regex-literal string strategy, `prop::sample::Index`, and the
//! `prop_assert*`/`prop_assume!` macros. Each test runs a configurable
//! number of deterministically seeded cases (seeded from the test's module
//! path, so failures reproduce); there is no shrinking. See
//! `crates/shims/README.md` for why external crates are vendored.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case runner plumbing used by the [`crate::proptest!`]
    //! macro expansion.

    /// Run configuration; only `cases` is honoured.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Marker returned (via `Err`) by `prop_assume!` to skip a case.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Rejected;

    /// Deterministic per-test generator (xoshiro256++ seeded from the
    /// test's name via FNV-1a, so reruns see identical inputs).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator seeded from `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut sm = h;
            let mut s = [0u64; 4];
            for word in &mut s {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                s_assign(word, z ^ (z >> 31));
            }
            Self { s }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    fn s_assign(slot: &mut u64, v: u64) {
        *slot = v;
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and implementations for ranges and string
    //! regex literals.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize);

    /// String strategy from a regex-literal subset: sequences of literal
    /// characters and `[...]` classes (with `a-z` ranges), each optionally
    /// quantified by `{n}`, `{m,n}`, `?`, `*`, or `+`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let mut choices = Vec::new();
            match chars[i] {
                '[' => {
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            assert!(lo <= hi, "bad class range in {pattern}");
                            for c in lo..=hi {
                                choices.push(c);
                            }
                            i += 3;
                        } else {
                            choices.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern}");
                    i += 1; // ']'
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "dangling escape in {pattern}");
                    choices.push(chars[i + 1]);
                    i += 2;
                }
                c => {
                    choices.push(c);
                    i += 1;
                }
            }
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .expect("unterminated quantifier")
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.trim().parse().expect("bad quantifier"),
                                hi.trim().parse().expect("bad quantifier"),
                            ),
                            None => {
                                let n = body.trim().parse().expect("bad quantifier");
                                (n, n)
                            }
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(pattern) {
            let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, symmetric around zero, wide dynamic range.
            let mag = (rng.unit_f64() * 600.0) - 300.0;
            let sign = if rng.next_u64() & 1 == 1 { 1.0 } else { -1.0 };
            sign * 10f64.powf(mag / 100.0)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A length specification: exact or a half-open range.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len)` — a vector whose length is drawn from `len`
    /// (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! `prop::sample` subset.

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An abstract index into any non-empty collection.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `0..len`; `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Namespace mirror so `prop::collection::vec` / `prop::sample::Index`
/// resolve after `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! The usual glob import.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests; see the crate docs for the supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($params:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __ran: u32 = 0;
                let mut __attempts: u32 = 0;
                while __ran < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __config.cases.saturating_mul(100).saturating_add(1000),
                        "proptest: too many inputs rejected by prop_assume!"
                    );
                    if $crate::__proptest_case!(__rng, $body, $($params)*) {
                        __ran += 1;
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, $body:block $(,)?) => {{
        #[allow(unreachable_code, clippy::redundant_closure_call)]
        let __outcome: ::core::result::Result<(), $crate::test_runner::Rejected> = (|| {
            $body
            ::core::result::Result::Ok(())
        })();
        __outcome.is_ok()
    }};
    ($rng:ident, $body:block, $x:pat in $s:expr $(, $($rest:tt)*)?) => {{
        let $x = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_case!($rng, $body $(, $($rest)*)?)
    }};
}

/// Asserts within a property body (failing the whole test).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Skips the current case when `cond` is false (does not count it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0..5.0f64, n in 3u64..9, k in 1usize..4) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!((1..4).contains(&k));
        }

        #[test]
        fn vec_lengths_respected(
            xs in prop::collection::vec(0.0..1.0f64, 2..10),
            ys in prop::collection::vec(any::<bool>(), 5),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 10);
            prop_assert_eq!(ys.len(), 5);
        }

        #[test]
        fn assume_skips_but_test_completes(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn string_pattern_subset(s in "[a-z][a-z0-9_-]{0,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 7);
            let first = s.chars().next().unwrap();
            prop_assert!(first.is_ascii_lowercase());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || c == '_'
                || c == '-'));
        }

        #[test]
        fn index_projects(ix in any::<prop::sample::Index>(), mut len in 1usize..20) {
            len += 1;
            prop_assert!(ix.index(len) < len);
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = 0.0..1.0f64;
        for _ in 0..16 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
