//! Offline stand-in for `serde_derive`.
//!
//! Derives the shim `serde::Serialize`/`serde::Deserialize` traits (which
//! round-trip through an owned `serde::Value` tree) by parsing the item's
//! token stream directly — `syn`/`quote` are unavailable offline. Supported
//! shapes are exactly what this workspace uses: named/tuple/unit structs
//! and enums with unit, tuple, and struct variants; the `#[serde(default)]`
//! field attribute and `#[serde(rename_all = "snake_case")]` container
//! attribute. Generics are not supported. See `crates/shims/README.md`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Item {
    name: String,
    rename_snake: bool,
    kind: ItemKind,
}

#[derive(Debug)]
enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug, Default)]
struct Attrs {
    rename_snake: bool,
    default: bool,
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn ident_text(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn consume_attrs(tokens: &[TokenTree], i: &mut usize, out: &mut Attrs) {
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        *i += 1;
        let TokenTree::Group(g) = &tokens[*i] else {
            panic!("serde shim derive: expected [...] after #");
        };
        assert_eq!(
            g.delimiter(),
            Delimiter::Bracket,
            "expected #[...] attribute"
        );
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if inner.first().and_then(ident_text).as_deref() == Some("serde") {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                parse_serde_args(args.stream(), out);
            }
        }
        *i += 1;
    }
}

fn parse_serde_args(stream: TokenStream, out: &mut Attrs) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut j = 0;
    while j < toks.len() {
        match ident_text(&toks[j]).as_deref() {
            Some("default") => {
                out.default = true;
                j += 1;
            }
            Some("rename_all") => {
                // rename_all = "snake_case"
                assert!(
                    j + 2 < toks.len() && is_punct(&toks[j + 1], '='),
                    "serde shim derive: malformed rename_all"
                );
                let style = toks[j + 2].to_string();
                assert!(
                    style.contains("snake_case"),
                    "serde shim derive: only rename_all = \"snake_case\" is supported, got {style}"
                );
                out.rename_snake = true;
                j += 3;
            }
            Some(other) => {
                panic!("serde shim derive: unsupported serde attribute `{other}`")
            }
            None => j += 1, // separators
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if tokens.get(*i).and_then(ident_text).as_deref() == Some("pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize, what: &str) -> String {
    let id = tokens
        .get(*i)
        .and_then(ident_text)
        .unwrap_or_else(|| panic!("serde shim derive: expected {what}"));
    *i += 1;
    id
}

/// Skips one field type, honouring `<...>` nesting; stops after the
/// top-level `,` (consumed) or at end of input.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let mut attrs = Attrs::default();
        consume_attrs(&tokens, &mut i, &mut attrs);
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i, "field name");
        assert!(
            is_punct(&tokens[i], ':'),
            "serde shim derive: expected `:` after field {name}"
        );
        i += 1;
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name,
            default: attrs.default,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut pending = false;
    let mut angle: i32 = 0;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if pending {
                    count += 1;
                }
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        let mut attrs = Attrs::default();
        consume_attrs(&tokens, &mut i, &mut attrs);
        let name = expect_ident(&tokens, &mut i, "variant name");
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Struct(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        if i < tokens.len() && is_punct(&tokens[i], '=') {
            // Explicit discriminant: skip to the separating comma.
            i += 1;
            while i < tokens.len() && !is_punct(&tokens[i], ',') {
                i += 1;
            }
        }
        if i < tokens.len() && is_punct(&tokens[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = Attrs::default();
    consume_attrs(&tokens, &mut i, &mut attrs);
    skip_visibility(&tokens, &mut i);
    let kw = expect_ident(&tokens, &mut i, "`struct` or `enum`");
    let name = expect_ident(&tokens, &mut i, "item name");
    if tokens.get(i).map(|t| is_punct(t, '<')).unwrap_or(false) {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    let kind = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(t) if is_punct(t, ';') => ItemKind::UnitStruct,
            _ => panic!("serde shim derive: unsupported struct body for `{name}`"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde shim derive: malformed enum `{name}`"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    };
    Item {
        name,
        rename_snake: attrs.rename_snake,
        kind,
    }
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (idx, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if idx > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn variant_key(item: &Item, variant: &Variant) -> String {
    if item.rename_snake {
        snake_case(&variant.name)
    } else {
        variant.name.clone()
    }
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "__fields.push((\"{0}\".to_string(), \
                     ::serde::Serialize::serialize(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(__fields)");
            s
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let mut s = String::from(
                "let mut __items: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n",
            );
            for idx in 0..*n {
                s.push_str(&format!(
                    "__items.push(::serde::Serialize::serialize(&self.{idx}));\n"
                ));
            }
            s.push_str("::serde::Value::Array(__items)");
            s
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let key = variant_key(item, v);
                match &v.shape {
                    Shape::Unit => s.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{key}\".to_string()),\n",
                        v = v.name
                    )),
                    Shape::Tuple(1) => s.push_str(&format!(
                        "{name}::{v}(__f0) => {{\n\
                         let mut __outer: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         __outer.push((\"{key}\".to_string(), ::serde::Serialize::serialize(__f0)));\n\
                         ::serde::Value::Object(__outer)\n\
                         }}\n",
                        v = v.name
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!("{name}::{v}({}) => {{\n", binders.join(", "), v = v.name);
                        arm.push_str(
                            "let mut __items: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n",
                        );
                        for b in &binders {
                            arm.push_str(&format!(
                                "__items.push(::serde::Serialize::serialize({b}));\n"
                            ));
                        }
                        arm.push_str(
                            "let mut __outer: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        arm.push_str(&format!(
                            "__outer.push((\"{key}\".to_string(), ::serde::Value::Array(__items)));\n"
                        ));
                        arm.push_str("::serde::Value::Object(__outer)\n}\n");
                        s.push_str(&arm);
                    }
                    Shape::Struct(fields) => {
                        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut arm = format!(
                            "{name}::{v} {{ {binds} }} => {{\n",
                            v = v.name,
                            binds = names.join(", ")
                        );
                        arm.push_str(
                            "let mut __inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in &names {
                            arm.push_str(&format!(
                                "__inner.push((\"{f}\".to_string(), ::serde::Serialize::serialize({f})));\n"
                            ));
                        }
                        arm.push_str(
                            "let mut __outer: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        arm.push_str(&format!(
                            "__outer.push((\"{key}\".to_string(), ::serde::Value::Object(__inner)));\n"
                        ));
                        arm.push_str("::serde::Value::Object(__outer)\n}\n");
                        s.push_str(&arm);
                    }
                }
            }
            s.push_str("}\n");
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_named_field_inits(fields: &[Field], obj: &str, ty: &str) -> String {
    let mut s = String::new();
    for f in fields {
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!("::serde::Deserialize::missing(\"{ty}::{f}\")?", f = f.name)
        };
        s.push_str(&format!(
            "{f}: match ::serde::find_field({obj}, \"{f}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize(__x)?,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n",
            f = f.name
        ));
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits = gen_named_field_inits(fields, "__obj", name);
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        ItemKind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize(&__arr[{k}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if __arr.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 \"wrong tuple arity for {name}\"));\n}}\n\
                 ::std::result::Result::Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            for v in variants.iter().filter(|v| matches!(v.shape, Shape::Unit)) {
                unit_arms.push_str(&format!(
                    "\"{key}\" => ::std::result::Result::Ok({name}::{v}),\n",
                    key = variant_key(item, v),
                    v = v.name
                ));
            }
            let mut tagged_arms = String::new();
            for v in variants {
                let key = variant_key(item, v);
                let arm = match &v.shape {
                    Shape::Unit => format!(
                        "\"{key}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    ),
                    Shape::Tuple(1) => format!(
                        "\"{key}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::deserialize(__payload)?)),\n",
                        v = v.name
                    ),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::deserialize(&__arr[{k}])?"))
                            .collect();
                        format!(
                            "\"{key}\" => {{\n\
                             let __arr = __payload.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array payload for {name}::{v}\"))?;\n\
                             if __arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                             \"wrong payload arity for {name}::{v}\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{v}({elems}))\n}}\n",
                            v = v.name,
                            elems = elems.join(", ")
                        )
                    }
                    Shape::Struct(fields) => {
                        let inits = gen_named_field_inits(fields, "__inner", name);
                        format!(
                            "\"{key}\" => {{\n\
                             let __inner = __payload.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object payload for {name}::{v}\"))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{\n{inits}}})\n}}\n",
                            v = v.name
                        )
                    }
                };
                tagged_arms.push_str(&arm);
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 return match __s {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 \"unknown variant for {name}\")),\n}};\n}}\n\
                 if let ::std::option::Option::Some(__obj) = __v.as_object() {{\n\
                 if __obj.len() == 1 {{\n\
                 let __payload = &__obj[0].1;\n\
                 return match __obj[0].0.as_str() {{\n{tagged_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"unknown variant for {name}\")),\n}};\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\
                 \"unsupported encoding for enum {name}\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
