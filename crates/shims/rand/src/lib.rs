//! Offline stand-in for `rand`.
//!
//! Provides the subset this workspace uses: a deterministic
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] core trait, and [`RngExt::random`] for uniform primitives.
//! The generator is xoshiro256++ with a splitmix64 seed expansion, so
//! every stream is fully reproducible from its seed. See
//! `crates/shims/README.md` for why external crates are vendored.

#![forbid(unsafe_code)]

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from raw random bits.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform sample of `T` (`f64` lands in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform integer in `[0, bound)`; `bound` must be non-zero.
    fn random_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "random_below bound must be non-zero");
        // Multiply-shift bounded sampling; bias is negligible for the
        // simulation's bounds (≪ 2^64).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of reproducible generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| StdRng::seed_from_u64(7).random()).collect();
        assert!(xs.iter().all(|&x| x == xs[0]));
        assert_ne!(StdRng::seed_from_u64(7).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..1000).map(|_| rng.random::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(rng.random_below(13) < 13);
        }
    }
}
