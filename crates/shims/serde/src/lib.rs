//! Offline stand-in for `serde`.
//!
//! Real serde's visitor architecture is far more than this workspace
//! needs, so this shim models serialization as conversion to and from an
//! owned [`Value`] tree (the same shape `serde_json` exposes). The
//! `Serialize`/`Deserialize` derive macros come from the sibling
//! `serde_derive` shim. The `derive` cargo feature exists for manifest
//! compatibility and is a no-op: the derives are always re-exported.
//! See `crates/shims/README.md` for why external crates are vendored.

#![forbid(unsafe_code)]

// Lets the derive-generated `::serde::...` paths resolve inside this
// crate's own tests.
extern crate self as serde;

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like data tree; the interchange format for this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (precision-preserving, see [`Number`]).
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A number that remembers whether it was an unsigned/signed integer or a
/// float, so `u64`/`i64` round-trip without precision loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Value {
    /// Returns the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a field in an object's entry list (first match wins).
pub fn find_field<'v>(entries: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn deserialize(value: &Value) -> Result<Self, Error>;

    /// Called when a struct field is absent and has no `#[serde(default)]`.
    /// `Option<T>` overrides this to yield `None`; everything else errors.
    fn missing(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ----------------------------------------------------------- primitives

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Num(Number::U(v as u64))
                } else {
                    Value::Num(Number::I(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Num(Number::F(*self as f64))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

fn int_from(value: &Value, what: &str) -> Result<i128, Error> {
    match value {
        Value::Num(Number::U(u)) => Ok(*u as i128),
        Value::Num(Number::I(i)) => Ok(*i as i128),
        Value::Num(Number::F(f)) if f.fract() == 0.0 && f.abs() < 9.0e18 => Ok(*f as i128),
        other => Err(Error::custom(format!("expected {what}, got {other:?}"))),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = int_from(value, stringify!($t))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!(
                        "integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Num(Number::F(f)) => Ok(*f),
            Value::Num(Number::U(u)) => Ok(*u as f64),
            Value::Num(Number::I(i)) => Ok(*i as f64),
            other => Err(Error::custom(format!("expected f64, got {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom("expected 2-tuple array"))?;
        if items.len() != 2 {
            return Err(Error::custom(format!(
                "expected 2 elements, got {}",
                items.len()
            )));
        }
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom("expected 3-tuple array"))?;
        if items.len() != 3 {
            return Err(Error::custom(format!(
                "expected 3 elements, got {}",
                items.len()
            )));
        }
        Ok((
            A::deserialize(&items[0])?,
            B::deserialize(&items[1])?,
            C::deserialize(&items[2])?,
        ))
    }
}

// Maps serialize as arrays of `[key, value]` pairs. Unlike real serde this
// also applies to string keys — acceptable here because the workspace never
// JSON round-trips map-bearing types through external tooling.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array of pairs for map"))?
            .iter()
            .map(<(K, V)>::deserialize)
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array for set"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn numbers_cross_convert() {
        // A float-typed field can be fed an integer literal.
        assert_eq!(f64::deserialize(&Value::Num(Number::U(3))).unwrap(), 3.0);
        // An integer field accepts an integral float.
        assert_eq!(u32::deserialize(&Value::Num(Number::F(9.0))).unwrap(), 9);
        assert!(u32::deserialize(&Value::Num(Number::F(9.5))).is_err());
        assert!(u8::deserialize(&Value::Num(Number::U(300))).is_err());
    }

    #[test]
    fn option_handles_null_and_missing() {
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::deserialize(&Value::Num(Number::U(5))).unwrap(),
            Some(5)
        );
        assert_eq!(Option::<u32>::missing("x").unwrap(), None);
        assert!(u32::missing("x").is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert(2u32, "b".to_string());
        m.insert(1u32, "a".to_string());
        assert_eq!(
            BTreeMap::<u32, String>::deserialize(&m.serialize()).unwrap(),
            m
        );

        let s: BTreeSet<i64> = [3, 1, 2].into_iter().collect();
        assert_eq!(BTreeSet::<i64>::deserialize(&s.serialize()).unwrap(), s);

        let pair = ("k".to_string(), 9u64);
        assert_eq!(
            <(String, u64)>::deserialize(&pair.serialize()).unwrap(),
            pair
        );
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Plain {
        id: u32,
        name: String,
        #[serde(default)]
        tags: Vec<String>,
        note: Option<String>,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Wrapper(u64);

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Pair(u32, String);

    #[derive(Serialize, Deserialize, Debug, PartialEq, Clone, Copy)]
    #[serde(rename_all = "snake_case")]
    enum Mode {
        DarkLaunch,
        FullRollout,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    enum Shape {
        Flat,
        Point(u32),
        Pairwise(u32, u32),
        Region { x: f64, y: f64 },
    }

    #[test]
    fn derived_struct_round_trips() {
        let p = Plain {
            id: 7,
            name: "svc".into(),
            tags: vec!["a".into()],
            note: None,
        };
        assert_eq!(Plain::deserialize(&p.serialize()).unwrap(), p);
    }

    #[test]
    fn derived_struct_defaults_missing_fields() {
        let v = Value::Object(vec![
            ("id".to_string(), Value::Num(Number::U(1))),
            ("name".to_string(), Value::Str("x".to_string())),
        ]);
        let p = Plain::deserialize(&v).unwrap();
        assert!(p.tags.is_empty());
        assert_eq!(p.note, None);

        // Missing non-default, non-Option field is an error.
        let bad = Value::Object(vec![("id".to_string(), Value::Num(Number::U(1)))]);
        assert!(Plain::deserialize(&bad).is_err());
    }

    #[test]
    fn derived_newtype_and_tuple_round_trip() {
        let w = Wrapper(123);
        assert_eq!(w.serialize(), Value::Num(Number::U(123)));
        assert_eq!(Wrapper::deserialize(&w.serialize()).unwrap(), w);

        let pr = Pair(4, "four".into());
        assert_eq!(Pair::deserialize(&pr.serialize()).unwrap(), pr);
    }

    #[test]
    fn derived_enum_round_trips() {
        assert_eq!(
            Mode::DarkLaunch.serialize(),
            Value::Str("dark_launch".to_string())
        );
        for m in [Mode::DarkLaunch, Mode::FullRollout] {
            assert_eq!(Mode::deserialize(&m.serialize()).unwrap(), m);
        }
        for s in [
            Shape::Flat,
            Shape::Point(3),
            Shape::Pairwise(1, 2),
            Shape::Region { x: 0.5, y: -2.0 },
        ] {
            let again = Shape::deserialize(&s.serialize()).unwrap();
            assert_eq!(again, s);
        }
        assert!(Mode::deserialize(&Value::Str("warp".to_string())).is_err());
    }
}
