//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel` module subset this workspace uses: MPMC
//! bounded/unbounded channels with crossbeam's disconnect semantics,
//! built on `std::sync::{Mutex, Condvar}`. See `crates/shims/README.md`
//! for why external crates are vendored.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message is handed back.
        Full(T),
        /// Every receiver is gone; the message is handed back.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the stream has ended.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Nothing queued and every sender is gone.
        Disconnected,
    }

    /// A channel holding at most `capacity` undelivered messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(capacity))
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Shared<T> {
        fn is_full(&self, len: usize) -> bool {
            self.capacity.is_some_and(|c| len >= c)
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; waits while the channel is full.
        ///
        /// # Errors
        ///
        /// [`SendError`] when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                if !self.shared.is_full(queue.len()) {
                    queue.push_back(msg);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                queue = self
                    .shared
                    .not_full
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking send.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Disconnected`] when every receiver is gone,
        /// [`TrySendError::Full`] when the channel is at capacity.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if self.shared.is_full(queue.len()) {
                return Err(TrySendError::Full(msg));
            }
            queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; waits while the channel is empty.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] at end of stream.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Hold the lock so waiters never miss the wake-up.
                let _guard = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _guard = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError, TrySendError};

    #[test]
    fn bounded_blocks_and_preserves_order() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let t = std::thread::spawn(move || tx.send(3).unwrap());
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_unblocks_when_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx2);
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn try_send_disconnected_when_receiver_gone() {
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert!(matches!(tx.try_send(7), Err(TrySendError::Disconnected(7))));
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn multi_producer_delivers_everything() {
        let (tx, rx) = bounded::<u32>(4);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        tx.send(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 400);
    }
}
