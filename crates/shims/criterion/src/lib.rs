//! Offline stand-in for `criterion`.
//!
//! A minimal functional bench harness covering the builder/macro surface
//! this workspace's benches use. It times each benchmark over
//! `sample_size` iterations and prints a mean per-iteration figure — no
//! statistics, plots, or baselines. See `crates/shims/README.md` for why
//! external crates are vendored.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] for call-site compatibility.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark label, possibly parameterized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: usize,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock cost.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One untimed warm-up iteration.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.nanos_per_iter = total.as_nanos() as f64 / self.iters.max(1) as f64;
    }
}

fn run_one(full_label: &str, iters: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        nanos_per_iter: f64::NAN,
    };
    f(&mut b);
    if b.nanos_per_iter.is_finite() {
        println!(
            "bench {full_label:<48} {:>14.1} ns/iter ({iters} iters)",
            b.nanos_per_iter
        );
    } else {
        println!("bench {full_label:<48} (no measurement)");
    }
}

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the iteration count used for each benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().label, self.sample_size, &mut f);
        self
    }
}

/// A named group; member labels are prefixed with the group name.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)? $(;)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| black_box(2) * 2));
        g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| b.iter(|| x * x));
        g.bench_with_input(BenchmarkId::from_parameter(9), &9, |b, &x| b.iter(|| x + x));
        g.finish();
    }

    criterion_group!(benches, trivial);

    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(2);
        targets = trivial,
    }

    #[test]
    fn harness_runs() {
        benches();
        configured();
    }
}
