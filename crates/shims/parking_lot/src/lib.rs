//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std locks and strips poisoning, matching the real crate's
//! `read()`/`write()`/`lock()` signatures that return guards directly.
//! See `crates/shims/README.md` for why external crates are vendored.

#![forbid(unsafe_code)]

/// Read guard, identical to the std guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard, identical to the std guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Mutex guard, identical to the std guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader–writer lock whose guards ignore poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock whose guard ignores poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 2;
        assert_eq!(m.into_inner(), 7);
    }
}
