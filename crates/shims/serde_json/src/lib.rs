//! Offline stand-in for `serde_json`.
//!
//! A recursive-descent JSON parser and printer over the shim
//! [`serde::Value`] tree, exposing the handful of entry points this
//! workspace uses (`from_str`, `to_string`, `to_string_pretty`). See
//! `crates/shims/README.md` for why external crates are vendored.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Deserialize, Number, Serialize, Value};

/// JSON error (parse or data-model mismatch), with byte offset for parse
/// failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching real serde_json's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Parses a JSON document into `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let value = parse_value_complete(input)?;
    T::deserialize(&value).map_err(Error::from)
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

// ------------------------------------------------------------- printing

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) => {
            if !f.is_finite() {
                // Real serde_json refuses non-finite floats; emitting null
                // keeps the printer infallible and matches common practice.
                out.push_str("null");
            } else {
                let text = format!("{f}");
                let looks_integral = !text.contains(['.', 'e', 'E']);
                out.push_str(&text);
                if looks_integral {
                    // Keep float-ness visible so a re-parse yields a float.
                    out.push_str(".0");
                }
            }
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, n),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space after comma, matching serde_json
                    }
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// -------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let code = u16::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_value_complete("null").unwrap(), Value::Null);
        assert_eq!(parse_value_complete("true").unwrap(), Value::Bool(true));
        assert_eq!(
            parse_value_complete("42").unwrap(),
            Value::Num(Number::U(42))
        );
        assert_eq!(
            parse_value_complete("-3").unwrap(),
            Value::Num(Number::I(-3))
        );
        assert_eq!(
            parse_value_complete("2.5").unwrap(),
            Value::Num(Number::F(2.5))
        );
        assert_eq!(
            parse_value_complete("1e3").unwrap(),
            Value::Num(Number::F(1000.0))
        );
        assert_eq!(
            parse_value_complete("\"a\\nb\\u0041\"").unwrap(),
            Value::Str("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_value_complete(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        let Value::Object(entries) = v else {
            panic!("not an object")
        };
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1], ("c".to_string(), Value::Str("x".to_string())));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"open", "tru", "{\"a\" 1}", "1 2", "{'a': 1}"] {
            assert!(parse_value_complete(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn floats_stay_floats_across_round_trip() {
        let s = to_string(&40.0f64).unwrap();
        assert_eq!(s, "40.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 40.0);
    }

    #[derive(serde::Serialize, serde::Deserialize, Debug, PartialEq)]
    struct Doc {
        name: String,
        count: u64,
        ratio: f64,
        #[serde(default)]
        labels: Vec<String>,
    }

    #[test]
    fn typed_round_trip_compact_and_pretty() {
        let doc = Doc {
            name: "svc \"edge\"\n".to_string(),
            count: 12,
            ratio: 0.25,
            labels: vec!["a".into(), "b".into()],
        };
        let compact = to_string(&doc).unwrap();
        let pretty = to_string_pretty(&doc).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Doc>(&compact).unwrap(), doc);
        assert_eq!(from_str::<Doc>(&pretty).unwrap(), doc);
    }

    #[test]
    fn missing_defaulted_field_parses() {
        let doc: Doc = from_str(r#"{"name": "x", "count": 1, "ratio": 1.5}"#).unwrap();
        assert!(doc.labels.is_empty());
    }
}
