//! Synthetic KPI generators.
//!
//! The paper stresses that KPIs in internet-based services are "quite diverse
//! intrinsically", and its Table 1 splits the evaluation by three character
//! classes (§4.2.1):
//!
//! * **seasonal** — strong time-of-day / day-of-week pattern (page view
//!   count, advertisement clicks),
//! * **stationary** — flat around a level (memory utilization),
//! * **variable** — high short-term variability (CPU context switch count,
//!   NIC throughput).
//!
//! [`KpiGenerator`] produces all three deterministically from a seed. The
//! underlying noise is an AR(1) process (for temporal correlation, as real
//! telemetry has) plus, for the variable class, heavy-tailed bursts.

use crate::series::{MinuteBin, TimeSeries};
use crate::MINUTES_PER_DAY;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Standard normal sample via Box–Muller (rand's core crate does not ship a
/// normal distribution; this keeps the dependency surface minimal).
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0) by nudging u1 away from zero.
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The paper's three KPI character classes (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KpiClass {
    /// Strong time-of-day / day-of-week pattern.
    Seasonal,
    /// Flat around a base level.
    Stationary,
    /// High short-term variability with bursts.
    Variable,
}

impl KpiClass {
    /// All classes, in Table-1 order.
    pub const ALL: [KpiClass; 3] = [KpiClass::Seasonal, KpiClass::Stationary, KpiClass::Variable];
}

impl std::fmt::Display for KpiClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KpiClass::Seasonal => write!(f, "Seasonal"),
            KpiClass::Stationary => write!(f, "Stationary"),
            KpiClass::Variable => write!(f, "Variable"),
        }
    }
}

/// Deterministic diurnal/weekly shape evaluated at an absolute minute.
///
/// The profile is a raised cosine peaking at `peak_minute_of_day`, scaled by
/// `daily_amplitude`, and damped on weekends by `weekend_factor` (days 5 and
/// 6 of each 7-day cycle). It multiplies a generator's base level, so a
/// profile value of `1.0` means "at base level".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeasonalProfile {
    /// Minute of day (0..1440) at which traffic peaks.
    pub peak_minute_of_day: u32,
    /// Peak-to-trough swing as a fraction of base level (e.g. `0.6`).
    pub daily_amplitude: f64,
    /// Multiplier applied on weekend days (e.g. `0.7` for quieter weekends).
    pub weekend_factor: f64,
}

impl SeasonalProfile {
    /// A typical consumer-web profile: afternoon peak, ±60 % swing, quieter
    /// weekends.
    pub fn typical_web() -> Self {
        Self {
            peak_minute_of_day: 15 * 60,
            daily_amplitude: 0.6,
            weekend_factor: 0.75,
        }
    }

    /// A flat profile (no seasonality); used for stationary/variable KPIs.
    pub fn flat() -> Self {
        Self {
            peak_minute_of_day: 0,
            daily_amplitude: 0.0,
            weekend_factor: 1.0,
        }
    }

    /// The multiplicative factor at absolute minute `bin`.
    pub fn factor_at(&self, bin: MinuteBin) -> f64 {
        let minute_of_day = (bin % MINUTES_PER_DAY as u64) as f64;
        let day_of_week = (bin / MINUTES_PER_DAY as u64) % 7;
        let phase = (minute_of_day - self.peak_minute_of_day as f64) / MINUTES_PER_DAY as f64
            * std::f64::consts::TAU;
        let daily = 1.0 + self.daily_amplitude * phase.cos();
        let weekly = if day_of_week >= 5 {
            self.weekend_factor
        } else {
            1.0
        };
        daily * weekly
    }
}

/// Configuration for one synthetic KPI stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KpiGenerator {
    /// Character class (selects the default shape parameters).
    pub class: KpiClass,
    /// Base level around which the KPI moves (e.g. 1000 page views/min,
    /// 55 % memory utilization).
    pub base_level: f64,
    /// Standard deviation of the AR(1) innovation, as a fraction of
    /// `base_level`.
    pub noise_frac: f64,
    /// AR(1) coefficient in `[0, 1)`; higher means smoother noise.
    pub ar_coeff: f64,
    /// Seasonal shape (meaningful for [`KpiClass::Seasonal`], usually flat
    /// otherwise).
    pub profile: SeasonalProfile,
    /// Probability per minute of a short heavy burst (variable KPIs).
    pub burst_prob: f64,
    /// Burst magnitude as a multiple of `base_level`.
    pub burst_scale: f64,
    /// Whether values are clamped at zero (counters and utilizations are
    /// non-negative).
    pub non_negative: bool,
}

impl KpiGenerator {
    /// Defaults for `class` at the given base level.
    pub fn for_class(class: KpiClass, base_level: f64) -> Self {
        match class {
            KpiClass::Seasonal => Self {
                class,
                base_level,
                noise_frac: 0.02,
                ar_coeff: 0.6,
                profile: SeasonalProfile::typical_web(),
                burst_prob: 0.0,
                burst_scale: 0.0,
                non_negative: true,
            },
            // Genuinely stationary, like the memory utilization the paper
            // names: weak short-memory noise, no low-frequency wander (an
            // AR coefficient near 1 would make "stationary" KPIs drift for
            // tens of minutes at a time, which real gauges do not).
            KpiClass::Stationary => Self {
                class,
                base_level,
                noise_frac: 0.008,
                ar_coeff: 0.45,
                profile: SeasonalProfile::flat(),
                burst_prob: 0.0,
                burst_scale: 0.0,
                non_negative: true,
            },
            KpiClass::Variable => Self {
                class,
                base_level,
                noise_frac: 0.12,
                ar_coeff: 0.3,
                profile: SeasonalProfile::flat(),
                burst_prob: 0.02,
                burst_scale: 0.8,
                non_negative: true,
            },
        }
    }

    /// Generates `len` one-minute bins starting at absolute minute `start`,
    /// deterministically from `seed`.
    pub fn generate(&self, start: MinuteBin, len: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = Vec::with_capacity(len);
        let sigma = self.noise_frac * self.base_level;
        // Stationary-variance start for the AR(1) state.
        let mut ar = gaussian(&mut rng) * sigma / (1.0 - self.ar_coeff * self.ar_coeff).sqrt();
        for i in 0..len {
            let bin = start + i as u64;
            ar = self.ar_coeff * ar + gaussian(&mut rng) * sigma;
            let mut v = self.base_level * self.profile.factor_at(bin) + ar;
            if self.burst_prob > 0.0 && rng.random::<f64>() < self.burst_prob {
                // One-sided heavy burst: exponential tail.
                let e: f64 = rng.random::<f64>().max(1e-12);
                v += self.burst_scale * self.base_level * (-e.ln());
            }
            if self.non_negative {
                v = v.max(0.0);
            }
            values.push(v);
        }
        TimeSeries::new(start, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, population_std};

    #[test]
    fn generation_is_deterministic() {
        let g = KpiGenerator::for_class(KpiClass::Variable, 100.0);
        let a = g.generate(0, 500, 42);
        let b = g.generate(0, 500, 42);
        assert_eq!(a, b);
        let c = g.generate(0, 500, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn seasonal_profile_peaks_at_peak_minute() {
        let p = SeasonalProfile::typical_web();
        let peak = p.factor_at(p.peak_minute_of_day as u64);
        let trough = p.factor_at((p.peak_minute_of_day + 720) as u64 % 1440);
        assert!(peak > trough);
        assert!((peak - (1.0 + p.daily_amplitude)).abs() < 1e-9);
    }

    #[test]
    fn weekend_damping_applies_on_days_5_and_6() {
        let p = SeasonalProfile::typical_web();
        let weekday = p.factor_at(2 * 1440 + 900);
        let weekend = p.factor_at(5 * 1440 + 900);
        assert!((weekend / weekday - p.weekend_factor).abs() < 1e-9);
    }

    #[test]
    fn stationary_series_hovers_near_base() {
        let g = KpiGenerator::for_class(KpiClass::Stationary, 50.0);
        let s = g.generate(0, 2000, 7);
        let m = mean(s.values());
        assert!((m - 50.0).abs() < 1.0, "mean {m}");
        assert!(population_std(s.values()) < 2.0);
    }

    #[test]
    fn seasonal_series_swings_with_the_day() {
        let g = KpiGenerator::for_class(KpiClass::Seasonal, 1000.0);
        let s = g.generate(0, 2 * 1440, 11);
        let peak_minute = g.profile.peak_minute_of_day as usize;
        let peak = s.values()[peak_minute];
        let trough = s.values()[(peak_minute + 720) % 1440];
        assert!(peak > trough * 2.0, "peak {peak} trough {trough}");
    }

    #[test]
    fn variable_series_is_noisier_than_stationary() {
        let var = KpiGenerator::for_class(KpiClass::Variable, 100.0).generate(0, 3000, 5);
        let sta = KpiGenerator::for_class(KpiClass::Stationary, 100.0).generate(0, 3000, 5);
        assert!(population_std(var.values()) > 5.0 * population_std(sta.values()));
    }

    #[test]
    fn non_negative_clamps() {
        let mut g = KpiGenerator::for_class(KpiClass::Variable, 0.5);
        g.noise_frac = 5.0;
        let s = g.generate(0, 1000, 3);
        assert!(s.values().iter().all(|&v| v >= 0.0));
    }
}
