//! Fixed-capacity ring buffers for streaming KPI windows.
//!
//! The batch pipeline materializes each KPI as an ever-growing dense
//! [`TimeSeries`]; fine for replay-then-assess, fatal for a continuously
//! running engine where millions of KPIs each gain one bin per minute
//! forever. [`RingSeries`] is the bounded substitute: the same
//! append/forward-fill/backfill semantics as the store's dense series plus
//! coverage mask, but holding at most `capacity` most-recent bins — older
//! bins are evicted from the front as the window slides, so resident memory
//! per KPI is a constant chosen up front, never a function of uptime.
//!
//! Semantics contract (checked by `tests/ring_model.rs` against a naive
//! unbounded model): over the retained window a `RingSeries` is
//! *byte-identical* to what `MetricStore::append`/`backfill` would have
//! produced — first write wins, gaps forward-fill from the last value with
//! only the real minute marked measured, and a backfill re-fills subsequent
//! fill bins up to the next real measurement. Writes that land before the
//! retained window (evicted history) are refused, not guessed at: eviction
//! destroys the presence bits needed to honour first-write-wins there.

use crate::mask::CoverageMask;
use crate::series::{MinuteBin, TimeSeries};
use std::collections::VecDeque;

/// Outcome of offering a measurement to a [`RingSeries`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingWrite {
    /// The measurement landed in the window (possibly extending it).
    Accepted,
    /// The bin already held a real measurement, or the minute predates the
    /// frontier on the live path — first write wins.
    Duplicate,
    /// The minute falls before the retained window: its history has been
    /// evicted and the write cannot be honoured.
    Evicted,
}

/// A bounded sliding window over one KPI: dense values plus per-bin
/// presence bits, anchored at an absolute minute, evicting from the front
/// once more than `capacity` bins are held.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSeries {
    /// Absolute minute of the oldest retained bin (meaningless until the
    /// first measurement anchors the ring).
    start: MinuteBin,
    /// Retained values, oldest first; `values[i]` covers `start + i`.
    values: VecDeque<f64>,
    /// Presence bit per retained bin: `true` = real measurement,
    /// `false` = forward-fill.
    present: VecDeque<bool>,
    /// Maximum number of retained bins (≥ 1).
    capacity: usize,
    /// Whether the first measurement has anchored the ring.
    anchored: bool,
    /// Total bins evicted from the front over the ring's lifetime.
    evicted: u64,
}

impl RingSeries {
    /// An empty ring retaining at most `capacity` bins (clamped to ≥ 1).
    /// The ring anchors itself at the first measurement's minute.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            start: 0,
            values: VecDeque::with_capacity(capacity),
            present: VecDeque::with_capacity(capacity),
            capacity,
            anchored: false,
            evicted: 0,
        }
    }

    /// Maximum number of retained bins.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Absolute minute of the oldest retained bin (0 before anchoring).
    pub fn start(&self) -> MinuteBin {
        self.start
    }

    /// One past the newest retained bin (equals [`RingSeries::start`] while
    /// empty).
    pub fn end(&self) -> MinuteBin {
        self.start + self.values.len() as u64
    }

    /// Number of retained bins.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no bins are retained yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total bins evicted from the front since creation — nonzero means the
    /// ring no longer covers its original anchor.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The value at absolute minute `bin`, if retained.
    pub fn at(&self, bin: MinuteBin) -> Option<f64> {
        if !self.anchored || bin < self.start {
            return None;
        }
        self.values.get((bin - self.start) as usize).copied()
    }

    /// Whether `minute` holds a real measurement (false for fills, evicted
    /// history, and bins beyond the frontier).
    pub fn is_present(&self, minute: MinuteBin) -> bool {
        if !self.anchored || minute < self.start {
            return false;
        }
        self.present
            .get((minute - self.start) as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Fraction of `[from, to)` holding real measurements; bins outside the
    /// retained window count as missing, an empty range has coverage 0.
    pub fn coverage(&self, from: MinuteBin, to: MinuteBin) -> f64 {
        if to <= from {
            return 0.0;
        }
        let mut measured = 0usize;
        let lo = from.max(self.start);
        for (i, &p) in self.present.iter().enumerate() {
            let minute = self.start + i as u64;
            if minute >= lo && minute < to && p {
                measured += 1;
            }
        }
        measured as f64 / (to - from) as f64
    }

    /// Resident bytes attributed to this ring's window storage — a
    /// deterministic accounting figure (capacity × per-bin cost), not an
    /// allocator measurement, so memory-budget assertions reproduce
    /// bit-for-bit across runs and platforms.
    pub fn window_bytes(&self) -> usize {
        self.capacity * (std::mem::size_of::<f64>() + std::mem::size_of::<bool>())
    }

    /// Offers a live measurement, mirroring `MetricStore::append`: the first
    /// measurement anchors the ring; minutes at or behind the frontier are
    /// refused ([`RingWrite::Duplicate`] — first write wins); gaps
    /// forward-fill from the last value with only `minute` marked measured;
    /// and once the window exceeds capacity the oldest bins are evicted.
    pub fn push(&mut self, minute: MinuteBin, value: f64) -> RingWrite {
        if !self.anchored {
            self.start = minute;
            self.anchored = true;
            self.values.push_back(value);
            self.present.push_back(true);
            return RingWrite::Accepted;
        }
        let end = self.end();
        if minute < end {
            return RingWrite::Duplicate;
        }
        let fill = self.values.back().copied().unwrap_or(value);
        if minute - end >= self.capacity as u64 {
            // The gap alone overflows the window: everything retained — and
            // every fill bin but the last capacity-1 — would be evicted
            // anyway. Jump straight to the final state in O(capacity).
            let skipped = self.values.len() as u64 + (minute - end) - (self.capacity as u64 - 1);
            self.evicted += skipped;
            self.values.clear();
            self.present.clear();
            self.start = minute - (self.capacity as u64 - 1);
            for _ in 0..self.capacity - 1 {
                self.values.push_back(fill);
                self.present.push_back(false);
            }
            self.values.push_back(value);
            self.present.push_back(true);
            return RingWrite::Accepted;
        }
        let mut cursor = end;
        while cursor < minute {
            self.values.push_back(fill);
            self.present.push_back(false);
            cursor += 1;
        }
        self.values.push_back(value);
        self.present.push_back(true);
        while self.values.len() > self.capacity {
            self.values.pop_front();
            self.present.pop_front();
            self.start += 1;
            self.evicted += 1;
        }
        RingWrite::Accepted
    }

    /// Offers a late measurement for a historical bin, mirroring
    /// `MetricStore::backfill` over the retained window: beyond the frontier
    /// it behaves like [`RingSeries::push`]; inside the window it is
    /// accepted iff the bin is a forward-fill (first write wins), re-filling
    /// subsequent fill bins with the recovered value up to the next real
    /// measurement; before the window it is refused as
    /// [`RingWrite::Evicted`].
    pub fn backfill(&mut self, minute: MinuteBin, value: f64) -> RingWrite {
        if !self.anchored || minute >= self.end() {
            return self.push(minute, value);
        }
        if minute < self.start {
            return RingWrite::Evicted;
        }
        let idx = (minute - self.start) as usize;
        if self.present.get(idx).copied().unwrap_or(false) {
            return RingWrite::Duplicate;
        }
        if let Some(v) = self.values.get_mut(idx) {
            *v = value;
        }
        let mut i = idx + 1;
        while i < self.values.len() {
            if self.present.get(i).copied().unwrap_or(true) {
                break;
            }
            if let Some(v) = self.values.get_mut(i) {
                *v = value;
            }
            i += 1;
        }
        if let Some(p) = self.present.get_mut(idx) {
            *p = true;
        }
        RingWrite::Accepted
    }

    /// Materializes the retained window as a dense [`TimeSeries`] — the
    /// read view the assessment pipeline consumes. While nothing has been
    /// evicted this is byte-identical to the store's series for the key.
    pub fn to_series(&self) -> TimeSeries {
        TimeSeries::new(self.start, self.values.iter().copied().collect())
    }

    /// Materializes the retained presence bits as a [`CoverageMask`]
    /// aligned with [`RingSeries::to_series`].
    pub fn to_mask(&self) -> CoverageMask {
        CoverageMask::from_bits(self.start, self.present.iter().copied().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_at_first_measurement() {
        let mut r = RingSeries::new(8);
        assert!(r.is_empty());
        assert_eq!(r.push(5, 1.0), RingWrite::Accepted);
        assert_eq!(r.start(), 5);
        assert_eq!(r.end(), 6);
        assert_eq!(r.at(5), Some(1.0));
        assert!(r.is_present(5));
    }

    #[test]
    fn fills_gaps_and_suppresses_late_writes() {
        let mut r = RingSeries::new(8);
        r.push(5, 1.0);
        r.push(6, 2.0);
        assert_eq!(r.push(9, 5.0), RingWrite::Accepted);
        assert_eq!(r.to_series().values(), &[1.0, 2.0, 2.0, 2.0, 5.0]);
        assert!(!r.is_present(7) && !r.is_present(8));
        assert_eq!(r.push(6, 99.0), RingWrite::Duplicate);
        assert_eq!(r.at(6), Some(2.0));
    }

    #[test]
    fn evicts_from_front_at_capacity() {
        let mut r = RingSeries::new(3);
        for m in 0..5 {
            r.push(m, m as f64);
        }
        assert_eq!(r.start(), 2);
        assert_eq!(r.to_series().values(), &[2.0, 3.0, 4.0]);
        assert_eq!(r.evicted(), 2);
        assert_eq!(r.at(1), None);
    }

    #[test]
    fn huge_gap_takes_shortcut_to_same_state() {
        let mut short = RingSeries::new(4);
        short.push(0, 1.0);
        short.push(100, 9.0); // gap ≫ capacity
        assert_eq!(short.start(), 97);
        assert_eq!(short.to_series().values(), &[1.0, 1.0, 1.0, 9.0]);
        assert!(short.is_present(100));
        assert!(!short.is_present(99));
        assert_eq!(short.evicted(), 97);
    }

    #[test]
    fn backfill_refills_like_store() {
        let mut r = RingSeries::new(16);
        r.push(5, 1.0);
        r.push(9, 4.0);
        assert_eq!(r.backfill(7, 3.0), RingWrite::Accepted);
        assert_eq!(r.to_series().values(), &[1.0, 1.0, 3.0, 3.0, 4.0]);
        assert!(r.is_present(7));
        assert!(!r.is_present(6) && !r.is_present(8));
        assert_eq!(r.backfill(5, 99.0), RingWrite::Duplicate);
    }

    #[test]
    fn backfill_into_evicted_range_is_refused() {
        let mut r = RingSeries::new(3);
        for m in 0..6 {
            r.push(m, m as f64);
        }
        assert_eq!(r.start(), 3);
        assert_eq!(r.backfill(1, 42.0), RingWrite::Evicted);
        assert_eq!(r.to_series().values(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn backfill_past_frontier_extends_like_push() {
        let mut r = RingSeries::new(8);
        r.push(0, 1.0);
        assert_eq!(r.backfill(3, 5.0), RingWrite::Accepted);
        assert_eq!(r.to_series().values(), &[1.0, 1.0, 1.0, 5.0]);
        assert!(r.is_present(3));
    }

    #[test]
    fn mask_and_series_views_align() {
        let mut r = RingSeries::new(8);
        r.push(2, 1.0);
        r.push(5, 2.0);
        let s = r.to_series();
        let m = r.to_mask();
        assert_eq!(s.start(), m.start());
        assert_eq!(s.len(), m.len());
        assert_eq!(m.bits(), &[true, false, false, true]);
        assert_eq!(r.coverage(2, 6), 0.5);
    }

    #[test]
    fn window_bytes_is_capacity_proportional() {
        let r = RingSeries::new(100);
        assert_eq!(r.window_bytes(), 100 * 9);
    }
}
