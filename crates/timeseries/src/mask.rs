//! Per-minute coverage masks for degraded telemetry.
//!
//! The collection substrate forward-fills gaps so downstream windows always
//! see dense series ([`crate::series::TimeSeries`] is gapless by
//! construction), which means a dense series alone cannot tell a real
//! measurement from a fill. A [`CoverageMask`] carries that missing bit of
//! provenance: which minutes of a series were actually measured. Detection
//! and causality layers use it to skip windows that are mostly interpolation
//! and to report `Inconclusive` instead of over-trusting filled data.

use crate::series::MinuteBin;
use serde::{Deserialize, Serialize};

/// Which minutes of a dense series hold real measurements.
///
/// The mask is anchored at an absolute minute like a
/// [`crate::series::TimeSeries`]; bins outside the mask count as missing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageMask {
    start: MinuteBin,
    present: Vec<bool>,
}

impl CoverageMask {
    /// An empty mask anchored at `start`.
    pub fn new(start: MinuteBin) -> Self {
        Self {
            start,
            present: Vec::new(),
        }
    }

    /// A mask marking every minute of `[start, start + len)` as measured.
    pub fn all_present(start: MinuteBin, len: usize) -> Self {
        Self {
            start,
            present: vec![true; len],
        }
    }

    /// The absolute minute of the first bin.
    pub fn start(&self) -> MinuteBin {
        self.start
    }

    /// One past the last covered bin.
    pub fn end(&self) -> MinuteBin {
        self.start + self.present.len() as u64
    }

    /// Number of bins the mask spans (present or not).
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// Whether the mask spans no bins.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Re-anchors an empty mask (mirrors the store re-anchoring an empty
    /// series at its first real measurement). No-op when bins exist.
    pub fn rebase(&mut self, start: MinuteBin) {
        if self.present.is_empty() {
            self.start = start;
        }
    }

    /// Marks `minute` as actually measured, growing the mask (intervening
    /// minutes default to missing). Minutes before `start` are ignored.
    pub fn mark(&mut self, minute: MinuteBin) {
        if minute < self.start {
            return;
        }
        let idx = (minute - self.start) as usize;
        if idx >= self.present.len() {
            self.present.resize(idx + 1, false);
        }
        self.present[idx] = true;
    }

    /// Whether `minute` holds a real measurement.
    pub fn is_present(&self, minute: MinuteBin) -> bool {
        if minute < self.start {
            return false;
        }
        self.present
            .get((minute - self.start) as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Number of measured minutes in `[from, to)`.
    pub fn present_in(&self, from: MinuteBin, to: MinuteBin) -> usize {
        if to <= from {
            return 0;
        }
        let lo = from.max(self.start);
        let hi = to.min(self.end());
        if lo >= hi {
            return 0;
        }
        self.present[(lo - self.start) as usize..(hi - self.start) as usize]
            .iter()
            .filter(|&&p| p)
            .count()
    }

    /// Fraction of `[from, to)` that was actually measured. Minutes outside
    /// the mask count as missing; an empty range has coverage 0.
    pub fn coverage(&self, from: MinuteBin, to: MinuteBin) -> f64 {
        if to <= from {
            return 0.0;
        }
        self.present_in(from, to) as f64 / (to - from) as f64
    }

    /// Maximal runs of consecutive missing bins within `[from, to)`, as
    /// half-open `(gap_start, gap_end)` pairs in ascending order. Bins
    /// outside the mask count as missing, matching
    /// [`CoverageMask::coverage`] — an unhealed partition that truncated
    /// the mask shows up as a trailing gap, not as silence.
    pub fn gaps_in(&self, from: MinuteBin, to: MinuteBin) -> Vec<(MinuteBin, MinuteBin)> {
        let mut gaps = Vec::new();
        if to <= from {
            return gaps;
        }
        let mut open: Option<MinuteBin> = None;
        for minute in from..to {
            if self.is_present(minute) {
                if let Some(start) = open.take() {
                    gaps.push((start, minute));
                }
            } else if open.is_none() {
                open = Some(minute);
            }
        }
        if let Some(start) = open {
            gaps.push((start, to));
        }
        gaps
    }

    /// Length in minutes of the longest contiguous run of missing bins in
    /// `[from, to)` (0 = every minute measured). The signature a correlated
    /// outage leaves behind: independent per-frame loss makes many short
    /// gaps, a partition makes one long one.
    pub fn longest_gap(&self, from: MinuteBin, to: MinuteBin) -> u64 {
        self.gaps_in(from, to)
            .into_iter()
            .map(|(s, e)| e - s)
            .max()
            .unwrap_or(0)
    }

    /// The raw presence bits, index 0 = [`CoverageMask::start`]. Together
    /// with the anchor this is the mask's full state — what a recovery
    /// checkpoint serializes ([`CoverageMask::from_bits`] is the inverse).
    pub fn bits(&self) -> &[bool] {
        &self.present
    }

    /// Rebuilds a mask from its anchor and raw presence bits — the inverse
    /// of [`CoverageMask::bits`], used by checkpoint restore. The bits are
    /// taken verbatim; a round trip through `bits`/`from_bits` is exact.
    pub fn from_bits(start: MinuteBin, present: Vec<bool>) -> Self {
        Self { start, present }
    }

    /// Cumulative present counts: entry `i` is the number of measured bins
    /// among the first `i` bins. Lets callers score many overlapping windows
    /// in O(1) each (used by the masked detector runner).
    pub fn prefix_counts(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.present.len() + 1);
        let mut acc = 0u32;
        out.push(0);
        for &p in &self.present {
            acc += u32::from(p);
            out.push(acc);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let mut m = CoverageMask::new(10);
        m.mark(10);
        m.mark(12);
        m.mark(9); // before start: ignored
        assert!(m.is_present(10));
        assert!(!m.is_present(11));
        assert!(m.is_present(12));
        assert!(!m.is_present(9));
        assert!(!m.is_present(13));
        assert_eq!(m.len(), 3);
        assert_eq!(m.end(), 13);
    }

    #[test]
    fn coverage_counts_outside_as_missing() {
        let mut m = CoverageMask::new(0);
        for minute in 0..8 {
            m.mark(minute);
        }
        assert_eq!(m.coverage(0, 8), 1.0);
        assert_eq!(m.coverage(0, 16), 0.5);
        assert_eq!(m.coverage(4, 12), 0.5);
        assert_eq!(m.coverage(100, 110), 0.0);
        assert_eq!(m.coverage(5, 5), 0.0);
    }

    #[test]
    fn all_present_is_full() {
        let m = CoverageMask::all_present(5, 10);
        assert_eq!(m.coverage(5, 15), 1.0);
        assert_eq!(m.present_in(5, 15), 10);
    }

    #[test]
    fn rebase_only_when_empty() {
        let mut m = CoverageMask::new(0);
        m.rebase(50);
        assert_eq!(m.start(), 50);
        m.mark(50);
        m.rebase(99);
        assert_eq!(m.start(), 50);
    }

    #[test]
    fn gap_queries_find_contiguous_runs() {
        let mut m = CoverageMask::new(10);
        for minute in [10u64, 11, 15, 16, 17, 20] {
            m.mark(minute);
        }
        // Missing inside the mask: 12..15 and 18..20.
        assert_eq!(m.gaps_in(10, 21), vec![(12, 15), (18, 20)]);
        assert_eq!(m.longest_gap(10, 21), 3);
        // Bins outside the mask count as missing (trailing gap).
        assert_eq!(m.gaps_in(10, 25), vec![(12, 15), (18, 20), (21, 25)]);
        assert_eq!(m.longest_gap(10, 25), 4);
        // Range before the mask is all gap.
        assert_eq!(m.gaps_in(0, 10), vec![(0, 10)]);
        // Full coverage inside a measured run.
        assert_eq!(m.gaps_in(15, 18), Vec::<(u64, u64)>::new());
        assert_eq!(m.longest_gap(15, 18), 0);
        // Degenerate range.
        assert_eq!(m.gaps_in(5, 5), Vec::<(u64, u64)>::new());
    }

    #[test]
    fn gaps_partition_the_missing_minutes() {
        let mut m = CoverageMask::new(0);
        for minute in [0u64, 3, 4, 9] {
            m.mark(minute);
        }
        let gaps = m.gaps_in(0, 12);
        let gap_minutes: usize = gaps.iter().map(|(s, e)| (e - s) as usize).sum();
        assert_eq!(gap_minutes, 12 - m.present_in(0, 12));
        for (s, e) in gaps {
            assert!(s < e);
            for minute in s..e {
                assert!(!m.is_present(minute));
            }
        }
    }

    #[test]
    fn prefix_counts_match_present_in() {
        let mut m = CoverageMask::new(0);
        for minute in [0u64, 2, 3, 7] {
            m.mark(minute);
        }
        let pfx = m.prefix_counts();
        assert_eq!(pfx.len(), m.len() + 1);
        for from in 0..m.len() {
            for to in from..=m.len() {
                let direct = m.present_in(from as u64, to as u64);
                let via = (pfx[to] - pfx[from]) as usize;
                assert_eq!(direct, via, "[{from}, {to})");
            }
        }
    }
}
