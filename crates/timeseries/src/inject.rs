//! Change injection: level shifts and ramps (paper Fig. 2).
//!
//! A KPI change in the paper is "a non-transient change (e.g., lasting more
//! than 7 minutes) in a KPI that is introduced by a software change" — either
//! a level shift immediately after the change, or a ramp up/down that ensues
//! gradually. [`InjectedChange`] applies such a perturbation to a series and
//! remembers the onset minute, which the evaluation harness uses as the
//! ground-truth change start for detection-delay measurement (§4.4).

use crate::series::{MinuteBin, TimeSeries};
use serde::{Deserialize, Serialize};

/// The shape of an injected behaviour change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChangeShape {
    /// Instantaneous shift by `delta` (absolute units), persisting to the end
    /// of the series.
    LevelShift {
        /// Signed magnitude of the shift.
        delta: f64,
    },
    /// Linear ramp from 0 to `delta` over `duration_minutes`, then holding at
    /// `delta`.
    Ramp {
        /// Signed magnitude reached at the end of the ramp.
        delta: f64,
        /// Minutes over which the ramp builds.
        duration_minutes: u32,
    },
    /// Transient spike lasting `duration_minutes`, then returning to normal.
    /// Not a KPI change under the paper's definition (< 7 min of persistence
    /// should be ignored); used to test the persistence rule and MRLS's
    /// spike-sensitivity.
    Spike {
        /// Signed magnitude of the spike.
        delta: f64,
        /// Minutes the spike lasts.
        duration_minutes: u32,
    },
}

impl ChangeShape {
    /// The additive perturbation `offset` minutes after onset.
    pub fn offset_at(&self, minutes_after_onset: u64) -> f64 {
        match *self {
            ChangeShape::LevelShift { delta } => delta,
            ChangeShape::Ramp {
                delta,
                duration_minutes,
            } => {
                if duration_minutes == 0 {
                    return delta;
                }
                let t = minutes_after_onset as f64 / duration_minutes as f64;
                delta * t.min(1.0)
            }
            ChangeShape::Spike {
                delta,
                duration_minutes,
            } => {
                if minutes_after_onset < duration_minutes as u64 {
                    delta
                } else {
                    0.0
                }
            }
        }
    }

    /// Whether this shape is a persistent KPI change under the paper's
    /// definition (level shifts and ramps are; spikes are not).
    pub fn is_persistent(&self) -> bool {
        !matches!(self, ChangeShape::Spike { .. })
    }
}

/// A change applied to a series at a specific onset minute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectedChange {
    /// Absolute minute at which the change starts (the ground-truth change
    /// start `c` of §4.4).
    pub onset: MinuteBin,
    /// Shape of the perturbation.
    pub shape: ChangeShape,
}

impl InjectedChange {
    /// A level shift of `delta` starting at `onset`.
    pub fn level_shift(onset: MinuteBin, delta: f64) -> Self {
        Self {
            onset,
            shape: ChangeShape::LevelShift { delta },
        }
    }

    /// A ramp to `delta` over `duration_minutes` starting at `onset`.
    pub fn ramp(onset: MinuteBin, delta: f64, duration_minutes: u32) -> Self {
        Self {
            onset,
            shape: ChangeShape::Ramp {
                delta,
                duration_minutes,
            },
        }
    }

    /// A transient spike of `delta` for `duration_minutes` starting at
    /// `onset`.
    pub fn spike(onset: MinuteBin, delta: f64, duration_minutes: u32) -> Self {
        Self {
            onset,
            shape: ChangeShape::Spike {
                delta,
                duration_minutes,
            },
        }
    }

    /// Applies the change in place. Values are clamped at zero when
    /// `non_negative` (utilizations/counters cannot go below zero).
    pub fn apply(&self, series: &mut TimeSeries, non_negative: bool) {
        let start = series.start();
        for (i, v) in series.values_mut().iter_mut().enumerate() {
            let bin = start + i as u64;
            if bin >= self.onset {
                *v += self.shape.offset_at(bin - self.onset);
                if non_negative {
                    *v = v.max(0.0);
                }
            }
        }
    }

    /// The additive perturbation this change contributes at absolute minute
    /// `bin` (zero before onset).
    pub fn offset_at_bin(&self, bin: MinuteBin) -> f64 {
        if bin < self.onset {
            0.0
        } else {
            self.shape.offset_at(bin - self.onset)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(len: usize) -> TimeSeries {
        TimeSeries::new(0, vec![10.0; len])
    }

    #[test]
    fn level_shift_applies_from_onset() {
        let mut s = flat(10);
        InjectedChange::level_shift(4, 5.0).apply(&mut s, true);
        assert_eq!(s.values()[3], 10.0);
        assert_eq!(s.values()[4], 15.0);
        assert_eq!(s.values()[9], 15.0);
    }

    #[test]
    fn ramp_builds_linearly_then_holds() {
        let mut s = flat(12);
        InjectedChange::ramp(2, 8.0, 4).apply(&mut s, true);
        assert_eq!(s.values()[1], 10.0);
        assert_eq!(s.values()[2], 10.0); // t=0 → offset 0
        assert_eq!(s.values()[4], 14.0); // halfway
        assert_eq!(s.values()[6], 18.0); // full
        assert_eq!(s.values()[11], 18.0); // holds
    }

    #[test]
    fn spike_reverts() {
        let mut s = flat(10);
        InjectedChange::spike(3, 4.0, 2).apply(&mut s, true);
        assert_eq!(s.values()[2], 10.0);
        assert_eq!(s.values()[3], 14.0);
        assert_eq!(s.values()[4], 14.0);
        assert_eq!(s.values()[5], 10.0);
    }

    #[test]
    fn negative_shift_clamps_at_zero_when_requested() {
        let mut s = flat(5);
        InjectedChange::level_shift(0, -50.0).apply(&mut s, true);
        assert!(s.values().iter().all(|&v| v == 0.0));
        let mut s2 = flat(5);
        InjectedChange::level_shift(0, -50.0).apply(&mut s2, false);
        assert!(s2.values().iter().all(|&v| v == -40.0));
    }

    #[test]
    fn persistence_classification() {
        assert!(ChangeShape::LevelShift { delta: 1.0 }.is_persistent());
        assert!(ChangeShape::Ramp {
            delta: 1.0,
            duration_minutes: 30
        }
        .is_persistent());
        assert!(!ChangeShape::Spike {
            delta: 1.0,
            duration_minutes: 3
        }
        .is_persistent());
    }

    #[test]
    fn zero_duration_ramp_degenerates_to_level_shift() {
        let shape = ChangeShape::Ramp {
            delta: 3.0,
            duration_minutes: 0,
        };
        assert_eq!(shape.offset_at(0), 3.0);
        assert_eq!(shape.offset_at(100), 3.0);
    }
}
