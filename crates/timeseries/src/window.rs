//! Sliding-window iteration.
//!
//! Every detector in the paper consumes "a time window of x(i), x(i+1), ...,
//! x(i+W)" that "moves forward every minute" (§4.1). [`SlidingWindows`]
//! yields those windows together with the absolute minute of each window's
//! last bin, which is the decision time for the window.

use crate::series::{MinuteBin, TimeSeries};

/// Iterator over fixed-size windows that advance one bin at a time.
#[derive(Debug, Clone)]
pub struct SlidingWindows<'a> {
    series: &'a TimeSeries,
    width: usize,
    next_end: usize,
}

/// One window: the slice of values plus the absolute minute of the decision
/// point (the last bin of the window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window<'a> {
    /// Window values, oldest first; always `width` long.
    pub values: &'a [f64],
    /// Absolute minute of the final (newest) bin.
    pub decision_minute: MinuteBin,
}

impl<'a> SlidingWindows<'a> {
    /// Creates windows of `width` bins over `series`. Yields nothing when
    /// the series is shorter than `width` or `width == 0`.
    pub fn new(series: &'a TimeSeries, width: usize) -> Self {
        Self {
            series,
            width,
            next_end: width,
        }
    }

    /// Number of windows that will be yielded in total.
    pub fn count_total(&self) -> usize {
        if self.width == 0 || self.series.len() < self.width {
            0
        } else {
            self.series.len() - self.width + 1
        }
    }
}

impl<'a> Iterator for SlidingWindows<'a> {
    type Item = Window<'a>;

    fn next(&mut self) -> Option<Window<'a>> {
        if self.width == 0 || self.next_end > self.series.len() {
            return None;
        }
        let lo = self.next_end - self.width;
        let w = Window {
            values: &self.series.values()[lo..self.next_end],
            decision_minute: self.series.start() + (self.next_end - 1) as u64,
        };
        self.next_end += 1;
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_cover_series_in_order() {
        let s = TimeSeries::new(100, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let ws: Vec<_> = SlidingWindows::new(&s, 3).collect();
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].values, &[0.0, 1.0, 2.0]);
        assert_eq!(ws[0].decision_minute, 102);
        assert_eq!(ws[2].values, &[2.0, 3.0, 4.0]);
        assert_eq!(ws[2].decision_minute, 104);
    }

    #[test]
    fn short_series_yields_nothing() {
        let s = TimeSeries::new(0, vec![1.0, 2.0]);
        assert_eq!(SlidingWindows::new(&s, 3).count(), 0);
        assert_eq!(SlidingWindows::new(&s, 3).count_total(), 0);
    }

    #[test]
    fn zero_width_yields_nothing() {
        let s = TimeSeries::new(0, vec![1.0, 2.0]);
        assert_eq!(SlidingWindows::new(&s, 0).count(), 0);
    }

    #[test]
    fn count_total_matches_iteration() {
        let s = TimeSeries::new(0, (0..50).map(|i| i as f64).collect());
        let w = SlidingWindows::new(&s, 34);
        assert_eq!(w.count_total(), 17);
        assert_eq!(w.count(), 17);
    }
}
