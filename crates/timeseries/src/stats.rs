//! Plain and robust summary statistics.
//!
//! The improved SST (paper §3.2.2) filters its change score with the median
//! and the median absolute deviation (MAD) because "the mean and standard
//! deviation for Gaussian distribution are not very robust in the presence of
//! large changes or outliers". These helpers are shared by the SST filter,
//! MRLS's robust subspace fit, and the evaluation harness.

/// Neumaier-compensated summation: each addition carries a correction term
/// for the low-order bits the naive running sum rounds away, and the
/// compensation is folded in once at the end.
///
/// Two properties matter here. The result is *more accurate* than a naive
/// left-to-right `f64` sum (exact for the classic `[1e100, 1.0, -1e100]`
/// cancellation case), and it is far *less sensitive to input order*: the
/// compensated result differs across permutations only where the naive sum
/// already lost the answer entirely. The DiD estimator and the MRLS mean
/// aggregation sum cells whose order is an artifact of series layout, so
/// they use this instead of bare `.sum()` — which is also what retires
/// their `float-accumulation-order` lint findings.
pub fn stable_sum(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0f64;
    let mut compensation = 0.0f64;
    for x in xs {
        let t = sum + x;
        if sum.abs() >= x.abs() {
            compensation += (sum - t) + x;
        } else {
            compensation += (x - t) + sum;
        }
        sum = t;
    }
    sum + compensation
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    // funnel-lint: allow(float-accumulation-order): slice order is the caller's
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (divides by `n`); `0.0` for fewer than two
/// points.
pub fn population_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    // funnel-lint: allow(float-accumulation-order): slice order is the caller's
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median by partial sort; `0.0` for an empty slice. Even-length slices
/// return the mean of the two central order statistics.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    let n = v.len();
    let mid = n / 2;
    let (_, m, _) = v.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    let hi = *m;
    if n % 2 == 1 {
        hi
    } else {
        // Largest element of the lower half.
        let lo = v[..mid].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (lo + hi) / 2.0
    }
}

/// Median absolute deviation around the median (paper Eq. 12), without the
/// Gaussian consistency constant: `median(|x_i - median(x)|)`.
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = median(xs);
    let devs: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&devs)
}

/// Median and MAD of one window, computed together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustSummary {
    /// Window median.
    pub median: f64,
    /// Window median absolute deviation.
    pub mad: f64,
}

impl RobustSummary {
    /// Summarizes `xs`. Empty input yields zeros.
    pub fn of(xs: &[f64]) -> Self {
        Self {
            median: median(xs),
            mad: mad(xs),
        }
    }
}

/// Robust z-score of `x` against a window summary: `(x - median) / MAD`,
/// with a MAD floor of `1e-9` to keep constant windows finite.
pub fn robust_zscore(x: f64, summary: RobustSummary) -> f64 {
    (x - summary.median) / summary.mad.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_sum_exact_on_catastrophic_cancellation() {
        // Naive left-to-right summation returns 0.0 here; Neumaier keeps
        // the 1.0 that 1e100 absorbs.
        assert_eq!(stable_sum([1e100, 1.0, -1e100]), 1.0);
        assert_eq!(stable_sum([1.0, 1e100, 1.0, -1e100]), 2.0);
    }

    #[test]
    fn stable_sum_matches_naive_on_benign_input() {
        let xs = [0.5, 1.25, -3.0, 2.75, 10.0];
        assert_eq!(stable_sum(xs), xs.iter().copied().fold(0.0, |a, b| a + b));
        assert_eq!(stable_sum([]), 0.0);
        assert_eq!(stable_sum([42.0]), 42.0);
    }

    #[test]
    fn mean_and_std_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(population_std(&[5.0]), 0.0);
        let s = population_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn median_resists_outlier() {
        let clean = median(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let dirty = median(&[1.0, 2.0, 3.0, 4.0, 1e9]);
        assert_eq!(clean, 3.0);
        assert_eq!(dirty, 3.0);
    }

    #[test]
    fn mad_of_symmetric_window() {
        // median = 3, deviations = [2,1,0,1,2], MAD = 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]), 1.0);
        assert_eq!(mad(&[5.0; 6]), 0.0);
    }

    #[test]
    fn robust_zscore_floors_mad() {
        let s = RobustSummary::of(&[1.0, 1.0, 1.0]);
        assert_eq!(s.mad, 0.0);
        assert!(robust_zscore(2.0, s).is_finite());
        assert!(robust_zscore(2.0, s) > 1e6);
    }

    #[test]
    fn summary_matches_parts() {
        let xs = [9.0, 1.0, 4.0, 4.0, 2.0];
        let s = RobustSummary::of(&xs);
        assert_eq!(s.median, median(&xs));
        assert_eq!(s.mad, mad(&xs));
    }
}
