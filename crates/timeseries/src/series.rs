//! One-minute-binned KPI time series.
//!
//! FUNNEL's data-collection substrate delivers KPI measurements once per
//! minute per (entity, KPI) pair (§2.2 of the paper). [`TimeSeries`] stores
//! such a series as a dense `Vec<f64>` anchored at an absolute minute index,
//! so series from different entities can be aligned by wall-clock minute.

use serde::{Deserialize, Serialize};

/// Absolute minute index since the simulation epoch.
///
/// The paper bins KPIs into one-minute intervals; a `MinuteBin` identifies
/// one such interval. Bin `0` starts at the epoch.
pub type MinuteBin = u64;

/// A dense, one-minute-binned time series anchored at an absolute minute.
///
/// Invariant: `values[i]` is the measurement for minute `start + i`.
/// Gaps are not represented; the collection substrate fills every minute
/// (missing agent reports are interpolated upstream in `funnel-sim`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    start: MinuteBin,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series whose first value is the measurement for `start`.
    pub fn new(start: MinuteBin, values: Vec<f64>) -> Self {
        Self { start, values }
    }

    /// Creates an empty series that will begin at `start`.
    pub fn empty(start: MinuteBin) -> Self {
        Self {
            start,
            values: Vec::new(),
        }
    }

    /// Creates a series of `len` zeros starting at `start`.
    pub fn zeros(start: MinuteBin, len: usize) -> Self {
        Self {
            start,
            values: vec![0.0; len],
        }
    }

    /// The absolute minute of the first bin.
    pub fn start(&self) -> MinuteBin {
        self.start
    }

    /// The absolute minute one past the last bin.
    pub fn end(&self) -> MinuteBin {
        self.start + self.values.len() as u64
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no bins.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values, oldest first.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the raw values (used by change injection).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The value at absolute minute `bin`, if it falls inside the series.
    pub fn at(&self, bin: MinuteBin) -> Option<f64> {
        if bin < self.start {
            return None;
        }
        self.values.get((bin - self.start) as usize).copied()
    }

    /// Appends the measurement for the next minute.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Overwrites the value at absolute minute `bin` (backfill of a healed
    /// telemetry gap). Returns `false` when `bin` lies outside the series —
    /// the caller must extend via [`TimeSeries::push`] instead.
    pub fn set(&mut self, bin: MinuteBin, value: f64) -> bool {
        if bin < self.start {
            return false;
        }
        match self.values.get_mut((bin - self.start) as usize) {
            Some(v) => {
                *v = value;
                true
            }
            None => false,
        }
    }

    /// The sub-slice covering absolute minutes `[from, to)`, clamped to the
    /// series bounds. Returns an empty slice when the range misses entirely.
    pub fn slice(&self, from: MinuteBin, to: MinuteBin) -> &[f64] {
        let lo = from.max(self.start);
        let hi = to.min(self.end());
        if lo >= hi {
            return &[];
        }
        &self.values[(lo - self.start) as usize..(hi - self.start) as usize]
    }

    /// Returns a new series normalized to `[0, 1]` by min–max scaling, as the
    /// paper does for its plots (Fig. 2, 6, 7). A constant series maps to
    /// all zeros.
    pub fn normalized(&self) -> TimeSeries {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &self.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let span = hi - lo;
        let values = if span > 0.0 {
            self.values.iter().map(|v| (v - lo) / span).collect()
        } else {
            vec![0.0; self.values.len()]
        };
        TimeSeries {
            start: self.start,
            values,
        }
    }

    /// Element-wise average of several aligned series.
    ///
    /// The paper averages control-group KPIs ("We use the average of all of
    /// the KPIs in the control group", §3.2.4) and aggregates instance KPIs
    /// into service KPIs (§2.2). All inputs must share `start` and length.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::Misaligned`] when the inputs disagree on start
    /// or length, and [`SeriesError::EmptyInput`] for an empty slice.
    pub fn average(series: &[&TimeSeries]) -> Result<TimeSeries, SeriesError> {
        let first = series.first().ok_or(SeriesError::EmptyInput)?;
        for s in series {
            if s.start != first.start || s.len() != first.len() {
                return Err(SeriesError::Misaligned {
                    expected_start: first.start,
                    expected_len: first.len(),
                    got_start: s.start,
                    got_len: s.len(),
                });
            }
        }
        let mut values = vec![0.0; first.len()];
        for s in series {
            for (acc, v) in values.iter_mut().zip(s.values.iter()) {
                *acc += v;
            }
        }
        let n = series.len() as f64;
        for v in &mut values {
            *v /= n;
        }
        Ok(TimeSeries {
            start: first.start,
            values,
        })
    }

    /// Element-wise sum of several aligned series (service = Σ instances).
    ///
    /// # Errors
    ///
    /// Same alignment requirements as [`TimeSeries::average`].
    pub fn sum(series: &[&TimeSeries]) -> Result<TimeSeries, SeriesError> {
        let mut avg = Self::average(series)?;
        let n = series.len() as f64;
        for v in avg.values.iter_mut() {
            *v *= n;
        }
        Ok(avg)
    }
}

/// Errors from series combinators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeriesError {
    /// No series were supplied.
    EmptyInput,
    /// Input series do not share the same start and length.
    Misaligned {
        /// Start bin of the first series.
        expected_start: MinuteBin,
        /// Length of the first series.
        expected_len: usize,
        /// Start bin of the offending series.
        got_start: MinuteBin,
        /// Length of the offending series.
        got_len: usize,
    },
}

impl std::fmt::Display for SeriesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeriesError::EmptyInput => write!(f, "no series supplied"),
            SeriesError::Misaligned {
                expected_start,
                expected_len,
                got_start,
                got_len,
            } => {
                write!(
                    f,
                    "misaligned series: expected start={expected_start} len={expected_len}, \
                     got start={got_start} len={got_len}"
                )
            }
        }
    }
}

impl std::error::Error for SeriesError {}

/// Aggregates raw timestamped events into one-minute bins.
///
/// The per-server agent of §2.2 increments counters (page view count) and
/// records samples (response delay) as requests are served, then emits one
/// bin per minute. `EventBinner` reproduces that: feed it `(minute, value)`
/// events in any order within the open bin, and collect the binned series.
#[derive(Debug, Clone)]
pub struct EventBinner {
    start: MinuteBin,
    mode: BinMode,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

/// How events within one minute combine into the bin value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinMode {
    /// Bin value is the number of events (e.g. page view count).
    Count,
    /// Bin value is the sum of event values (e.g. bytes transferred).
    Sum,
    /// Bin value is the mean of event values (e.g. response delay).
    Mean,
}

impl EventBinner {
    /// Creates a binner whose first bin covers absolute minute `start`.
    pub fn new(start: MinuteBin, mode: BinMode) -> Self {
        Self {
            start,
            mode,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Records one event at absolute minute `minute` with value `value`
    /// (ignored for [`BinMode::Count`]). Events before `start` are dropped.
    pub fn record(&mut self, minute: MinuteBin, value: f64) {
        if minute < self.start {
            return;
        }
        let idx = (minute - self.start) as usize;
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
    }

    /// Finalizes into a [`TimeSeries`]. Minutes with no events produce `0.0`
    /// for `Count`/`Sum` and `0.0` for `Mean` (no traffic ⇒ no delay sample).
    pub fn finish(self) -> TimeSeries {
        let values = self
            .sums
            .iter()
            .zip(self.counts.iter())
            .map(|(&s, &c)| match self.mode {
                BinMode::Count => c as f64,
                BinMode::Sum => s,
                BinMode::Mean => {
                    if c == 0 {
                        0.0
                    } else {
                        s / c as f64
                    }
                }
            })
            .collect();
        TimeSeries::new(self.start, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_respects_bounds() {
        let s = TimeSeries::new(10, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.at(9), None);
        assert_eq!(s.at(10), Some(1.0));
        assert_eq!(s.at(12), Some(3.0));
        assert_eq!(s.at(13), None);
    }

    #[test]
    fn set_overwrites_in_bounds_only() {
        let mut s = TimeSeries::new(10, vec![1.0, 2.0, 3.0]);
        assert!(s.set(11, 9.0));
        assert_eq!(s.values(), &[1.0, 9.0, 3.0]);
        assert!(!s.set(9, 0.0));
        assert!(!s.set(13, 0.0));
        assert_eq!(s.values(), &[1.0, 9.0, 3.0]);
    }

    #[test]
    fn slice_clamps_to_bounds() {
        let s = TimeSeries::new(5, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.slice(0, 100), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.slice(6, 8), &[2.0, 3.0]);
        assert_eq!(s.slice(9, 20), &[] as &[f64]);
        assert_eq!(s.slice(0, 5), &[] as &[f64]);
        assert_eq!(s.slice(8, 6), &[] as &[f64]);
    }

    #[test]
    fn normalized_maps_to_unit_interval() {
        let s = TimeSeries::new(0, vec![2.0, 4.0, 6.0]);
        let n = s.normalized();
        assert_eq!(n.values(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn normalized_constant_series_is_zero() {
        let s = TimeSeries::new(0, vec![5.0; 4]);
        assert_eq!(s.normalized().values(), &[0.0; 4]);
    }

    #[test]
    fn average_requires_alignment() {
        let a = TimeSeries::new(0, vec![1.0, 3.0]);
        let b = TimeSeries::new(0, vec![3.0, 5.0]);
        let avg = TimeSeries::average(&[&a, &b]).unwrap();
        assert_eq!(avg.values(), &[2.0, 4.0]);

        let c = TimeSeries::new(1, vec![3.0, 5.0]);
        assert!(matches!(
            TimeSeries::average(&[&a, &c]),
            Err(SeriesError::Misaligned { .. })
        ));
        assert_eq!(TimeSeries::average(&[]), Err(SeriesError::EmptyInput));
    }

    #[test]
    fn sum_is_n_times_average() {
        let a = TimeSeries::new(0, vec![1.0, 2.0]);
        let b = TimeSeries::new(0, vec![3.0, 4.0]);
        let sum = TimeSeries::sum(&[&a, &b]).unwrap();
        assert_eq!(sum.values(), &[4.0, 6.0]);
    }

    #[test]
    fn binner_count_mode() {
        let mut b = EventBinner::new(0, BinMode::Count);
        b.record(0, 1.0);
        b.record(0, 99.0);
        b.record(2, 1.0);
        let s = b.finish();
        assert_eq!(s.values(), &[2.0, 0.0, 1.0]);
    }

    #[test]
    fn binner_mean_mode_handles_empty_minutes() {
        let mut b = EventBinner::new(0, BinMode::Mean);
        b.record(0, 10.0);
        b.record(0, 20.0);
        b.record(2, 6.0);
        let s = b.finish();
        assert_eq!(s.values(), &[15.0, 0.0, 6.0]);
    }

    #[test]
    fn binner_drops_events_before_start() {
        let mut b = EventBinner::new(5, BinMode::Sum);
        b.record(4, 100.0);
        b.record(5, 1.0);
        let s = b.finish();
        assert_eq!(s.values(), &[1.0]);
        assert_eq!(s.start(), 5);
    }
}
