//! Time-series substrate for the FUNNEL reproduction.
//!
//! FUNNEL (CoNEXT 2015) assesses the impact of software changes by watching
//! Key Performance Indicators (KPIs) as one-minute-binned time series. This
//! crate provides everything the rest of the workspace needs to represent,
//! summarize, generate, and perturb such series:
//!
//! * [`series`] — the [`TimeSeries`] container (fixed one-minute bins with an
//!   absolute start minute) and event-to-bin aggregation,
//! * [`stats`] — plain and robust summary statistics (median, MAD) used by
//!   the improved SST's noise filter (paper Eq. 11–12),
//! * [`generate`] — synthetic KPI generators for the paper's three KPI
//!   character classes (seasonal, stationary, variable),
//! * [`inject`] — level-shift and ramp change injection (paper Fig. 2),
//! * [`mask`] — per-minute coverage masks distinguishing real measurements
//!   from substrate gap-fills in degraded-telemetry runs,
//! * [`ring`] — fixed-capacity sliding windows ([`RingSeries`]) for the
//!   streaming engine: bounded resident memory per KPI regardless of uptime,
//! * [`window`] — sliding-window iteration used by every detector.
//!
//! All randomness flows through explicitly seeded [`rand::rngs::StdRng`]
//! instances, so every experiment in the workspace is reproducible.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod generate;
pub mod inject;
pub mod mask;
pub mod ring;
pub mod series;
pub mod stats;
pub mod window;

pub use generate::{KpiClass, KpiGenerator, SeasonalProfile};
pub use inject::{ChangeShape, InjectedChange};
pub use mask::CoverageMask;
pub use ring::{RingSeries, RingWrite};
pub use series::{MinuteBin, TimeSeries};
pub use stats::{mad, mean, median, population_std, RobustSummary};
pub use window::SlidingWindows;

/// Number of minutes in a day; seasonal profiles repeat with this period.
pub const MINUTES_PER_DAY: usize = 24 * 60;

/// Number of minutes in a week; day-of-week effects repeat with this period.
pub const MINUTES_PER_WEEK: usize = 7 * MINUTES_PER_DAY;
