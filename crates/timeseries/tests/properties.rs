//! Property-based tests for the time-series substrate.

use funnel_timeseries::generate::{KpiClass, KpiGenerator, SeasonalProfile};
use funnel_timeseries::inject::{ChangeShape, InjectedChange};
use funnel_timeseries::series::{BinMode, EventBinner, TimeSeries};
use funnel_timeseries::stats::{mad, mean, median, population_std};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn median_is_order_statistic(mut xs in prop::collection::vec(-1e6..1e6f64, 1..40)) {
        let m = median(&xs);
        xs.sort_by(|a, b| a.total_cmp(b));
        // At least half the points are ≤ m and at least half are ≥ m.
        let le = xs.iter().filter(|&&x| x <= m + 1e-9).count();
        let ge = xs.iter().filter(|&&x| x >= m - 1e-9).count();
        prop_assert!(le * 2 >= xs.len());
        prop_assert!(ge * 2 >= xs.len());
    }

    #[test]
    fn median_bounded_by_extremes(xs in prop::collection::vec(-1e6..1e6f64, 1..40)) {
        let m = median(&xs);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn mad_translation_invariant(
        xs in prop::collection::vec(-1e3..1e3f64, 2..30),
        shift in -1e3..1e3f64,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((mad(&xs) - mad(&shifted)).abs() < 1e-6);
    }

    #[test]
    fn mad_never_exceeds_range(xs in prop::collection::vec(-1e3..1e3f64, 1..30)) {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mad(&xs) <= (hi - lo) + 1e-12);
    }

    #[test]
    fn mean_std_translation(xs in prop::collection::vec(-1e3..1e3f64, 2..30), c in -10.0..10.0f64) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        prop_assert!((mean(&shifted) - mean(&xs) - c).abs() < 1e-6);
        prop_assert!((population_std(&shifted) - population_std(&xs)).abs() < 1e-6);
    }

    #[test]
    fn normalized_series_in_unit_interval(vals in prop::collection::vec(-1e6..1e6f64, 1..100)) {
        let s = TimeSeries::new(0, vals).normalized();
        prop_assert!(s.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn level_shift_injection_changes_only_after_onset(
        base in prop::collection::vec(0.0..100.0f64, 10..60),
        onset_frac in 0.0..1.0f64,
        delta in -50.0..50.0f64,
    ) {
        let onset = (base.len() as f64 * onset_frac) as u64;
        let mut s = TimeSeries::new(0, base.clone());
        InjectedChange::level_shift(onset, delta).apply(&mut s, false);
        for (i, (&got, &want)) in s.values().iter().zip(base.iter()).enumerate() {
            if (i as u64) < onset {
                prop_assert_eq!(got, want);
            } else {
                prop_assert!((got - want - delta).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ramp_is_monotone_toward_delta(
        onset in 0u64..50,
        delta in 1.0..100.0f64,
        duration in 1u32..60,
    ) {
        let shape = ChangeShape::Ramp { delta, duration_minutes: duration };
        let mut prev = 0.0;
        for t in 0..(duration as u64 + 10) {
            let o = shape.offset_at(t);
            prop_assert!(o >= prev - 1e-12, "ramp decreased");
            prop_assert!(o <= delta + 1e-12);
            prev = o;
        }
        prop_assert!((shape.offset_at(duration as u64 + 100) - delta).abs() < 1e-12);
        let _ = onset;
    }

    #[test]
    fn generator_deterministic_any_seed(seed in any::<u64>()) {
        let g = KpiGenerator::for_class(KpiClass::Seasonal, 500.0);
        prop_assert_eq!(g.generate(0, 64, seed), g.generate(0, 64, seed));
    }

    #[test]
    fn seasonal_profile_factor_positive(
        peak in 0u32..1440,
        amp in 0.0..0.95f64,
        weekend in 0.1..1.0f64,
        minute in 0u64..100_000,
    ) {
        let p = SeasonalProfile {
            peak_minute_of_day: peak,
            daily_amplitude: amp,
            weekend_factor: weekend,
        };
        prop_assert!(p.factor_at(minute) > 0.0);
    }

    #[test]
    fn binner_count_equals_events(
        events in prop::collection::vec(0u64..50, 0..200),
    ) {
        let mut b = EventBinner::new(0, BinMode::Count);
        for &m in &events {
            b.record(m, 1.0);
        }
        let s = b.finish();
        let total: f64 = s.values().iter().sum();
        prop_assert_eq!(total as usize, events.len());
    }
}
