//! Model-based property tests: [`RingSeries`] against a naive unbounded
//! model.
//!
//! The ring feeds the streaming assessment engine, whose headline guarantee
//! is that streaming verdicts are byte-identical to batch verdicts — which
//! reduces to the ring's retained window being byte-identical to what the
//! store's unbounded series + mask would hold. The model here is exactly
//! that: an unbounded `Vec<f64>` + `Vec<bool>` applying the store's
//! append/forward-fill/backfill rules, truncated to the last `capacity`
//! bins for comparison. Writes into the truncated (evicted) region are
//! refused by both sides.

use funnel_timeseries::ring::{RingSeries, RingWrite};
use proptest::prelude::*;

/// One generated operation against both the ring and the model.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u64, f64),
    Backfill(u64, f64),
}

/// The obviously-correct reference: unbounded store semantics plus an
/// eviction boundary at `len - capacity`.
struct Model {
    anchored: bool,
    start: u64,
    values: Vec<f64>,
    present: Vec<bool>,
    capacity: usize,
}

impl Model {
    fn new(capacity: usize) -> Self {
        Self {
            anchored: false,
            start: 0,
            values: Vec::new(),
            present: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    fn end(&self) -> u64 {
        self.start + self.values.len() as u64
    }

    /// Index of the first bin the ring still retains.
    fn retained_lo(&self) -> usize {
        self.values.len().saturating_sub(self.capacity)
    }

    fn push(&mut self, minute: u64, value: f64) -> RingWrite {
        if !self.anchored {
            self.anchored = true;
            self.start = minute;
            self.values.push(value);
            self.present.push(true);
            return RingWrite::Accepted;
        }
        if minute < self.end() {
            return RingWrite::Duplicate;
        }
        let fill = *self.values.last().unwrap();
        while self.end() < minute {
            self.values.push(fill);
            self.present.push(false);
        }
        self.values.push(value);
        self.present.push(true);
        RingWrite::Accepted
    }

    fn backfill(&mut self, minute: u64, value: f64) -> RingWrite {
        if !self.anchored || minute >= self.end() {
            return self.push(minute, value);
        }
        if minute < self.start {
            return RingWrite::Evicted;
        }
        let idx = (minute - self.start) as usize;
        if idx < self.retained_lo() {
            return RingWrite::Evicted;
        }
        if self.present[idx] {
            return RingWrite::Duplicate;
        }
        self.values[idx] = value;
        let mut i = idx + 1;
        while i < self.values.len() && !self.present[i] {
            self.values[i] = value;
            i += 1;
        }
        self.present[idx] = true;
        RingWrite::Accepted
    }

    /// The retained window: start minute, values, presence bits.
    fn retained(&self) -> (u64, &[f64], &[bool]) {
        let lo = self.retained_lo();
        (
            self.start + lo as u64,
            &self.values[lo..],
            &self.present[lo..],
        )
    }
}

/// Generates [`Op`]s with minutes clustered in a small universe so
/// duplicates, gaps, backfills into fills, and backfills into evicted
/// history all actually occur.
#[derive(Debug, Clone, Copy)]
struct OpStrategy;

impl Strategy for OpStrategy {
    type Value = Op;
    fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> Op {
        let minute = rng.below(200);
        let value = rng.unit_f64() * 100.0 - 50.0;
        if rng.below(2) == 0 {
            Op::Push(minute, value)
        } else {
            Op::Backfill(minute, value)
        }
    }
}

fn op_strategy() -> OpStrategy {
    OpStrategy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ring_agrees_with_unbounded_model(
        capacity in 1usize..50,
        ops in prop::collection::vec(op_strategy(), 0..120),
    ) {
        let mut ring = RingSeries::new(capacity);
        let mut model = Model::new(capacity);

        for (i, op) in ops.iter().enumerate() {
            let (got, want) = match *op {
                Op::Push(m, v) => (ring.push(m, v), model.push(m, v)),
                Op::Backfill(m, v) => (ring.backfill(m, v), model.backfill(m, v)),
            };
            prop_assert_eq!(got, want, "op {} ({:?}) outcome diverged", i, op);
        }

        let (start, values, present) = model.retained();
        if model.anchored {
            prop_assert_eq!(ring.start(), start);
            prop_assert_eq!(ring.len(), values.len());
            prop_assert_eq!(ring.to_series().values(), values);
            prop_assert_eq!(ring.to_mask().bits(), present);
            prop_assert_eq!(
                ring.evicted() as usize,
                model.values.len() - values.len()
            );
        } else {
            prop_assert!(ring.is_empty());
        }
    }

    #[test]
    fn point_queries_agree_with_the_model(
        capacity in 1usize..50,
        ops in prop::collection::vec(op_strategy(), 1..120),
        from in 0u64..220,
        span in 0u64..120,
    ) {
        let mut ring = RingSeries::new(capacity);
        let mut model = Model::new(capacity);
        for op in &ops {
            match *op {
                Op::Push(m, v) => {
                    ring.push(m, v);
                    model.push(m, v);
                }
                Op::Backfill(m, v) => {
                    ring.backfill(m, v);
                    model.backfill(m, v);
                }
            }
        }
        let (start, values, present) = model.retained();
        for minute in 0u64..260 {
            let idx = minute.checked_sub(start).map(|d| d as usize);
            let want_val = idx.and_then(|i| values.get(i).copied());
            let want_pres = idx
                .and_then(|i| present.get(i).copied())
                .unwrap_or(false);
            prop_assert_eq!(ring.at(minute), want_val, "at({})", minute);
            prop_assert_eq!(ring.is_present(minute), want_pres, "is_present({})", minute);
        }

        let to = from + span;
        let measured = (from..to)
            .filter(|&m| {
                m >= start
                    && ((m - start) as usize) < present.len()
                    && present[(m - start) as usize]
            })
            .count();
        let want_cov = if span == 0 { 0.0 } else { measured as f64 / span as f64 };
        prop_assert_eq!(ring.coverage(from, to), want_cov);
    }

    #[test]
    fn series_and_mask_views_stay_aligned(
        capacity in 1usize..50,
        ops in prop::collection::vec(op_strategy(), 0..120),
    ) {
        let mut ring = RingSeries::new(capacity);
        for op in &ops {
            match *op {
                Op::Push(m, v) => {
                    ring.push(m, v);
                }
                Op::Backfill(m, v) => {
                    ring.backfill(m, v);
                }
            }
        }
        let s = ring.to_series();
        let m = ring.to_mask();
        prop_assert_eq!(s.start(), m.start());
        prop_assert_eq!(s.len(), m.len());
        prop_assert!(ring.len() <= capacity);
        prop_assert_eq!(s.end(), ring.end());
        // A marked bin always holds the exact value of the write that
        // marked it (spot-checkable only via alignment here; the full
        // byte-agreement lives in ring_agrees_with_unbounded_model).
        for minute in s.start()..s.end() {
            prop_assert_eq!(s.at(minute), ring.at(minute));
        }
    }
}
