//! Model-based property tests: [`CoverageMask`] against a naive bit array.
//!
//! The mask sits under every coverage decision the pipeline makes — window
//! skipping, partition-gap detection, re-assessment triggers — so its query
//! surface is checked wholesale against the obviously-correct model: a plain
//! `Vec<bool>` indexed by absolute minute, where `mark` ignores minutes
//! before the anchor and every derived query is a direct scan.

use funnel_timeseries::mask::CoverageMask;
use proptest::prelude::*;

/// Upper bound on any minute a test generates (marks and query ranges).
const UNIVERSE: usize = 400;

fn build(start: u64, marks: &[u64]) -> (CoverageMask, Vec<bool>) {
    let mut mask = CoverageMask::new(start);
    let mut model = vec![false; UNIVERSE];
    for &m in marks {
        mask.mark(m);
        if m >= start {
            model[m as usize] = true;
        }
    }
    (mask, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn presence_and_counts_match_the_model(
        start in 0u64..40,
        marks in prop::collection::vec(0u64..160, 0..80),
        from in 0u64..200,
        span in 0u64..200,
    ) {
        let (mask, model) = build(start, &marks);
        let to = from + span;

        for minute in 0..UNIVERSE as u64 {
            prop_assert_eq!(mask.is_present(minute), model[minute as usize], "minute {}", minute);
        }

        let present = (from..to).filter(|&m| model[m as usize]).count();
        prop_assert_eq!(mask.present_in(from, to), present);
        let coverage = if span == 0 { 0.0 } else { present as f64 / span as f64 };
        prop_assert_eq!(mask.coverage(from, to), coverage);
    }

    #[test]
    fn gaps_match_the_model(
        start in 0u64..40,
        marks in prop::collection::vec(0u64..160, 0..80),
        from in 0u64..200,
        span in 0u64..200,
    ) {
        let (mask, model) = build(start, &marks);
        let to = from + span;

        // Model gaps: maximal runs of missing minutes, by direct scan.
        let mut expected: Vec<(u64, u64)> = Vec::new();
        let mut open: Option<u64> = None;
        for minute in from..to {
            if model[minute as usize] {
                if let Some(s) = open.take() {
                    expected.push((s, minute));
                }
            } else if open.is_none() {
                open = Some(minute);
            }
        }
        if let Some(s) = open {
            expected.push((s, to));
        }

        let gaps = mask.gaps_in(from, to);
        prop_assert_eq!(&gaps, &expected);
        prop_assert_eq!(
            mask.longest_gap(from, to),
            expected.iter().map(|(s, e)| e - s).max().unwrap_or(0)
        );

        // Structural invariants the downstream layers rely on: gaps are
        // disjoint, in range, ascending, maximal, and together with the
        // present count they partition the query range exactly.
        let gap_total: u64 = gaps.iter().map(|(s, e)| e - s).sum();
        prop_assert_eq!(gap_total + mask.present_in(from, to) as u64, span);
        for w in gaps.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "gaps touch or overlap: {:?}", w);
        }
        for &(s, e) in &gaps {
            prop_assert!(from <= s && s < e && e <= to);
            // Maximality: the minute on each side (when in range) is present.
            if s > from {
                prop_assert!(mask.is_present(s - 1));
            }
            if e < to {
                prop_assert!(mask.is_present(e));
            }
        }
    }

    #[test]
    fn span_and_prefix_counts_are_consistent(
        start in 0u64..40,
        marks in prop::collection::vec(0u64..160, 0..80),
    ) {
        let (mask, model) = build(start, &marks);

        // The span grows to exactly the highest marked minute, never past.
        let highest = marks.iter().copied().filter(|&m| m >= start).max();
        match highest {
            Some(h) => {
                prop_assert_eq!(mask.end(), h + 1);
                prop_assert_eq!(mask.len() as u64, h + 1 - start);
                prop_assert!(!mask.is_empty());
            }
            None => {
                prop_assert!(mask.is_empty());
                prop_assert_eq!(mask.len(), 0);
            }
        }
        prop_assert_eq!(mask.start(), start);
        prop_assert_eq!(mask.end(), start + mask.len() as u64);

        // Prefix counts are the running sum of the model bits.
        let pfx = mask.prefix_counts();
        prop_assert_eq!(pfx.len(), mask.len() + 1);
        let mut acc = 0u32;
        for (i, &p) in pfx.iter().enumerate().skip(1) {
            acc += u32::from(model[start as usize + i - 1]);
            prop_assert_eq!(p, acc, "prefix {}", i);
        }
    }
}
