//! Tests for the §4.2.1 extrapolation mechanics and ROC/confusion
//! interplay.

use funnel_eval::cohort::MethodResult;
use funnel_eval::confusion::ConfusionMatrix;
use funnel_eval::roc::{roc_curve, ScoredItem};
use funnel_timeseries::generate::KpiClass;

#[test]
fn scaled_matrices_compose_linearly() {
    let mut result = MethodResult::default();
    let mut eff = ConfusionMatrix::new();
    eff.record(true, true);
    eff.record(false, true); // 1 FP among effecting changes
    result.effecting.insert(KpiClass::Stationary, eff);
    let mut clean = ConfusionMatrix::new();
    clean.record(false, false);
    clean.record(false, true); // 1 FP among clean changes
    result.clean.insert(KpiClass::Stationary, clean);

    let unscaled = result.scaled(KpiClass::Stationary, 1.0);
    assert_eq!(unscaled.fp, 2.0);
    assert_eq!(unscaled.total(), 4.0);

    let scaled = result.scaled(KpiClass::Stationary, 86.0);
    assert_eq!(scaled.fp, 1.0 + 86.0);
    assert_eq!(scaled.tn, 86.0);
    assert_eq!(scaled.tp, 1.0);

    // Scaling clean counts can only lower precision, never raise it.
    assert!(scaled.rates().precision < unscaled.rates().precision);
    // Overall equals the sum over classes (only one class here).
    let overall = result.scaled_overall(86.0);
    assert_eq!(overall.total(), scaled.total());
}

#[test]
fn empty_class_reads_as_perfect() {
    let result = MethodResult::default();
    let m = result.scaled(KpiClass::Seasonal, 86.0);
    assert_eq!(m.total(), 0.0);
    assert_eq!(m.rates().accuracy, 1.0);
}

#[test]
fn roc_consistent_with_thresholded_confusion() {
    // Every ROC point's (FPR, TPR) must equal the confusion matrix computed
    // at that threshold.
    let items: Vec<ScoredItem> = (0..60)
        .map(|i| ScoredItem {
            score: ((i * 7) % 30) as f64,
            actual: (i * 11) % 4 == 0,
        })
        .collect();
    let roc = roc_curve(&items).expect("mixed items");
    for p in &roc.points {
        if !p.threshold.is_finite() {
            continue;
        }
        let mut m = ConfusionMatrix::new();
        for it in &items {
            m.record(it.actual, it.score >= p.threshold);
        }
        let r = m.rates();
        assert!((r.recall - p.tpr).abs() < 1e-12, "tpr at {}", p.threshold);
        assert!(
            ((1.0 - r.tnr) - p.fpr).abs() < 1e-12,
            "fpr at {}",
            p.threshold
        );
    }
}
