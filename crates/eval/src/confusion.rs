//! Confusion-matrix bookkeeping (paper §4.2).
//!
//! An item is a (software change, entity, KPI) triple. True positives are
//! items with KPI changes caused by software changes that the method also
//! attributed to the change; true negatives are items correctly left alone;
//! a false positive is a claimed impact where there was none (or it was not
//! software-caused); a false negative is a missed real impact.

use serde::{Deserialize, Serialize};

/// Raw outcome counts. Counts are `f64` so the §4.2.1 extrapolation (clean
/// changes scaled by 86 = 6194/72) composes exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: f64,
    /// True negatives.
    pub tn: f64,
    /// False positives.
    pub fp: f64,
    /// False negatives.
    pub fn_: f64,
}

/// Derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rates {
    /// TP / (TP + FP); 1.0 when no positives were claimed.
    pub precision: f64,
    /// TP / (TP + FN); 1.0 when no positives exist.
    pub recall: f64,
    /// TN / (TN + FP); 1.0 when no negatives exist.
    pub tnr: f64,
    /// (TP + TN) / total; 1.0 for an empty matrix.
    pub accuracy: f64,
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one item outcome.
    pub fn record(&mut self, actual_positive: bool, predicted_positive: bool) {
        match (actual_positive, predicted_positive) {
            (true, true) => self.tp += 1.0,
            (true, false) => self.fn_ += 1.0,
            (false, true) => self.fp += 1.0,
            (false, false) => self.tn += 1.0,
        }
    }

    /// Adds `other` scaled by `factor` (the §4.2.1 extrapolation multiplies
    /// the clean-change cohort by 86 before summing).
    pub fn add_scaled(&mut self, other: &ConfusionMatrix, factor: f64) {
        self.tp += other.tp * factor;
        self.tn += other.tn * factor;
        self.fp += other.fp * factor;
        self.fn_ += other.fn_ * factor;
    }

    /// Total items recorded.
    pub fn total(&self) -> f64 {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Derived rates, with empty denominators reading as perfect (matching
    /// the convention that a method claiming nothing on a negatives-only
    /// set has precision 1).
    pub fn rates(&self) -> Rates {
        let div = |num: f64, den: f64| if den > 0.0 { num / den } else { 1.0 };
        Rates {
            precision: div(self.tp, self.tp + self.fp),
            recall: div(self.tp, self.tp + self.fn_),
            tnr: div(self.tn, self.tn + self.fp),
            accuracy: div(self.tp + self.tn, self.total()),
        }
    }
}

impl std::ops::AddAssign for ConfusionMatrix {
    fn add_assign(&mut self, rhs: Self) {
        self.add_scaled(&rhs, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rates() {
        let mut m = ConfusionMatrix::new();
        m.record(true, true); // tp
        m.record(true, true);
        m.record(true, false); // fn
        m.record(false, false); // tn
        m.record(false, true); // fp
        let r = m.rates();
        assert!((r.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.tnr - 0.5).abs() < 1e-12);
        assert!((r.accuracy - 3.0 / 5.0).abs() < 1e-12);
        assert_eq!(m.total(), 5.0);
    }

    #[test]
    fn empty_matrix_is_perfect() {
        let r = ConfusionMatrix::new().rates();
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.tnr, 1.0);
        assert_eq!(r.accuracy, 1.0);
    }

    #[test]
    fn scaling_composes() {
        let mut clean = ConfusionMatrix::new();
        clean.record(false, false);
        clean.record(false, true);
        let mut total = ConfusionMatrix::new();
        total.record(true, true);
        total.add_scaled(&clean, 86.0);
        assert_eq!(total.tn, 86.0);
        assert_eq!(total.fp, 86.0);
        assert_eq!(total.tp, 1.0);
        assert_eq!(total.total(), 173.0);
    }

    #[test]
    fn add_assign_sums() {
        let mut a = ConfusionMatrix::new();
        a.record(true, true);
        let mut b = ConfusionMatrix::new();
        b.record(false, false);
        a += b;
        assert_eq!(a.tp, 1.0);
        assert_eq!(a.tn, 1.0);
    }
}
