//! Evaluation harness for the FUNNEL reproduction (paper §4–§5).
//!
//! * [`confusion`] — TP/TN/FP/FN bookkeeping, the Precision/Recall/TNR/
//!   Accuracy definitions of §4.2, and the ×86 extrapolation of §4.2.1.
//! * [`methods`] — the four compared methods (FUNNEL, improved SST without
//!   DiD, CUSUM, MRLS) behind one interface, with per-method calibrated
//!   thresholds.
//! * [`cohort`] — runs a whole evaluation cohort against every method in
//!   parallel, scoring each (change, entity, KPI) *item* against the
//!   world's ground truth; produces Table 1 and the Fig. 5 delay samples.
//! * [`ccdf`] — complementary CDFs and medians for detection delays.
//! * [`timing`] — single-thread per-window wall-clock measurement and the
//!   "cores for one million KPIs" projection of Table 2.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ccdf;
pub mod cohort;
pub mod confusion;
pub mod methods;
pub mod roc;
pub mod timing;

pub use ccdf::{ccdf_points, median_delay};
pub use cohort::{evaluate_cohort, CohortResult, ItemOutcome};
pub use confusion::{ConfusionMatrix, Rates};
pub use methods::Method;
pub use roc::{auc_by_ranks, roc_curve, RocCurve, RocPoint, ScoredItem};
