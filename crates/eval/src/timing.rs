//! Single-thread per-window timing and the Table-2 projection.
//!
//! Table 2 reports each method's average computational time per sliding
//! window on one core, then projects "# cores for one million KPIs": with
//! one window per KPI per minute, a method that needs `t` seconds per
//! window needs `⌈10⁶·t / 60⌉` cores to keep up.

use crate::methods::{Method, MethodRunner};
use funnel_timeseries::generate::{KpiClass, KpiGenerator};
use std::time::Instant;

/// Timing result for one method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodTiming {
    /// The method measured.
    pub method: Method,
    /// Mean wall-clock seconds per window (single thread).
    pub seconds_per_window: f64,
    /// Windows evaluated.
    pub windows: usize,
}

impl MethodTiming {
    /// Cores needed to score one million KPIs once a minute.
    pub fn cores_for_million_kpis(&self) -> u64 {
        (1_000_000.0 * self.seconds_per_window / 60.0).ceil() as u64
    }

    /// Human-friendly per-window time.
    pub fn per_window_display(&self) -> String {
        let s = self.seconds_per_window;
        if s >= 1.0 {
            format!("{s:.3} s")
        } else if s >= 1e-3 {
            format!("{:.3} ms", s * 1e3)
        } else {
            format!("{:.1} µs", s * 1e6)
        }
    }
}

/// Measures `method` on `windows` sliding windows of realistic mixed-class
/// KPI data (deterministic), single-threaded.
pub fn time_method(method: Method, windows: usize) -> MethodTiming {
    let runner = MethodRunner::new(method);
    let w = runner.window_len();
    // One long series per class, scored round-robin, so the measurement
    // covers seasonal, stationary and variable inputs alike.
    let data: Vec<Vec<f64>> = KpiClass::ALL
        .iter()
        .map(|&c| {
            KpiGenerator::for_class(c, 500.0)
                .generate(0, windows + w, 0xC0FFEE)
                .values()
                .to_vec()
        })
        .collect();

    // Warm-up pass (JIT-free in Rust, but touches caches/allocs).
    for d in &data {
        let _ = runner.score_window(&d[..w]);
    }

    let start = Instant::now();
    let mut sink = 0.0f64;
    for i in 0..windows {
        let d = &data[i % data.len()];
        sink += runner.score_window(&d[i..i + w]);
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Keep the optimizer honest.
    assert!(sink.is_finite());

    MethodTiming {
        method,
        seconds_per_window: elapsed / windows as f64,
        windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_projection_math() {
        let t = MethodTiming {
            method: Method::Funnel,
            seconds_per_window: 401.8e-6,
            windows: 1,
        };
        assert_eq!(t.cores_for_million_kpis(), 7); // the paper's own row
        let t = MethodTiming {
            method: Method::Mrls,
            seconds_per_window: 2.852,
            windows: 1,
        };
        assert_eq!(t.cores_for_million_kpis(), 47_534); // ⌈2.852e6/60⌉
    }

    #[test]
    fn display_units() {
        let mk = |s| MethodTiming {
            method: Method::Funnel,
            seconds_per_window: s,
            windows: 1,
        };
        assert!(mk(2.0).per_window_display().ends_with('s'));
        assert!(mk(2e-3).per_window_display().contains("ms"));
        assert!(mk(2e-6).per_window_display().contains("µs"));
    }

    #[test]
    fn timing_runs_and_orders_methods() {
        // Tiny sample counts — this is a smoke test, the bench bins use
        // larger ones.
        let funnel = time_method(Method::Funnel, 40);
        let mrls = time_method(Method::Mrls, 10);
        assert!(funnel.seconds_per_window > 0.0);
        assert!(
            mrls.seconds_per_window > funnel.seconds_per_window,
            "MRLS {} vs FUNNEL {}",
            mrls.seconds_per_window,
            funnel.seconds_per_window
        );
    }
}
