//! Cohort evaluation: every method × every (change, entity, KPI) item.
//!
//! Reproduces the §4.1/§4.2 methodology: for each software change the
//! impact-set KPIs are enumerated (via FUNNEL's own impact-set logic, which
//! is "equally beneficial to FUNNEL, CUSUM and MRLS, and is not biased
//! towards FUNNEL"), each method is given the sliding windows around the
//! change, and each item outcome is scored against the world's ground
//! truth. Items whose injected effect is below the 3σ prominence bar are
//! skipped as ambiguous (the paper's operators only labelled clear behaviour
//! changes). The clean-change cohort's counts can be scaled by 86 = 6194/72
//! per §4.2.1.

use crate::confusion::ConfusionMatrix;
use crate::methods::{Method, MethodRunner};
use funnel_core::pipeline::Funnel;
use funnel_core::FunnelConfig;
use funnel_sim::kpi::KpiKey;
use funnel_sim::scenario::CohortMeta;
use funnel_sim::world::{GroundTruthItem, World};
use funnel_timeseries::generate::KpiClass;
use funnel_timeseries::series::TimeSeries;
use funnel_topology::change::ChangeId;
use std::collections::HashMap;

/// One evaluated item for one method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItemOutcome {
    /// The change being assessed.
    pub change: ChangeId,
    /// The KPI.
    pub key: KpiKey,
    /// The KPI's character class (Table 1 grouping).
    pub class: KpiClass,
    /// Ground truth: the item has a software-caused KPI change.
    pub actual: bool,
    /// The method's claim.
    pub predicted: bool,
    /// Detection delay in minutes (true positives only).
    pub delay: Option<u64>,
}

/// Per-method aggregation.
#[derive(Debug, Clone, Default)]
pub struct MethodResult {
    /// Confusion matrices for effecting changes, by class.
    pub effecting: HashMap<KpiClass, ConfusionMatrix>,
    /// Confusion matrices for clean (no-effect) changes, by class.
    pub clean: HashMap<KpiClass, ConfusionMatrix>,
    /// Detection delays of true positives.
    pub delays: Vec<u64>,
}

impl MethodResult {
    /// The Table-1 matrix for `class`: effecting + clean × `scale`.
    pub fn scaled(&self, class: KpiClass, scale: f64) -> ConfusionMatrix {
        let mut m = self.effecting.get(&class).copied().unwrap_or_default();
        if let Some(c) = self.clean.get(&class) {
            m.add_scaled(c, scale);
        }
        m
    }

    /// All classes merged (scaled).
    pub fn scaled_overall(&self, scale: f64) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new();
        for class in KpiClass::ALL {
            m.add_scaled(&self.scaled(class, scale), 1.0);
        }
        m
    }
}

/// Options for [`evaluate_cohort`].
#[derive(Debug, Clone)]
pub struct CohortOptions {
    /// Methods to evaluate.
    pub methods: Vec<Method>,
    /// Worker threads.
    pub threads: usize,
    /// Seasonal-history days available to FUNNEL's DiD.
    pub history_days: u32,
}

impl Default for CohortOptions {
    fn default() -> Self {
        Self {
            methods: Method::ALL.to_vec(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            history_days: 6,
        }
    }
}

/// The full cohort result.
#[derive(Debug, Clone)]
pub struct CohortResult {
    /// Per-method aggregations, in the order requested.
    pub per_method: Vec<(Method, MethodResult)>,
    /// Total items evaluated (per method).
    pub items_total: usize,
    /// Items skipped as ambiguous (injected effect below prominence).
    pub items_skipped: usize,
}

impl CohortResult {
    /// The result for one method.
    pub fn method(&self, m: Method) -> Option<&MethodResult> {
        self.per_method
            .iter()
            .find(|(mm, _)| *mm == m)
            .map(|(_, r)| r)
    }
}

/// Evaluates the cohort. Deterministic given the world and options.
pub fn evaluate_cohort(world: &World, meta: &CohortMeta, opts: &CohortOptions) -> CohortResult {
    // Ground-truth index.
    let gt: HashMap<(ChangeId, KpiKey), GroundTruthItem> = world
        .ground_truth()
        .into_iter()
        .map(|g| ((g.change, g.key), g))
        .collect();

    let mut funnel_config = FunnelConfig::paper_default();
    funnel_config.history_days = opts.history_days;
    let funnel = Funnel::new(funnel_config.clone());
    let assessment_minutes = funnel_config.assessment_minutes;

    let changes: Vec<(ChangeId, bool)> = meta.changes.clone();
    let threads = opts.threads.max(1).min(changes.len().max(1));
    let chunks: Vec<&[(ChangeId, bool)]> =
        changes.chunks(changes.len().div_ceil(threads)).collect();

    // Each worker returns (per-method result, items, skipped).
    type WorkerOut = (Vec<(Method, MethodResult)>, usize, usize);
    let worker_out: Vec<WorkerOut> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let gt = &gt;
                let funnel = &funnel;
                let methods = &opts.methods;
                s.spawn(move || {
                    let runners: Vec<(Method, MethodRunner)> =
                        methods.iter().map(|&m| (m, MethodRunner::new(m))).collect();
                    let mut results: Vec<(Method, MethodResult)> = methods
                        .iter()
                        .map(|&m| (m, MethodResult::default()))
                        .collect();
                    let mut items = 0usize;
                    let mut skipped = 0usize;

                    for &(change_id, has_effect) in chunk.iter() {
                        let assessment = funnel
                            .assess_change(world, change_id)
                            .expect("cohort changes assess cleanly");
                        let change_minute =
                            world.change_log().get(change_id).expect("exists").minute;

                        for item in &assessment.items {
                            let gt_item = gt.get(&(change_id, item.key));
                            let actual = match gt_item {
                                Some(g) if g.is_prominent() => true,
                                Some(_) => {
                                    skipped += 1;
                                    continue; // ambiguous: sub-prominence effect
                                }
                                None => false,
                            };
                            items += 1;
                            let class = item.key.kind.class();
                            let onset = gt_item.map_or(change_minute, |g| g.onset);

                            // Detector input: warmup + assessment span.
                            let series = funnel_core::source::KpiSource::series(&world, &item.key)
                                .expect("series exists");

                            for ((method, runner), (_, result)) in
                                runners.iter().zip(results.iter_mut())
                            {
                                let (predicted, delay) = match method {
                                    Method::Funnel => {
                                        let d = item
                                            .detection
                                            .as_ref()
                                            .map(|e| e.declared_at.saturating_sub(onset));
                                        (item.caused, d)
                                    }
                                    // Improved SST = FUNNEL's detector
                                    // without the DiD step: reuse the
                                    // pipeline's detection verbatim.
                                    Method::ImprovedSst => {
                                        let d = item
                                            .detection
                                            .as_ref()
                                            .map(|e| e.declared_at.saturating_sub(onset));
                                        (item.detection.is_some(), d)
                                    }
                                    _ => {
                                        let w = runner.window_len() as u64;
                                        let from =
                                            change_minute.saturating_sub(2 * w).max(series.start());
                                        let to = change_minute + assessment_minutes + 1;
                                        let slice =
                                            TimeSeries::new(from, series.slice(from, to).to_vec());
                                        match runner.first_event_after(&slice, change_minute) {
                                            Some(e) => {
                                                (true, Some(e.declared_at.saturating_sub(onset)))
                                            }
                                            None => (false, None),
                                        }
                                    }
                                };
                                let bucket = if has_effect {
                                    result.effecting.entry(class).or_default()
                                } else {
                                    result.clean.entry(class).or_default()
                                };
                                bucket.record(actual, predicted);
                                if actual && predicted {
                                    if let Some(d) = delay {
                                        result.delays.push(d);
                                    }
                                }
                            }
                        }
                    }
                    (results, items, skipped)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker ok"))
            .collect()
    });

    // Merge workers.
    let mut per_method: Vec<(Method, MethodResult)> = opts
        .methods
        .iter()
        .map(|&m| (m, MethodResult::default()))
        .collect();
    let mut items_total = 0;
    let mut items_skipped = 0;
    for (partial, items, skipped) in worker_out {
        items_total += items;
        items_skipped += skipped;
        for ((_, dst), (_, src)) in per_method.iter_mut().zip(partial) {
            for (class, m) in src.effecting {
                dst.effecting.entry(class).or_default().add_scaled(&m, 1.0);
            }
            for (class, m) in src.clean {
                dst.clean.entry(class).or_default().add_scaled(&m, 1.0);
            }
            dst.delays.extend(src.delays);
        }
    }

    CohortResult {
        per_method,
        items_total,
        items_skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnel_sim::scenario::evaluation_world;

    /// Smoke test on a trimmed cohort: FUNNEL must beat the raw detectors
    /// on accuracy, and every method must see the same item universe.
    #[test]
    fn trimmed_cohort_ranks_funnel_first() {
        let (world, meta) = evaluation_world(3);
        // Keep the runtime modest: first 24 changes (12 effecting).
        let mut small = meta.clone();
        small.changes.truncate(24);
        let opts = CohortOptions {
            methods: vec![Method::Funnel, Method::ImprovedSst],
            threads: 8,
            history_days: 6,
        };
        let res = evaluate_cohort(&world, &small, &opts);
        assert!(res.items_total > 100, "items {}", res.items_total);
        let f = res.method(Method::Funnel).unwrap().scaled_overall(1.0);
        let s = res.method(Method::ImprovedSst).unwrap().scaled_overall(1.0);
        assert_eq!(f.total(), s.total(), "methods saw different item counts");
        let fr = f.rates();
        let sr = s.rates();
        // DiD must not hurt accuracy, and must strictly improve precision
        // whenever the raw detector has any false positives.
        assert!(fr.accuracy >= sr.accuracy - 1e-9, "{fr:?} vs {sr:?}");
        if s.fp > 0.0 {
            assert!(fr.precision > sr.precision, "{fr:?} vs {sr:?}");
        }
        // FUNNEL recall should be high on prominent effects.
        assert!(fr.recall > 0.7, "recall {}", fr.recall);
    }
}
