//! The four compared methods behind one interface.
//!
//! §4.1 fixes each method's sliding-window width to its accuracy-optimal
//! value (`W_FUNNEL = 34`, `W_MRLS = 32`, `W_CUSUM = 60`) and sets "the
//! values of other parameters … to the best for the corresponding
//! algorithm's accuracy"; the thresholds below were calibrated the same way
//! on a held-out cohort seed (see the `ablations` bench for the sweeps).
//! FUNNEL = improved SST + persistence + DiD; "Improved SST" is the same
//! detector *without* the DiD causality step — the Table 1 row that shows
//! why DiD matters.

use funnel_detect::cusum::CusumDetector;
use funnel_detect::detector::{ChangeEvent, DetectorRunner};
use funnel_detect::mrls::MrlsDetector;
use funnel_detect::sst_adapter::SstDetector;
use funnel_detect::{W_CUSUM, W_MRLS};
use funnel_sst::{FastSst, SstConfig};
use funnel_timeseries::series::{MinuteBin, TimeSeries};

/// The methods compared throughout §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Improved SST + persistence + DiD (the full tool).
    Funnel,
    /// Improved SST + persistence, no DiD.
    ImprovedSst,
    /// MERCURY's CUSUM.
    Cusum,
    /// PRISM's MRLS.
    Mrls,
}

impl Method {
    /// All four, in Table-1 row order.
    pub const ALL: [Method; 4] = [
        Method::Funnel,
        Method::ImprovedSst,
        Method::Cusum,
        Method::Mrls,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Funnel => "FUNNEL",
            Method::ImprovedSst => "Improved SST",
            Method::Cusum => "CUSUM",
            Method::Mrls => "MRLS",
        }
    }

    /// The method's sliding-window width (§4.1).
    pub fn window_len(&self) -> usize {
        match self {
            Method::Funnel | Method::ImprovedSst => SstConfig::paper_default().window_len(),
            Method::Cusum => W_CUSUM,
            Method::Mrls => W_MRLS,
        }
    }

    /// Calibrated declaration threshold.
    pub fn threshold(&self) -> f64 {
        match self {
            Method::Funnel | Method::ImprovedSst => 0.5,
            Method::Cusum => 2.5,
            Method::Mrls => 8.0,
        }
    }

    /// Persistence requirement in minutes. FUNNEL applies the 7-minute
    /// rule; CUSUM's accumulation is inherently persistent (a short
    /// confirmation suffices); MRLS ships without one — the paper notes it
    /// "can detect a level shift within 7 minutes, at the cost of much more
    /// false positives".
    pub fn persistence(&self) -> usize {
        match self {
            Method::Funnel | Method::ImprovedSst => funnel_detect::PERSISTENCE_MINUTES,
            Method::Cusum => 3,
            Method::Mrls => 1,
        }
    }
}

/// A type-erased runner for any method's *detector* (FUNNEL's DiD layer is
/// applied by the cohort driver on top of this).
pub enum MethodRunner {
    /// SST-based (FUNNEL / improved SST).
    Sst(DetectorRunner<SstDetector<FastSst>>),
    /// CUSUM.
    Cusum(DetectorRunner<CusumDetector>),
    /// MRLS.
    Mrls(DetectorRunner<MrlsDetector>),
}

impl MethodRunner {
    /// Builds the calibrated runner for `method`.
    pub fn new(method: Method) -> Self {
        match method {
            Method::Funnel | Method::ImprovedSst => MethodRunner::Sst(DetectorRunner::new(
                SstDetector::fast(FastSst::new(SstConfig::paper_default())),
                method.threshold(),
                method.persistence(),
            )),
            Method::Cusum => MethodRunner::Cusum(DetectorRunner::new(
                CusumDetector::paper_default(),
                method.threshold(),
                method.persistence(),
            )),
            Method::Mrls => MethodRunner::Mrls(DetectorRunner::new(
                MrlsDetector::paper_default(),
                method.threshold(),
                method.persistence(),
            )),
        }
    }

    /// Runner with an explicit threshold (for calibration sweeps).
    pub fn with_threshold(method: Method, threshold: f64) -> Self {
        match method {
            Method::Funnel | Method::ImprovedSst => MethodRunner::Sst(DetectorRunner::new(
                SstDetector::fast(FastSst::new(SstConfig::paper_default())),
                threshold,
                method.persistence(),
            )),
            Method::Cusum => MethodRunner::Cusum(DetectorRunner::new(
                CusumDetector::paper_default(),
                threshold,
                method.persistence(),
            )),
            Method::Mrls => MethodRunner::Mrls(DetectorRunner::new(
                MrlsDetector::paper_default(),
                threshold,
                method.persistence(),
            )),
        }
    }

    /// The underlying window width.
    pub fn window_len(&self) -> usize {
        match self {
            MethodRunner::Sst(r) => funnel_detect::WindowScorer::window_len(r.scorer()),
            MethodRunner::Cusum(r) => funnel_detect::WindowScorer::window_len(r.scorer()),
            MethodRunner::Mrls(r) => funnel_detect::WindowScorer::window_len(r.scorer()),
        }
    }

    /// Runs detection over a series, returning declared events.
    pub fn run(&self, series: &TimeSeries) -> Vec<ChangeEvent> {
        match self {
            MethodRunner::Sst(r) => r.run(series),
            MethodRunner::Cusum(r) => r.run(series),
            MethodRunner::Mrls(r) => r.run(series),
        }
    }

    /// Scores a single window (for the Table 2 timing harness).
    pub fn score_window(&self, window: &[f64]) -> f64 {
        use funnel_detect::WindowScorer;
        match self {
            MethodRunner::Sst(r) => r.scorer().score(window),
            MethodRunner::Cusum(r) => r.scorer().score(window),
            MethodRunner::Mrls(r) => r.scorer().score(window),
        }
    }

    /// First event declared at or after `minute`, over the detection span.
    pub fn first_event_after(&self, series: &TimeSeries, minute: MinuteBin) -> Option<ChangeEvent> {
        self.run(series)
            .into_iter()
            .find(|e| e.declared_at >= minute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runners_construct_with_paper_widths() {
        assert_eq!(MethodRunner::new(Method::Funnel).window_len(), 34);
        assert_eq!(MethodRunner::new(Method::Cusum).window_len(), 60);
        assert_eq!(MethodRunner::new(Method::Mrls).window_len(), 32);
        assert_eq!(Method::ImprovedSst.window_len(), 34);
    }

    #[test]
    fn all_methods_detect_a_blatant_shift() {
        let mut v: Vec<f64> = (0..200)
            .map(|i| 100.0 + ((i * 13 % 7) as f64) * 0.3)
            .collect();
        for x in v.iter_mut().skip(120) {
            *x += 50.0;
        }
        let series = TimeSeries::new(0, v);
        for m in Method::ALL {
            let runner = MethodRunner::new(m);
            let ev = runner.first_event_after(&series, 120);
            assert!(ev.is_some(), "{} missed a 50-unit shift", m.name());
        }
    }

    #[test]
    fn quiet_series_mostly_quiet() {
        let v: Vec<f64> = (0..200)
            .map(|i| 100.0 + ((i * 13 % 7) as f64) * 0.3 + ((i * 7 % 5) as f64) * 0.2)
            .collect();
        let series = TimeSeries::new(0, v);
        for m in [Method::Funnel, Method::Cusum] {
            let runner = MethodRunner::new(m);
            assert!(
                runner.run(&series).is_empty(),
                "{} fired on quiet data",
                m.name()
            );
        }
    }
}
