//! ROC analysis over declaration thresholds.
//!
//! §4.1 justifies fixing each method's parameters at its accuracy-best
//! values by noting the conclusion matches "the method that \[changes\] the
//! value of the parameters, calculating the accuracies and plotting the
//! receiver operating characteristic (ROC) curves". This module is that
//! alternative methodology: given per-item peak scores, sweep the threshold
//! continuously and produce the ROC curve and its AUC, so methods can be
//! compared independent of any single operating point.

/// One scored item: the method's peak score over the assessment window and
/// the ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredItem {
    /// Peak score the method assigned.
    pub score: f64,
    /// Whether the item truly has a software-caused KPI change.
    pub actual: bool,
}

/// A point on the ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Threshold that produces this point (items with `score >= threshold`
    /// are predicted positive).
    pub threshold: f64,
    /// False-positive rate.
    pub fpr: f64,
    /// True-positive rate (recall).
    pub tpr: f64,
}

/// The full curve plus its area.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    /// Points from the most permissive threshold (top right) to the most
    /// conservative (bottom left), inclusive of the (0,0) and (1,1) ends.
    pub points: Vec<RocPoint>,
    /// Area under the curve; 0.5 = chance, 1.0 = perfect ranking.
    pub auc: f64,
}

/// Builds the ROC curve from scored items.
///
/// Returns `None` when the items are all-positive or all-negative (no curve
/// exists). Ties in scores are handled by treating equal-scored items as one
/// threshold step, which is the standard exact construction.
pub fn roc_curve(items: &[ScoredItem]) -> Option<RocCurve> {
    let positives = items.iter().filter(|i| i.actual).count();
    let negatives = items.len() - positives;
    if positives == 0 || negatives == 0 {
        return None;
    }

    // Sort by score descending; sweep thresholds at each distinct score.
    let mut sorted: Vec<&ScoredItem> = items.iter().collect();
    sorted.sort_by(|a, b| b.score.total_cmp(&a.score));

    let mut points = vec![RocPoint {
        threshold: f64::INFINITY,
        fpr: 0.0,
        tpr: 0.0,
    }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < sorted.len() {
        let score = sorted[i].score;
        // Consume the whole tie group.
        while i < sorted.len() && sorted[i].score == score {
            if sorted[i].actual {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold: score,
            fpr: fp as f64 / negatives as f64,
            tpr: tp as f64 / positives as f64,
        });
    }

    // Trapezoidal AUC.
    let mut auc = 0.0;
    for w in points.windows(2) {
        auc += (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) / 2.0;
    }

    Some(RocCurve { points, auc })
}

/// AUC via the rank statistic (probability a random positive outranks a
/// random negative, ties counted half) — an independent computation used to
/// cross-check [`roc_curve`] in tests.
pub fn auc_by_ranks(items: &[ScoredItem]) -> Option<f64> {
    let pos: Vec<f64> = items.iter().filter(|i| i.actual).map(|i| i.score).collect();
    let neg: Vec<f64> = items
        .iter()
        .filter(|i| !i.actual)
        .map(|i| i.score)
        .collect();
    if pos.is_empty() || neg.is_empty() {
        return None;
    }
    let mut wins = 0.0;
    for &p in &pos {
        for &n in &neg {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    Some(wins / (pos.len() * neg.len()) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(score: f64, actual: bool) -> ScoredItem {
        ScoredItem { score, actual }
    }

    #[test]
    fn perfect_separation_gives_auc_one() {
        let items = vec![
            item(0.9, true),
            item(0.8, true),
            item(0.2, false),
            item(0.1, false),
        ];
        let roc = roc_curve(&items).unwrap();
        assert!((roc.auc - 1.0).abs() < 1e-12);
        assert_eq!(roc.points.first().unwrap().tpr, 0.0);
        assert_eq!(roc.points.last().unwrap().tpr, 1.0);
        assert_eq!(roc.points.last().unwrap().fpr, 1.0);
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let items = vec![item(0.1, true), item(0.9, false)];
        let roc = roc_curve(&items).unwrap();
        assert!(roc.auc.abs() < 1e-12);
    }

    #[test]
    fn random_interleaving_is_half() {
        // Alternating equal-quality scores → AUC 0.5.
        let items: Vec<ScoredItem> = (0..100).map(|i| item(i as f64, i % 2 == 0)).collect();
        let roc = roc_curve(&items).unwrap();
        assert!((roc.auc - 0.5).abs() < 0.02, "auc {}", roc.auc);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(roc_curve(&[item(1.0, true)]).is_none());
        assert!(roc_curve(&[item(1.0, false)]).is_none());
        assert!(roc_curve(&[]).is_none());
    }

    #[test]
    fn curve_auc_matches_rank_auc() {
        // Deterministic pseudo-random mixture, including ties.
        let items: Vec<ScoredItem> = (0..200)
            .map(|i| {
                let score = ((i * 37) % 50) as f64 / 10.0;
                let actual = (i * 17) % 3 == 0 && score > 1.0;
                item(score, actual)
            })
            .collect();
        let roc = roc_curve(&items).unwrap();
        let rank = auc_by_ranks(&items).unwrap();
        assert!((roc.auc - rank).abs() < 1e-9, "{} vs {rank}", roc.auc);
    }

    #[test]
    fn monotone_curve() {
        let items: Vec<ScoredItem> = (0..50)
            .map(|i| item(((i * 13) % 23) as f64, (i * 7) % 4 == 0))
            .collect();
        let roc = roc_curve(&items).unwrap();
        for w in roc.points.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
    }
}
