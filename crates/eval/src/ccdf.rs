//! Complementary CDFs and medians for detection delays (paper Fig. 5).

/// Returns the CCDF of `delays` evaluated at every integer minute from 0 to
/// `max_minute` inclusive: `(minute, fraction of delays > minute)` —
/// matching Fig. 5's axes (CCDF in %, delay in minutes). Empty input yields
/// an empty vector.
pub fn ccdf_points(delays: &[u64], max_minute: u64) -> Vec<(u64, f64)> {
    if delays.is_empty() {
        return Vec::new();
    }
    let n = delays.len() as f64;
    (0..=max_minute)
        .map(|m| {
            let above = delays.iter().filter(|&&d| d > m).count() as f64;
            (m, above / n)
        })
        .collect()
}

/// Median delay in minutes (average of central order statistics for even
/// counts); `None` for empty input.
pub fn median_delay(delays: &[u64]) -> Option<f64> {
    if delays.is_empty() {
        return None;
    }
    let mut v = delays.to_vec();
    v.sort_unstable();
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2] as f64
    } else {
        (v[n / 2 - 1] + v[n / 2]) as f64 / 2.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccdf_basic() {
        let points = ccdf_points(&[1, 2, 2, 5], 5);
        assert_eq!(points[0], (0, 1.0)); // all > 0
        assert_eq!(points[1], (1, 0.75));
        assert_eq!(points[2], (2, 0.25));
        assert_eq!(points[5], (5, 0.0));
    }

    #[test]
    fn ccdf_empty() {
        assert!(ccdf_points(&[], 10).is_empty());
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median_delay(&[3, 1, 2]), Some(2.0));
        assert_eq!(median_delay(&[1, 2, 3, 10]), Some(2.5));
        assert_eq!(median_delay(&[]), None);
    }
}
