//! The collector as a resumable state machine.
//!
//! [`crate::agent::replay`] originally held the collector inline in its
//! receive loop. Crash-safe ingestion needs the collector's working state to
//! be a first-class value — something a checkpoint can serialize and a
//! recovery can resume from — so the loop's state and transition logic live
//! here as [`Collector`] / [`CollectorState`], and the replay loop drives
//! them through a narrow three-step protocol:
//!
//! 1. [`Collector::classify`] — pure: decode a raw frame and decide its
//!    fate ([`Ingest`]) without mutating anything.
//! 2. [`IngestHooks::on_accepted_frame`] — the durability seam: a WAL can
//!    append the raw bytes *before* the store changes, so a crash between
//!    append and commit replays the frame instead of losing it.
//! 3. [`Collector::commit`] — apply the classified frame: store appends,
//!    watermark advance, minute finalization.
//!
//! The split preserves the exact semantics of the original inline loop
//! (same counters, same ordering, same byte-identical aggregates); the
//! existing replay entry points drive it with [`NoHooks`] and are
//! behaviourally unchanged.

use crate::agent::ReplayStats;
use crate::kpi::{Aggregation, KpiKey, KpiKind};
use crate::store::MetricStore;
use crate::wire::{decode_frame, WireFrame, WireRecord};
use crate::world::World;
use bytes::Bytes;
use funnel_timeseries::series::MinuteBin;
use funnel_topology::impact::Entity;
use funnel_topology::model::ServiceId;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Largest record magnitude the collector accepts. Anything beyond this is
/// treated as corruption, not measurement — see the rejection site in
/// [`Collector::commit`] for the rationale.
pub const MAX_PLAUSIBLE_VALUE: f64 = 1e12;

/// Largest single-minute *drop* the collector accepts for one key. A
/// monotonic counter that resets (process restart, u32 wraparound) reported
/// through a raw-gauge channel shows up as a huge negative delta; no KPI
/// this pipeline measures moves anywhere near this much in one minute, so
/// anything past it is a reset artifact, not a measurement.
pub const MAX_COUNTER_RESET_DROP: f64 = 1e9;

/// How far ahead of its own agent's watermark a frame's minute stamp may
/// run before the collector refuses to believe the clock. The reorder
/// horizon explains *late* frames; a frame a week in the *future* can only
/// be a skewed or corrupted clock, and ingesting it would poison minute
/// finalization for every agent.
pub const MAX_CLOCK_SKEW_MINUTES: u64 = 10_080;

/// Per (service, kind): the (instance id, value) pairs seen so far for one
/// minute. Summation happens in instance-id order at finalize time, so the
/// aggregate is bit-identical no matter how frames interleave. A BTreeMap
/// (not HashMap) fixes the order in which a finalized minute's aggregates
/// are appended and published to subscribers — hasher order would leak into
/// the subscriber-visible stream.
pub type MinuteAccs = BTreeMap<(ServiceId, KpiKind), Vec<(u32, f64)>>;

/// The collector's complete mutable working state — everything a resumed
/// collector needs besides the [`MetricStore`] contents themselves. Every
/// container is ordered (`BTreeMap`/`BTreeSet`), so serializing the state
/// is deterministic by construction.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CollectorState {
    /// Per-agent watermark: frames within one agent arrive in send order,
    /// so once agent `a`'s watermark passes minute `m` + reorder horizon
    /// without a frame for `m`, that frame is lost — scheduling skew
    /// between agents can never be mistaken for loss, and a delayed frame
    /// is never declared lost inside the horizon.
    pub watermarks: Vec<Option<u64>>,
    /// Per-agent minutes already accepted, for duplicate suppression.
    /// Ordered sets so checkpoint serialization is deterministic.
    pub seen: Vec<BTreeSet<u64>>,
    /// Minutes awaiting finalization: how many agents reported the minute,
    /// plus the per-service aggregation cells collected so far.
    pub pending: BTreeMap<u64, (usize, MinuteAccs)>,
    /// Late frames from healed partitions, staged keyed by (agent, minute):
    /// a BTreeMap so the end-of-stream flush walks them in deterministic
    /// (agent, minute) order no matter how the agent threads interleaved.
    pub backfill_stage: BTreeMap<(u32, u64), Vec<WireRecord>>,
    /// Aggregation cells of finalized-but-incomplete minutes, kept (not
    /// discarded) so a healed span's backfilled cells can complete them.
    pub partial: BTreeMap<u64, MinuteAccs>,
}

impl CollectorState {
    /// Fresh state for a collector fed by `shards` agents.
    pub fn new(shards: usize) -> Self {
        Self {
            watermarks: vec![None; shards],
            seen: vec![BTreeSet::new(); shards],
            pending: BTreeMap::new(),
            backfill_stage: BTreeMap::new(),
            partial: BTreeMap::new(),
        }
    }
}

/// The classified fate of one raw frame, decided by [`Collector::classify`]
/// without mutating anything. `Live` and `Backfill` frames are *accepted* —
/// they change durable state and therefore pass through
/// [`IngestHooks::on_accepted_frame`] before [`Collector::commit`].
#[derive(Debug, Clone, PartialEq)]
pub enum Ingest {
    /// A current frame: appended to the store, advances its agent's
    /// watermark, participates in minute finalization.
    Live(WireFrame),
    /// A healed partition's late frame (its minute lies behind the sending
    /// agent's own watermark by more than the reorder horizon): staged for
    /// the deterministic end-of-stream backfill flush.
    Backfill(WireFrame),
    /// A re-delivery of a minute this agent already sent: suppressed. The
    /// re-delivered minute rides along for timeline attribution.
    Duplicate(MinuteBin),
    /// Undecodable bytes or a header claiming an unknown agent: counted and
    /// discarded, never a panic. Carries the claimed frame minute when the
    /// header decoded (unknown agent); `None` when the bytes were torn too
    /// badly to trust even the header, in which case the quarantine shows
    /// up only in the aggregate counter, never on the timeline.
    Quarantined(Option<MinuteBin>),
    /// A frame whose minute stamp runs further ahead of its own agent's
    /// watermark than [`MAX_CLOCK_SKEW_MINUTES`] plus the reorder horizon:
    /// a skewed or corrupted clock, quarantined with its own counter so a
    /// fleet-wide skew incident is visible at a glance. Carries the skewed
    /// minute stamp itself.
    ClockSkewed(MinuteBin),
}

impl Ingest {
    /// Whether this frame changes durable state (and must therefore be
    /// written to the WAL before [`Collector::commit`] applies it).
    pub fn accepted(&self) -> bool {
        matches!(self, Ingest::Live(_) | Ingest::Backfill(_))
    }
}

/// Returned by an [`IngestHooks`] method to abort the replay, simulating a
/// collector crash (or surfacing a real durability failure). The replay
/// stops without flushing end-of-stream state, exactly like a kill would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestAbort;

/// Durability seams in the ingest path. The default implementation of every
/// hook is a no-op, so plain replays pay nothing; `funnel-resilience`
/// implements them to write a WAL and periodic checkpoints — and its chaos
/// harness implements them to tear a write and abort mid-stream.
pub trait IngestHooks {
    /// Called with the raw bytes of every *accepted* frame (see
    /// [`Ingest::accepted`]) before the commit mutates any state. Returning
    /// an error aborts the replay as if the collector died here: the frame
    /// is not committed.
    ///
    /// # Errors
    ///
    /// [`IngestAbort`] to simulate (or surface) a crash at this seam.
    fn on_accepted_frame(&mut self, raw: &Bytes) -> Result<(), IngestAbort> {
        let _ = raw;
        Ok(())
    }

    /// Called after each accepted frame's commit, with the collector's
    /// post-commit state — the checkpoint seam. Returning an error aborts
    /// the replay as if the collector died mid-checkpoint.
    ///
    /// # Errors
    ///
    /// [`IngestAbort`] to simulate (or surface) a crash at this seam.
    fn after_commit(&mut self, collector: &Collector<'_>) -> Result<(), IngestAbort> {
        let _ = collector;
        Ok(())
    }

    /// Called once when every agent has finished sending, *before* the
    /// collector's end-of-stream flush — where a WAL writes its
    /// end-of-stream marker so recovery knows the stream completed.
    ///
    /// # Errors
    ///
    /// [`IngestAbort`] to simulate (or surface) a crash at this seam.
    fn on_end_of_stream(&mut self, collector: &Collector<'_>) -> Result<(), IngestAbort> {
        let _ = collector;
        Ok(())
    }
}

/// The no-op hooks plain (non-durable) replays run with.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl IngestHooks for NoHooks {}

/// The collector state machine: owns a [`CollectorState`], borrows the
/// [`MetricStore`] it appends into, and carries the world-derived lookup
/// tables (instance → service, service sizes) aggregation needs.
pub struct Collector<'a> {
    store: &'a MetricStore,
    shards: usize,
    horizon: u64,
    instance_service: HashMap<u32, ServiceId>,
    service_sizes: HashMap<ServiceId, usize>,
    state: CollectorState,
    stats: ReplayStats,
    /// Last live value accepted per key, for the counter-reset gate.
    /// Deliberately *not* part of [`CollectorState`]: it is a plausibility
    /// heuristic, not durable ingest state — a recovery re-arms it from
    /// the replayed WAL tail, and checkpoints stay format-stable.
    last_values: BTreeMap<KpiKey, f64>,
}

impl<'a> Collector<'a> {
    /// A fresh collector for `world`'s topology, fed by `shards` agents
    /// whose transport reorders by at most `horizon` minutes.
    pub fn for_world(world: &World, store: &'a MetricStore, shards: usize, horizon: u64) -> Self {
        Self::resume(world, store, shards, horizon, CollectorState::new(shards))
    }

    /// A collector resuming from previously captured state (a checkpoint's
    /// collector half). `state` must have been captured from a collector
    /// with the same `shards`; per-shard vectors are resized defensively so
    /// a mismatched checkpoint degrades to re-ingestion, never a panic.
    pub fn resume(
        world: &World,
        store: &'a MetricStore,
        shards: usize,
        horizon: u64,
        mut state: CollectorState,
    ) -> Self {
        let shards = shards.max(1);
        state.watermarks.resize(shards, None);
        state.seen.resize(shards, BTreeSet::new());
        let mut instance_service: HashMap<u32, ServiceId> = HashMap::new();
        for inst in world.topology().instances() {
            instance_service.insert(inst.id.0, inst.service);
        }
        let service_sizes: HashMap<ServiceId, usize> = world
            .topology()
            .services()
            .map(|(id, _)| (id, world.topology().instances_of(id).len()))
            .collect();
        Self {
            store,
            shards,
            horizon,
            instance_service,
            service_sizes,
            state,
            stats: ReplayStats::default(),
            last_values: BTreeMap::new(),
        }
    }

    /// Decides a raw frame's fate without mutating anything. Pure with
    /// respect to the collector: calling it twice on the same frame gives
    /// the same answer, and discarding the result leaves no trace.
    pub fn classify(&self, raw: &Bytes) -> Ingest {
        let decoded = match decode_frame(raw.clone()) {
            Ok(d) => d,
            // Undecodable bytes: quarantine, never panic. The frame is
            // gone; the watermark mechanism treats it as lost.
            Err(_) => return Ingest::Quarantined(None),
        };
        let agent = decoded.agent_id as usize;
        if agent >= self.shards {
            // Header claims an agent we never started: quarantine.
            return Ingest::Quarantined(Some(decoded.minute));
        }
        if self
            .state
            .seen
            .get(agent)
            .is_some_and(|s| s.contains(&decoded.minute))
        {
            return Ingest::Duplicate(decoded.minute);
        }
        // A minute stamp running implausibly far *ahead* of the agent's own
        // watermark is a skewed clock. The check is per-agent (like the
        // backfill routing below), so cross-shard scheduling skew can never
        // trip it, and an agent's very first frame is always believed.
        if self
            .state
            .watermarks
            .get(agent)
            .and_then(|w| *w)
            .is_some_and(|w| decoded.minute > w + self.horizon + MAX_CLOCK_SKEW_MINUTES)
        {
            return Ingest::ClockSkewed(decoded.minute);
        }
        // A frame whose original-minute stamp lies behind this agent's own
        // watermark by more than the reorder horizon cannot be a delayed
        // live frame — it is a healed partition's backlog. The routing test
        // is per-agent (frames within one agent arrive in send order), so
        // it is independent of cross-shard thread interleaving.
        if self
            .state
            .watermarks
            .get(agent)
            .and_then(|w| *w)
            .is_some_and(|w| decoded.minute + self.horizon < w)
        {
            return Ingest::Backfill(decoded);
        }
        Ingest::Live(decoded)
    }

    /// Applies a classified frame: counters for rejected fates, store
    /// appends + watermark advance + minute finalization for live frames,
    /// staging for backfill frames.
    pub fn commit(&mut self, ingest: Ingest) {
        match ingest {
            Ingest::Quarantined(minute) => {
                self.stats.quarantined_frames += 1;
                self.store.note_quarantined_frame();
                // The frame's claimed minute attributes the quarantine to a
                // timeline window; torn-beyond-the-header frames have no
                // trustworthy minute and stay aggregate-only.
                match minute {
                    Some(m) => {
                        funnel_obs::timeline_counter_add(
                            funnel_obs::names::FRAMES_QUARANTINED,
                            m,
                            1,
                        );
                    }
                    None => funnel_obs::counter_add(funnel_obs::names::FRAMES_QUARANTINED, 1),
                }
            }
            Ingest::ClockSkewed(minute) => {
                self.stats.quarantined_frames += 1;
                self.stats.clock_skewed_frames += 1;
                self.store.note_quarantined_frame();
                funnel_obs::timeline_counter_add(funnel_obs::names::FRAMES_QUARANTINED, minute, 1);
                funnel_obs::timeline_counter_add(funnel_obs::names::FRAMES_CLOCK_SKEWED, minute, 1);
            }
            Ingest::Duplicate(minute) => {
                self.stats.duplicate_frames += 1;
                funnel_obs::timeline_counter_add(
                    funnel_obs::names::FRAMES_DUP_SUPPRESSED,
                    minute,
                    1,
                );
            }
            Ingest::Backfill(frame) => {
                if let Some(seen) = self.state.seen.get_mut(frame.agent_id as usize) {
                    seen.insert(frame.minute);
                }
                self.stats.frames += 1;
                funnel_obs::timeline_counter_add(
                    funnel_obs::names::FRAMES_INGESTED,
                    frame.minute,
                    1,
                );
                self.stats.backfilled_frames += 1;
                funnel_obs::timeline_counter_add(
                    funnel_obs::names::FRAMES_BACKFILLED,
                    frame.minute,
                    1,
                );
                self.state
                    .backfill_stage
                    .insert((frame.agent_id, frame.minute), frame.records);
            }
            Ingest::Live(frame) => {
                let agent = frame.agent_id as usize;
                if let Some(seen) = self.state.seen.get_mut(agent) {
                    seen.insert(frame.minute);
                }
                self.stats.frames += 1;
                funnel_obs::timeline_counter_add(
                    funnel_obs::names::FRAMES_INGESTED,
                    frame.minute,
                    1,
                );
                if let Some(w) = self.state.watermarks.get_mut(agent) {
                    *w = Some(w.map_or(frame.minute, |x| x.max(frame.minute)));
                }
                let entry = self.state.pending.entry(frame.minute).or_default();
                entry.0 += 1;
                for rec in &frame.records {
                    // Plausibility gate, not just finiteness: corrupted
                    // bytes can decode to a perfectly valid f64 of magnitude
                    // ~1e300, which would dominate every sum, mean, and DiD
                    // estimate downstream. No KPI this pipeline measures
                    // (counts, millisecond delays, utilization percentages)
                    // comes within orders of magnitude of the bound, even
                    // glitch-amplified.
                    if !rec.value.is_finite() {
                        // NaN/±Inf would propagate through every sum, mean,
                        // and SST window it touches; own counter so a NaN
                        // storm is distinguishable from byte corruption.
                        self.stats.invalid_records += 1;
                        self.stats.nonfinite_records += 1;
                        funnel_obs::timeline_counter_add(
                            funnel_obs::names::RECORDS_NONFINITE,
                            frame.minute,
                            1,
                        );
                        continue;
                    }
                    if rec.value.abs() > MAX_PLAUSIBLE_VALUE {
                        self.stats.invalid_records += 1;
                        continue;
                    }
                    // Counter-reset gate: a one-minute drop beyond any
                    // physically possible movement is a reset artifact.
                    // Live path only — backfilled history arrives out of
                    // order, so deltas there are meaningless.
                    if self
                        .last_values
                        .get(&rec.key)
                        .is_some_and(|prev| rec.value - prev < -MAX_COUNTER_RESET_DROP)
                    {
                        self.stats.invalid_records += 1;
                        self.stats.counter_reset_records += 1;
                        funnel_obs::timeline_counter_add(
                            funnel_obs::names::RECORDS_COUNTER_RESET,
                            frame.minute,
                            1,
                        );
                        continue;
                    }
                    self.last_values.insert(rec.key, rec.value);
                    self.stats.records += 1;
                    self.store.append(rec.key, frame.minute, rec.value);
                    if let Entity::Instance(i) = rec.key.entity {
                        if let Some(&svc) = self.instance_service.get(&i.0) {
                            entry
                                .1
                                .entry((svc, rec.key.kind))
                                .or_default()
                                .push((i.0, rec.value));
                        }
                    }
                }
                self.finalize_ready();
            }
        }
    }

    /// [`Collector::classify`] + [`Collector::commit`] in one step — the
    /// shape recovery replay uses, where the durability seam is behind us.
    /// Returns whether the frame was accepted.
    pub fn ingest(&mut self, raw: &Bytes) -> bool {
        let ingest = self.classify(raw);
        let accepted = ingest.accepted();
        self.commit(ingest);
        accepted
    }

    /// Finalize a minute once every agent has either delivered it or
    /// demonstrably moved past its reorder horizon (its own watermark is
    /// beyond minute + horizon) — exact under any thread scheduling, robust
    /// to loss, and safe under delay-induced reordering.
    fn finalize_ready(&mut self) {
        while let Some((&minute, entry)) = self.state.pending.iter().next() {
            let complete = entry.0 >= self.shards;
            let all_past = self
                .state
                .watermarks
                .iter()
                .all(|w| w.is_some_and(|x| x >= minute + self.horizon));
            if !complete && !all_past {
                break;
            }
            if let Some((_, accs)) = self.state.pending.remove(&minute) {
                self.finalize_minute(minute, accs);
            }
        }
    }

    fn finalize_minute(&mut self, minute: u64, accs: MinuteAccs) {
        for ((svc, kind), mut cells) in accs {
            if cells.is_empty() {
                continue;
            }
            // Only aggregate when every instance reported; keep partial
            // minutes around — a partition heal may still backfill the
            // missing cells.
            if cells.len() != *self.service_sizes.get(&svc).unwrap_or(&0) {
                self.state
                    .partial
                    .entry(minute)
                    .or_default()
                    .entry((svc, kind))
                    .or_default()
                    .append(&mut cells);
                continue;
            }
            cells.sort_by_key(|(id, _)| *id);
            let sum: f64 = cells.iter().map(|(_, v)| v).sum();
            let value = match kind.aggregation() {
                Aggregation::Sum => sum,
                Aggregation::Mean => sum / cells.len() as f64,
            };
            self.store
                .append(KpiKey::new(Entity::Service(svc), kind), minute, value);
            self.stats.aggregates += 1;
        }
    }

    /// End-of-stream flush: finalize every still-pending minute, merge the
    /// staged backfill frames into historical bins in deterministic
    /// (agent, minute) order, and emit the service aggregates the backfill
    /// completed. Drains the state; a checkpoint taken afterwards records a
    /// finished stream.
    pub fn finish(&mut self) {
        for (minute, (_, accs)) in std::mem::take(&mut self.state.pending) {
            self.finalize_minute(minute, accs);
        }
        // Backfill flush: healed-span frames enter historical bins in
        // (agent, minute) order — deterministic regardless of how agent
        // threads interleaved during the replay. Each record passes the
        // same plausibility gate as live ingestion, and the store's own
        // duplicate suppression (first write wins per real bin) guards
        // against re-delivery races.
        for ((_, minute), records) in std::mem::take(&mut self.state.backfill_stage) {
            for rec in records {
                if !rec.value.is_finite() || rec.value.abs() > MAX_PLAUSIBLE_VALUE {
                    self.stats.invalid_records += 1;
                    if !rec.value.is_finite() {
                        self.stats.nonfinite_records += 1;
                        funnel_obs::timeline_counter_add(
                            funnel_obs::names::RECORDS_NONFINITE,
                            minute,
                            1,
                        );
                    }
                    self.store.note_backfill_rejected();
                    funnel_obs::timeline_counter_add(
                        funnel_obs::names::BACKFILL_REJECTED,
                        minute,
                        1,
                    );
                    continue;
                }
                if self.store.backfill(rec.key, minute, rec.value) {
                    self.stats.backfilled_records += 1;
                    funnel_obs::timeline_counter_add(
                        funnel_obs::names::RECORDS_BACKFILLED,
                        minute,
                        1,
                    );
                } else {
                    self.stats.backfill_rejected_records += 1;
                    funnel_obs::timeline_counter_add(
                        funnel_obs::names::BACKFILL_REJECTED,
                        minute,
                        1,
                    );
                }
                if let Entity::Instance(i) = rec.key.entity {
                    if let Some(&svc) = self.instance_service.get(&i.0) {
                        self.state
                            .partial
                            .entry(minute)
                            .or_default()
                            .entry((svc, rec.key.kind))
                            .or_default()
                            .push((i.0, rec.value));
                    }
                }
            }
        }
        // Service aggregates the backfill completed, ascending minute then
        // (service, kind). Emitted through the backfill path too: their
        // minute is historical for the (forward-filled) aggregate series.
        for (minute, accs) in std::mem::take(&mut self.state.partial) {
            for ((svc, kind), mut cells) in accs {
                if cells.len() != *self.service_sizes.get(&svc).unwrap_or(&0) || cells.is_empty() {
                    continue;
                }
                cells.sort_by_key(|(id, _)| *id);
                let sum: f64 = cells.iter().map(|(_, v)| v).sum();
                let value = match kind.aggregation() {
                    Aggregation::Sum => sum,
                    Aggregation::Mean => sum / cells.len() as f64,
                };
                if self
                    .store
                    .backfill(KpiKey::new(Entity::Service(svc), kind), minute, value)
                {
                    self.stats.backfilled_aggregates += 1;
                }
            }
        }
    }

    /// The current working state — what a checkpoint serializes.
    pub fn state(&self) -> &CollectorState {
        &self.state
    }

    /// The metric store this collector writes into — checkpoint hooks
    /// snapshot its entries together with [`Collector::state`] so the two
    /// halves of a recovery point are captured at the same commit boundary.
    pub fn store(&self) -> &MetricStore {
        self.store
    }

    /// Collector-side counters accumulated since this collector was
    /// constructed (a resumed collector counts only its own run).
    pub fn stats(&self) -> &ReplayStats {
        &self.stats
    }

    /// Consumes the collector, yielding its state and counters.
    pub fn into_parts(self) -> (CollectorState, ReplayStats) {
        (self.state, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_frame;
    use crate::world::{SimConfig, WorldBuilder};

    fn tiny_world() -> World {
        let mut b = WorldBuilder::new(SimConfig {
            seed: 3,
            start: 0,
            duration: 30,
        });
        b.add_service("prod.tiny", 2).unwrap();
        b.build()
    }

    #[test]
    fn classify_is_pure_and_commit_matches() {
        let world = tiny_world();
        let store = MetricStore::new();
        let mut c = Collector::for_world(&world, &store, 2, 0);
        let frame = encode_frame(0, 0, &[]);
        // Classification without commit leaves no trace.
        assert!(matches!(c.classify(&frame), Ingest::Live(_)));
        assert!(matches!(c.classify(&frame), Ingest::Live(_)));
        assert_eq!(c.stats().frames, 0);
        assert!(c.ingest(&frame));
        // Second delivery of the same (agent, minute) is a duplicate.
        assert!(matches!(c.classify(&frame), Ingest::Duplicate(_)));
        assert!(!c.ingest(&frame));
        assert_eq!(c.stats().frames, 1);
        assert_eq!(c.stats().duplicate_frames, 1);
    }

    #[test]
    fn garbage_and_unknown_agents_are_quarantined() {
        let world = tiny_world();
        let store = MetricStore::new();
        let mut c = Collector::for_world(&world, &store, 2, 0);
        assert!(!c.ingest(&Bytes::from(b"nonsense".to_vec())));
        let from_unknown_agent = encode_frame(0, 99, &[]);
        assert!(!c.ingest(&from_unknown_agent));
        assert_eq!(c.stats().quarantined_frames, 2);
    }

    #[test]
    fn resumed_state_remembers_duplicates() {
        let world = tiny_world();
        let store = MetricStore::new();
        let mut c = Collector::for_world(&world, &store, 2, 0);
        let frame = encode_frame(5, 1, &[]);
        assert!(c.ingest(&frame));
        let (state, _) = c.into_parts();

        // A collector resumed from the captured state suppresses the same
        // minute — the dedup memory survived the hand-off.
        let store2 = MetricStore::new();
        let mut resumed = Collector::resume(&world, &store2, 2, 0, state);
        assert!(matches!(resumed.classify(&frame), Ingest::Duplicate(_)));
        assert!(!resumed.ingest(&frame));
    }
}
