//! Compact wire format for agent → collector measurement batches.
//!
//! Each simulated agent serializes its one-minute batch of measurements into
//! a length-prefixed binary frame before sending it to the collector,
//! mirroring the real agents that ship measurements off-box every minute
//! (§2.2). Layout (all little-endian):
//!
//! ```text
//! frame   := u64 minute, u32 agent_id, u32 count, record*
//! record  := u8 entity_tag, u32 entity_id, u8 kpi_tag, f64 value
//! ```
//!
//! `entity_tag`: 0 = server, 1 = instance, 2 = service.

use crate::kpi::{KpiKey, KpiKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use funnel_timeseries::series::MinuteBin;
use funnel_topology::impact::Entity;
use funnel_topology::model::{InstanceId, ServerId, ServiceId};

/// One decoded measurement record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireRecord {
    /// Which KPI.
    pub key: KpiKey,
    /// The measured value.
    pub value: f64,
}

/// A decoded frame: one agent's batch for one minute.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFrame {
    /// The minute the batch covers.
    pub minute: MinuteBin,
    /// The sending agent (collectors track per-agent watermarks with it).
    pub agent_id: u32,
    /// The measurements.
    pub records: Vec<WireRecord>,
}

/// Decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before the declared record count was read.
    Truncated,
    /// An unknown entity tag was encountered.
    BadEntityTag(u8),
    /// An unknown KPI tag was encountered.
    BadKpiTag(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated wire frame"),
            WireError::BadEntityTag(t) => write!(f, "unknown entity tag {t}"),
            WireError::BadKpiTag(t) => write!(f, "unknown KPI tag {t}"),
        }
    }
}

impl std::error::Error for WireError {}

fn entity_tag(e: Entity) -> (u8, u32) {
    match e {
        Entity::Server(s) => (0, s.0),
        Entity::Instance(i) => (1, i.0),
        Entity::Service(s) => (2, s.0),
    }
}

fn entity_from(tag: u8, id: u32) -> Result<Entity, WireError> {
    Ok(match tag {
        0 => Entity::Server(ServerId(id)),
        1 => Entity::Instance(InstanceId(id)),
        2 => Entity::Service(ServiceId(id)),
        t => return Err(WireError::BadEntityTag(t)),
    })
}

/// Encodes one KPI key into the wire format's 6-byte record-key layout
/// (`u8 entity_tag, u32 entity_id, u8 kpi_tag`). Checkpoint files reuse this
/// layout so a key serializes identically on the wire and on disk.
pub fn key_to_bytes(key: KpiKey) -> [u8; 6] {
    let (tag, id) = entity_tag(key.entity);
    let id = id.to_le_bytes();
    [tag, id[0], id[1], id[2], id[3], key.kind.tag()]
}

/// Decodes a 6-byte record key written by [`key_to_bytes`].
///
/// # Errors
///
/// [`WireError`] on unknown entity or KPI tags.
pub fn key_from_bytes(bytes: [u8; 6]) -> Result<KpiKey, WireError> {
    let entity = entity_from(
        bytes[0],
        u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]),
    )?;
    let kind = KpiKind::from_tag(bytes[5]).ok_or(WireError::BadKpiTag(bytes[5]))?;
    Ok(KpiKey::new(entity, kind))
}

/// Encodes one frame.
pub fn encode_frame(minute: MinuteBin, agent_id: u32, records: &[WireRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + records.len() * 14);
    buf.put_u64_le(minute);
    buf.put_u32_le(agent_id);
    buf.put_u32_le(records.len() as u32);
    for r in records {
        let (tag, id) = entity_tag(r.key.entity);
        buf.put_u8(tag);
        buf.put_u32_le(id);
        buf.put_u8(r.key.kind.tag());
        buf.put_f64_le(r.value);
    }
    buf.freeze()
}

/// Reads just the minute header from an encoded frame without decoding
/// the payload — `None` if the buffer is too short to carry one. Used by
/// observers (WAL sealing, timeline attribution) that need the frame's
/// data minute but must not pay a full decode.
pub fn peek_minute(raw: &Bytes) -> Option<MinuteBin> {
    let bytes = raw.as_ref();
    if bytes.len() < 8 {
        return None;
    }
    let mut header = [0u8; 8];
    header.copy_from_slice(&bytes[..8]);
    Some(u64::from_le_bytes(header))
}

/// Decodes one frame.
///
/// # Errors
///
/// [`WireError`] on truncation or unknown tags.
pub fn decode_frame(mut buf: Bytes) -> Result<WireFrame, WireError> {
    if buf.remaining() < 16 {
        return Err(WireError::Truncated);
    }
    let minute = buf.get_u64_le();
    let agent_id = buf.get_u32_le();
    let count = buf.get_u32_le() as usize;
    // A corrupted count must not drive allocation: cap the reserve by what
    // the remaining bytes could actually hold (14 bytes per record). The
    // loop below still walks the declared count and reports `Truncated`
    // when the bytes run out.
    let mut records = Vec::with_capacity(count.min(buf.remaining() / 14));
    for _ in 0..count {
        if buf.remaining() < 14 {
            return Err(WireError::Truncated);
        }
        let etag = buf.get_u8();
        let id = buf.get_u32_le();
        let ktag = buf.get_u8();
        let value = buf.get_f64_le();
        let entity = entity_from(etag, id)?;
        let kind = KpiKind::from_tag(ktag).ok_or(WireError::BadKpiTag(ktag))?;
        records.push(WireRecord {
            key: KpiKey::new(entity, kind),
            value,
        });
    }
    Ok(WireFrame {
        minute,
        agent_id,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WireRecord> {
        vec![
            WireRecord {
                key: KpiKey::new(Entity::Server(ServerId(3)), KpiKind::CpuUtilization),
                value: 47.25,
            },
            WireRecord {
                key: KpiKey::new(Entity::Instance(InstanceId(12)), KpiKind::PageViewCount),
                value: 1234.0,
            },
            WireRecord {
                key: KpiKey::new(Entity::Service(ServiceId(2)), KpiKind::AccessFailureCount),
                value: 0.0,
            },
        ]
    }

    #[test]
    fn key_bytes_roundtrip() {
        for r in sample_records() {
            let bytes = key_to_bytes(r.key);
            assert_eq!(key_from_bytes(bytes), Ok(r.key));
        }
        assert_eq!(
            key_from_bytes([7, 0, 0, 0, 0, 0]),
            Err(WireError::BadEntityTag(7))
        );
        assert_eq!(
            key_from_bytes([0, 0, 0, 0, 0, 200]),
            Err(WireError::BadKpiTag(200))
        );
    }

    #[test]
    fn roundtrip() {
        let recs = sample_records();
        let frame = encode_frame(777, 42, &recs);
        let decoded = decode_frame(frame).unwrap();
        assert_eq!(decoded.minute, 777);
        assert_eq!(decoded.agent_id, 42);
        assert_eq!(decoded.records, recs);
    }

    #[test]
    fn empty_frame_roundtrips() {
        let frame = encode_frame(1, 0, &[]);
        let d = decode_frame(frame).unwrap();
        assert_eq!(d.minute, 1);
        assert!(d.records.is_empty());
    }

    #[test]
    fn peek_minute_reads_header_only() {
        let frame = encode_frame(777, 42, &sample_records());
        assert_eq!(peek_minute(&frame), Some(777));
        let cut = frame.slice(0..5);
        assert_eq!(peek_minute(&cut), None);
        // A frame that will fail full decode still yields its minute.
        let torn = frame.slice(0..10);
        assert_eq!(peek_minute(&torn), Some(777));
    }

    #[test]
    fn truncated_header_rejected() {
        let frame = encode_frame(777, 0, &sample_records());
        let cut = frame.slice(0..10);
        assert_eq!(decode_frame(cut), Err(WireError::Truncated));
    }

    #[test]
    fn truncated_record_rejected() {
        let frame = encode_frame(777, 0, &sample_records());
        let cut = frame.slice(0..frame.len() - 3);
        assert_eq!(decode_frame(cut), Err(WireError::Truncated));
    }

    #[test]
    fn corrupt_count_is_truncation_not_allocation() {
        // A frame whose count field claims u32::MAX records must fail fast
        // with `Truncated` (and must not reserve gigabytes first).
        let mut buf = BytesMut::new();
        buf.put_u64_le(5);
        buf.put_u32_le(0);
        buf.put_u32_le(u32::MAX);
        buf.put_u8(0);
        buf.put_u32_le(1);
        buf.put_u8(0);
        buf.put_f64_le(1.0);
        assert_eq!(decode_frame(buf.freeze()), Err(WireError::Truncated));
    }

    #[test]
    fn bad_tags_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(0);
        buf.put_u32_le(0);
        buf.put_u32_le(1);
        buf.put_u8(9); // bad entity tag
        buf.put_u32_le(0);
        buf.put_u8(0);
        buf.put_f64_le(0.0);
        assert_eq!(decode_frame(buf.freeze()), Err(WireError::BadEntityTag(9)));

        let mut buf = BytesMut::new();
        buf.put_u64_le(0);
        buf.put_u32_le(0);
        buf.put_u32_le(1);
        buf.put_u8(0);
        buf.put_u32_le(0);
        buf.put_u8(99); // bad kpi tag
        buf.put_f64_le(0.0);
        assert_eq!(decode_frame(buf.freeze()), Err(WireError::BadKpiTag(99)));
    }
}
