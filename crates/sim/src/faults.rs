//! Deterministic telemetry fault injection.
//!
//! Production telemetry pipelines degrade in well-known ways: agents reboot
//! and lose minutes, the transport delays/reorders/duplicates frames, bytes
//! get truncated or flipped in flight, sensors glitch, and slow consumers
//! fall behind the subscription feed. The paper's FUNNEL runs on exactly
//! such a substrate ("there might exist some KPIs of dubious quality",
//! §2.2), so a faithful reproduction must be assessed under those faults —
//! reproducibly.
//!
//! A [`FaultPlan`] declares fault *rates*; a [`FaultSchedule`] derives from
//! it every concrete per-frame and per-record decision as a pure function
//! of `(seed, shard, minute[, record])` via splitmix64 hashing. No RNG
//! state is threaded anywhere, so two runs with the same plan make
//! bit-identical decisions regardless of thread scheduling, and a schedule
//! can be queried out of order or from several threads.

use serde::{Deserialize, Serialize};

/// Which slice of the agent fleet a [`PartitionWindow`] darkens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionScope {
    /// One agent shard loses its uplink.
    Shard(usize),
    /// Every shard with `shard % zones == zone` loses its uplink — a
    /// deterministic stand-in for an availability zone going dark.
    Zone {
        /// Which zone is dark.
        zone: usize,
        /// How many zones the fleet is striped across.
        zones: usize,
    },
    /// The whole collector is unreachable: every shard goes dark.
    Collector,
}

impl PartitionScope {
    /// Whether `shard` is inside this scope.
    pub fn covers(&self, shard: usize) -> bool {
        match *self {
            PartitionScope::Shard(s) => shard == s,
            PartitionScope::Zone { zone, zones } => zones > 0 && shard % zones == zone,
            PartitionScope::Collector => true,
        }
    }
}

/// What happens to the frames an agent generates while partitioned, once
/// connectivity returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealMode {
    /// Agents buffer nothing: every frame generated during the window is
    /// lost forever (agent reboots, ring-buffer-less senders).
    SilentDrop,
    /// Agents buffer up to `queue` frames (oldest evicted beyond that) and
    /// flush the entire backlog the minute connectivity returns — the
    /// thundering-herd heal that floods the collector.
    BufferedBurst {
        /// Agent-side queue bound, in frames.
        queue: usize,
    },
    /// Agents buffer (bounded by `queue`) and, after heal, drain at most
    /// `per_minute` backlog frames per minute alongside the live frame —
    /// the rate-limited catch-up a well-behaved agent performs.
    StaggeredCatchUp {
        /// Agent-side queue bound, in frames.
        queue: usize,
        /// Backlog frames released per post-heal minute.
        per_minute: usize,
    },
}

impl HealMode {
    /// The agent-side queue bound (`usize::MAX` when nothing is buffered —
    /// silent drop never enqueues, so the bound is moot).
    pub fn queue_bound(&self) -> usize {
        match *self {
            HealMode::SilentDrop => 0,
            HealMode::BufferedBurst { queue } => queue,
            HealMode::StaggeredCatchUp { queue, .. } => queue,
        }
    }
}

/// One correlated outage: a contiguous span of minutes during which every
/// shard in `scope` cannot reach the collector, plus the heal behaviour
/// when the span ends. Unlike the independent per-frame channels, a
/// partition takes out *every* frame of the scoped shards for the whole
/// window — the harshest realistic telemetry failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// Which shards go dark.
    pub scope: PartitionScope,
    /// First dark minute (absolute).
    pub start: u64,
    /// Length of the dark span in minutes; the window covers
    /// `[start, start + duration)`.
    pub duration: u64,
    /// What happens to the buffered span on heal.
    pub heal: HealMode,
}

impl PartitionWindow {
    /// Whether `(shard, minute)` is inside the dark span.
    pub fn covers(&self, shard: usize, minute: u64) -> bool {
        self.scope.covers(shard)
            && minute >= self.start
            && minute < self.start.saturating_add(self.duration)
    }

    /// First minute after the dark span (when buffered heals begin).
    pub fn heal_minute(&self) -> u64 {
        self.start.saturating_add(self.duration)
    }

    /// Derives a window whose start and duration are seeded pseudorandomly
    /// inside `[span_start, span_start + span_len)`: start is uniform over
    /// the span (leaving room for the duration), duration uniform in
    /// `[min_duration, max_duration]`. Same seed ⇒ same window, so a
    /// sweep can scatter outages without hand-placing them.
    pub fn seeded(
        seed: u64,
        scope: PartitionScope,
        heal: HealMode,
        span_start: u64,
        span_len: u64,
        min_duration: u64,
        max_duration: u64,
    ) -> Self {
        let lo = min_duration.max(1);
        let hi = max_duration.max(lo);
        let h = splitmix(seed ^ 0x9A27_71E5_B6C0_4D13);
        let duration = lo + h % (hi - lo + 1);
        let slack = span_len.saturating_sub(duration);
        let start = span_start + if slack > 0 { splitmix(h) % slack } else { 0 };
        Self {
            scope,
            start,
            duration,
            heal,
        }
    }
}

/// Declarative fault rates for one replay. All fields default to zero /
/// disabled, so `FaultPlan::default()` (= [`FaultPlan::none`]) reproduces
/// the clean path exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every fault decision; distinct seeds fault different
    /// frames at the same rates.
    #[serde(default)]
    pub seed: u64,
    /// Probability (per agent frame) that the frame is silently dropped
    /// before reaching the collector.
    #[serde(default)]
    pub drop_frame_prob: f64,
    /// Probability (per surviving frame) that delivery is delayed.
    #[serde(default)]
    pub delay_prob: f64,
    /// Maximum delay in minutes for delayed frames (uniform in
    /// `1..=max_delay_minutes`). Delayed frames arrive out of order
    /// relative to the agent's later minutes.
    #[serde(default)]
    pub max_delay_minutes: u64,
    /// Probability (per surviving frame) that the transport delivers one
    /// extra copy.
    #[serde(default)]
    pub duplicate_prob: f64,
    /// Probability (per surviving frame) that the frame is truncated at a
    /// pseudorandom byte offset (such frames never decode).
    #[serde(default)]
    pub truncate_prob: f64,
    /// Probability (per surviving frame) that one payload byte is
    /// corrupted (XORed with a nonzero mask). Corruption hits the record
    /// region, which either breaks decoding (quarantine) or silently
    /// alters a record.
    #[serde(default)]
    pub corrupt_prob: f64,
    /// Probability (per record) that the sensor glitches, scaling the
    /// measured value by [`FaultPlan::glitch_factor`].
    #[serde(default)]
    pub glitch_prob: f64,
    /// Multiplier applied to glitched measurements (e.g. `100.0` for the
    /// classic stuck-exponent spike). Ignored while `glitch_prob` is zero.
    #[serde(default)]
    pub glitch_factor: f64,
    /// When set, caps the channel capacity of every store subscription
    /// created while the plan is active — a deterministic stand-in for a
    /// consumer that cannot keep up (the store drops, never blocks).
    #[serde(default)]
    pub subscriber_capacity: Option<usize>,
    /// Correlated outage windows (shard / zone / whole-collector scope).
    /// Orthogonal to the per-frame channels above: a frame is taken by a
    /// partition before any per-frame fate is rolled.
    #[serde(default)]
    pub partitions: Vec<PartitionWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            drop_frame_prob: 0.0,
            delay_prob: 0.0,
            max_delay_minutes: 0,
            duplicate_prob: 0.0,
            truncate_prob: 0.0,
            corrupt_prob: 0.0,
            glitch_prob: 0.0,
            glitch_factor: 0.0,
            subscriber_capacity: None,
            partitions: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// No faults: the replay is byte-for-byte the clean path.
    pub fn none() -> Self {
        Self::default()
    }

    /// A typical lossy-network profile: `rate` of frames dropped, half of
    /// `rate` corrupted, with everything else clean.
    pub fn lossy(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            drop_frame_prob: rate,
            corrupt_prob: rate * 0.5,
            ..Self::default()
        }
    }

    /// Adds one correlated outage window (builder-style).
    pub fn with_partition(mut self, window: PartitionWindow) -> Self {
        self.partitions.push(window);
        self
    }

    /// Whether every fault channel is disabled.
    pub fn is_none(&self) -> bool {
        self.drop_frame_prob <= 0.0
            && self.delay_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.truncate_prob <= 0.0
            && self.corrupt_prob <= 0.0
            && self.glitch_prob <= 0.0
            && self.subscriber_capacity.is_none()
            && self.partitions.is_empty()
    }

    /// Freezes the plan into a queryable schedule.
    pub fn schedule(&self) -> FaultSchedule {
        FaultSchedule { plan: self.clone() }
    }
}

/// What the transport does to one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameFate {
    /// Frame never reaches the collector.
    pub dropped: bool,
    /// Minutes of transit delay (0 = on time).
    pub delay_minutes: u64,
    /// Extra copies delivered (0 = exactly once).
    pub duplicates: u32,
    /// Truncate to this fraction of the encoded length, in `[0, 1)`.
    pub truncate_frac: Option<f64>,
    /// Corrupt one payload byte: (position fraction within the payload
    /// region, nonzero XOR mask).
    pub corrupt: Option<(f64, u8)>,
}

impl FrameFate {
    /// The fate of a frame on a fault-free transport.
    pub fn clean() -> Self {
        Self {
            dropped: false,
            delay_minutes: 0,
            duplicates: 0,
            truncate_frac: None,
            corrupt: None,
        }
    }
}

/// A frozen [`FaultPlan`]: answers "what happens to frame (shard, minute)"
/// and "does record `i` glitch" as pure functions.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    plan: FaultPlan,
}

pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultSchedule {
    /// The plan this schedule was frozen from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Independent hash stream per (fault channel, shard, minute).
    fn hash(&self, channel: u64, shard: usize, minute: u64) -> u64 {
        splitmix(
            self.plan.seed
                ^ splitmix(channel)
                ^ splitmix(shard as u64 ^ 0xA5A5_5A5A)
                ^ splitmix(minute),
        )
    }

    /// The transport's decisions for the frame agent `shard` sends for
    /// `minute`.
    pub fn frame_fate(&self, shard: usize, minute: u64) -> FrameFate {
        let mut fate = FrameFate::clean();
        let p = &self.plan;
        if p.drop_frame_prob > 0.0 && unit(self.hash(1, shard, minute)) < p.drop_frame_prob {
            fate.dropped = true;
            return fate;
        }
        if p.delay_prob > 0.0 && p.max_delay_minutes > 0 {
            let h = self.hash(2, shard, minute);
            if unit(h) < p.delay_prob {
                fate.delay_minutes = 1 + splitmix(h) % p.max_delay_minutes;
            }
        }
        if p.duplicate_prob > 0.0 && unit(self.hash(3, shard, minute)) < p.duplicate_prob {
            fate.duplicates = 1;
        }
        if p.truncate_prob > 0.0 {
            let h = self.hash(4, shard, minute);
            if unit(h) < p.truncate_prob {
                fate.truncate_frac = Some(unit(splitmix(h)));
            }
        }
        if p.corrupt_prob > 0.0 {
            let h = self.hash(5, shard, minute);
            if unit(h) < p.corrupt_prob {
                let pos = unit(splitmix(h));
                let mask = (splitmix(h ^ 0xC0DE) % 255) as u8 + 1; // never 0
                fate.corrupt = Some((pos, mask));
            }
        }
        fate
    }

    /// Sensor-glitch multiplier for record `index` of frame
    /// (`shard`, `minute`); `None` means the sensor read true.
    pub fn glitch(&self, shard: usize, minute: u64, index: usize) -> Option<f64> {
        let p = &self.plan;
        if p.glitch_prob <= 0.0 {
            return None;
        }
        let h = splitmix(self.hash(6, shard, minute) ^ splitmix(index as u64));
        (unit(h) < p.glitch_prob).then_some(p.glitch_factor)
    }

    /// The partition window covering `(shard, minute)`, if any. Windows are
    /// checked in declaration order; the first match wins (overlapping
    /// windows are legal but the earlier declaration governs heal mode).
    pub fn partition_at(&self, shard: usize, minute: u64) -> Option<&PartitionWindow> {
        self.plan
            .partitions
            .iter()
            .find(|w| w.covers(shard, minute))
    }

    /// Whether `shard` is dark at `minute` under any declared partition.
    pub fn is_partitioned(&self, shard: usize, minute: u64) -> bool {
        self.partition_at(shard, minute).is_some()
    }

    /// The reorder horizon the collector must respect: a frame for minute
    /// `m` can arrive as late as the sending agent's minute
    /// `m + horizon`, so per-agent watermarks only prove loss once they
    /// pass `m + horizon`.
    pub fn reorder_horizon(&self) -> u64 {
        if self.plan.delay_prob > 0.0 {
            self.plan.max_delay_minutes
        } else {
            0
        }
    }

    /// Applies [`FrameFate::truncate_frac`] / [`FrameFate::corrupt`] to an
    /// encoded frame, returning the (possibly mangled) bytes. Corruption is
    /// confined to offsets `>= 12` (record count + records): the minute and
    /// agent-id header stays intact so a mangled frame cannot poison the
    /// collector's watermark bookkeeping — mirroring transports that
    /// checksum routing headers but not payloads.
    pub fn mangle(&self, fate: &FrameFate, bytes: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        if let Some((pos_frac, mask)) = fate.corrupt {
            if out.len() > 12 {
                let span = out.len() - 12;
                let idx = 12 + ((pos_frac * span as f64) as usize).min(span - 1);
                if let Some(slot) = out.get_mut(idx) {
                    *slot ^= mask;
                }
            }
        }
        if let Some(frac) = fate.truncate_frac {
            let keep = ((frac * out.len() as f64) as usize).min(out.len().saturating_sub(1));
            out.truncate(keep);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_frame_prob: 0.1,
            delay_prob: 0.2,
            max_delay_minutes: 3,
            duplicate_prob: 0.1,
            truncate_prob: 0.05,
            corrupt_prob: 0.05,
            glitch_prob: 0.01,
            glitch_factor: 100.0,
            subscriber_capacity: Some(8),
            partitions: vec![PartitionWindow {
                scope: PartitionScope::Zone { zone: 1, zones: 2 },
                start: 100,
                duration: 30,
                heal: HealMode::BufferedBurst { queue: 64 },
            }],
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = busy_plan(7).schedule();
        let b = busy_plan(7).schedule();
        for shard in 0..4 {
            for minute in 0..500 {
                assert_eq!(a.frame_fate(shard, minute), b.frame_fate(shard, minute));
                for idx in 0..10 {
                    assert_eq!(a.glitch(shard, minute, idx), b.glitch(shard, minute, idx));
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = busy_plan(1).schedule();
        let b = busy_plan(2).schedule();
        let fates_a: Vec<_> = (0..300).map(|m| a.frame_fate(0, m)).collect();
        let fates_b: Vec<_> = (0..300).map(|m| b.frame_fate(0, m)).collect();
        assert_ne!(fates_a, fates_b);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let s = busy_plan(42).schedule();
        let n = 4000u64;
        let mut dropped = 0;
        let mut delayed = 0;
        let mut duplicated = 0;
        for m in 0..n {
            let f = s.frame_fate(0, m);
            dropped += usize::from(f.dropped);
            delayed += usize::from(f.delay_minutes > 0);
            duplicated += usize::from(f.duplicates > 0);
            if f.delay_minutes > 0 {
                assert!((1..=3).contains(&f.delay_minutes));
            }
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!(
            (0.07..0.13).contains(&frac(dropped)),
            "drop {}",
            frac(dropped)
        );
        // Delay/duplicate are evaluated on surviving frames only here, so
        // allow generous bands around the nominal 0.2 / 0.1.
        assert!(
            (0.14..0.26).contains(&frac(delayed)),
            "delay {}",
            frac(delayed)
        );
        assert!(
            (0.06..0.14).contains(&frac(duplicated)),
            "dup {}",
            frac(duplicated)
        );
    }

    #[test]
    fn none_plan_is_clean_everywhere() {
        let s = FaultPlan::none().schedule();
        assert!(s.plan().is_none());
        assert_eq!(s.reorder_horizon(), 0);
        for m in 0..200 {
            assert_eq!(s.frame_fate(3, m), FrameFate::clean());
            assert_eq!(s.glitch(3, m, 0), None);
        }
    }

    #[test]
    fn mangle_truncates_and_corrupts() {
        let s = busy_plan(3).schedule();
        let bytes: Vec<u8> = (0..100).collect();

        let trunc = FrameFate {
            truncate_frac: Some(0.5),
            ..FrameFate::clean()
        };
        let out = s.mangle(&trunc, &bytes);
        assert_eq!(out.len(), 50);
        assert_eq!(&out[..], &bytes[..50]);

        let corrupt = FrameFate {
            corrupt: Some((0.0, 0xFF)),
            ..FrameFate::clean()
        };
        let out = s.mangle(&corrupt, &bytes);
        assert_eq!(out.len(), bytes.len());
        // Header (first 12 bytes) untouched.
        assert_eq!(&out[..12], &bytes[..12]);
        let flipped: Vec<usize> = (0..out.len()).filter(|&i| out[i] != bytes[i]).collect();
        assert_eq!(flipped.len(), 1);
        assert!(flipped[0] >= 12);

        let clean = s.mangle(&FrameFate::clean(), &bytes);
        assert_eq!(clean, bytes);
    }

    #[test]
    fn partition_scopes_cover_expected_shards() {
        assert!(PartitionScope::Shard(2).covers(2));
        assert!(!PartitionScope::Shard(2).covers(3));
        let zone = PartitionScope::Zone { zone: 1, zones: 2 };
        assert!(zone.covers(1) && zone.covers(3) && zone.covers(5));
        assert!(!zone.covers(0) && !zone.covers(4));
        assert!(!PartitionScope::Zone { zone: 0, zones: 0 }.covers(0));
        for shard in 0..8 {
            assert!(PartitionScope::Collector.covers(shard));
        }
    }

    #[test]
    fn partition_window_covers_its_span_only() {
        let w = PartitionWindow {
            scope: PartitionScope::Shard(1),
            start: 50,
            duration: 10,
            heal: HealMode::SilentDrop,
        };
        assert!(!w.covers(1, 49));
        assert!(w.covers(1, 50));
        assert!(w.covers(1, 59));
        assert!(!w.covers(1, 60));
        assert!(!w.covers(0, 55));
        assert_eq!(w.heal_minute(), 60);

        let s = FaultPlan {
            partitions: vec![w],
            ..FaultPlan::none()
        }
        .schedule();
        assert!(s.is_partitioned(1, 55));
        assert!(!s.is_partitioned(0, 55));
        assert!(!s.is_partitioned(1, 60));
        assert_eq!(s.partition_at(1, 55), Some(&w));
    }

    #[test]
    fn seeded_window_is_deterministic_and_in_span() {
        let mk = |seed| {
            PartitionWindow::seeded(
                seed,
                PartitionScope::Collector,
                HealMode::SilentDrop,
                1000,
                500,
                15,
                60,
            )
        };
        let a = mk(9);
        assert_eq!(a, mk(9));
        assert_ne!(a, mk(10));
        for seed in 0..50 {
            let w = mk(seed);
            assert!((15..=60).contains(&w.duration), "duration {}", w.duration);
            assert!(w.start >= 1000);
            assert!(w.heal_minute() <= 1500);
        }
    }

    #[test]
    fn partitions_alone_disable_is_none() {
        let plan = FaultPlan::none().with_partition(PartitionWindow {
            scope: PartitionScope::Collector,
            start: 0,
            duration: 5,
            heal: HealMode::SilentDrop,
        });
        assert!(!plan.is_none());
        assert_eq!(plan.schedule().frame_fate(0, 0), FrameFate::clean());
    }

    #[test]
    fn plan_serde_round_trips() {
        let plan = busy_plan(99);
        let json = serde_json::to_string_pretty(&plan).unwrap();
        let again: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, again);
        // Sparse JSON fills defaults.
        let sparse: FaultPlan =
            serde_json::from_str(r#"{"seed": 5, "drop_frame_prob": 0.25}"#).unwrap();
        assert_eq!(sparse.seed, 5);
        assert_eq!(sparse.drop_frame_prob, 0.25);
        assert_eq!(sparse.max_delay_minutes, 0);
        assert_eq!(sparse.subscriber_capacity, None);
    }
}
