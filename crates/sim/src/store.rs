//! The central metric store with a subscription API.
//!
//! The paper's substrate is "a centralized Hadoop-based database … \[that\]
//! provides a subscription tool for other systems, such as FUNNEL, to
//! periodically receive the subscribed measurements" (§2.2). This in-memory
//! reproduction keeps one dense [`TimeSeries`] per KPI key behind a
//! read–write lock and fans out live appends to subscribers over bounded
//! crossbeam channels — the same push-within-a-second contract FUNNEL's
//! online pipeline consumes.
//!
//! Degradation is first-class: the store records *which* minutes carried a
//! real measurement (a [`CoverageMask`] per key — the dense series itself
//! forward-fills gaps and cannot tell a fill from a measurement), counts
//! per-subscription drops when a consumer lags, and exposes the whole
//! bookkeeping as a [`StoreStats`] snapshot.

use crate::kpi::KpiKey;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use funnel_timeseries::mask::CoverageMask;
use funnel_timeseries::series::{MinuteBin, TimeSeries};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One live measurement pushed to subscribers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Which KPI.
    pub key: KpiKey,
    /// The minute the measurement covers.
    pub minute: MinuteBin,
    /// The measured value.
    pub value: f64,
}

/// Counters describing the store's delivery health. All counters are
/// monotonic over the store's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Measurements successfully handed to a subscriber channel.
    pub published: u64,
    /// Measurements dropped because a subscriber's channel was full
    /// (summed over all subscriptions; per-subscription counts live on
    /// [`Subscription::dropped`]).
    pub dropped: u64,
    /// Subscribers reaped after their receiver was dropped.
    pub reaped_subscribers: u64,
    /// Undecodable wire frames the ingestion path quarantined (reported by
    /// the collector via [`MetricStore::note_quarantined_frame`]).
    pub quarantined_frames: u64,
    /// Historical bins filled in after a healed partition
    /// ([`MetricStore::backfill`] accepted the late measurement).
    pub backfilled: u64,
    /// Late measurements refused by [`MetricStore::backfill`]: the bin
    /// already held a real measurement (duplicate suppression), the minute
    /// predates the series anchor, or the collector's plausibility gate
    /// rejected the record ([`MetricStore::note_backfill_rejected`]).
    pub backfill_rejected: u64,
}

/// A live subscription handle; drop it to unsubscribe.
#[derive(Debug)]
pub struct Subscription {
    id: u64,
    receiver: Receiver<Measurement>,
    drops: Arc<AtomicU64>,
}

impl Subscription {
    /// The receiving end of the measurement stream.
    pub fn receiver(&self) -> &Receiver<Measurement> {
        &self.receiver
    }

    /// Blocking receive of the next measurement (None when the store shuts
    /// down or this subscription lags so far it was dropped).
    pub fn recv(&self) -> Option<Measurement> {
        self.receiver.recv().ok()
    }

    /// How many measurements the store dropped for *this* subscription
    /// because its channel was full.
    pub fn dropped(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }
}

struct Subscriber {
    id: u64,
    filter: Option<Vec<KpiKey>>,
    sender: Sender<Measurement>,
    drops: Arc<AtomicU64>,
}

/// The in-memory metric store.
#[derive(Default)]
pub struct MetricStore {
    // BTreeMap, not HashMap: `keys()` and any future iteration must be
    // deterministic — report and aggregation order reaches output bytes.
    series: RwLock<BTreeMap<KpiKey, TimeSeries>>,
    masks: RwLock<BTreeMap<KpiKey, CoverageMask>>,
    subscribers: RwLock<Vec<Subscriber>>,
    next_sub: AtomicU64,
    published: AtomicU64,
    dropped: AtomicU64,
    reaped: AtomicU64,
    quarantined: AtomicU64,
    backfilled: AtomicU64,
    backfill_rejected: AtomicU64,
    /// 0 = uncapped; otherwise every new subscription's channel capacity is
    /// clamped to this (fault injection for slow consumers).
    max_sub_capacity: AtomicUsize,
}

impl std::fmt::Debug for MetricStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricStore")
            .field("keys", &self.series.read().len())
            .field("subscribers", &self.subscribers.read().len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl MetricStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared-ownership constructor (the usual deployment: one store, many
    /// agent/collector/pipeline threads).
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Replaces the entire series for `key` (used by batch materialization).
    /// Every minute of the series counts as measured.
    pub fn insert(&self, key: KpiKey, series: TimeSeries) {
        let mask = CoverageMask::all_present(series.start(), series.len());
        self.series.write().insert(key, series);
        self.masks.write().insert(key, mask);
    }

    /// Appends one live measurement, growing the series (gaps are filled by
    /// repeating the last value, matching the upstream interpolation the
    /// paper's agents perform), and pushes it to matching subscribers. Only
    /// `minute` itself is marked as measured in the key's coverage mask —
    /// the fill minutes stay visibly synthetic.
    pub fn append(&self, key: KpiKey, minute: MinuteBin, value: f64) {
        {
            let mut map = self.series.write();
            let series = map.entry(key).or_insert_with(|| TimeSeries::empty(minute));
            if series.is_empty() {
                // Re-anchor an empty placeholder at the first real minute.
                *series = TimeSeries::empty(minute);
            }
            let mut end = series.end();
            if minute < end {
                // Late measurement for an already-filled minute: ignore
                // (first write wins, as in the real store).
                return;
            }
            let last = series.values().last().copied().unwrap_or(value);
            while end < minute {
                series.push(last);
                end += 1;
            }
            series.push(value);
        }
        {
            let mut masks = self.masks.write();
            let mask = masks
                .entry(key)
                .or_insert_with(|| CoverageMask::new(minute));
            mask.rebase(minute);
            mask.mark(minute);
        }
        self.publish(Measurement { key, minute, value });
    }

    /// Accepts a *late* measurement for a historical bin — the collector's
    /// backfill path after a network partition heals. The write is accepted
    /// iff the bin does not already hold a real measurement (first write
    /// still wins; forward-fills do not count as writes) and the minute is
    /// not before the series anchor. On acceptance the bin — and any
    /// forward-filled bins after it up to the next real measurement — takes
    /// the late value, the coverage mask gains the minute, and the
    /// measurement is published to subscribers through the same accounted
    /// path as live appends, so a heal burst that overruns a subscriber
    /// channel increments [`Subscription::dropped`] and
    /// [`StoreStats::dropped`] instead of silently truncating.
    ///
    /// Returns whether the measurement was accepted.
    pub fn backfill(&self, key: KpiKey, minute: MinuteBin, value: f64) -> bool {
        {
            // Lock order matches `append`: series before masks. Both are
            // held across the write so readers never observe a backfilled
            // series whose mask still reports the bin as missing.
            let mut map = self.series.write();
            let mut masks = self.masks.write();
            let series = map.entry(key).or_insert_with(|| TimeSeries::empty(minute));
            if series.is_empty() {
                *series = TimeSeries::empty(minute);
            }
            let mask = masks
                .entry(key)
                .or_insert_with(|| CoverageMask::new(minute));
            mask.rebase(minute);
            if minute >= series.end() {
                // Beyond the frontier: behaves exactly like a live append.
                let last = series.values().last().copied().unwrap_or(value);
                let mut end = series.end();
                while end < minute {
                    series.push(last);
                    end += 1;
                }
                series.push(value);
            } else {
                if minute < series.start() || mask.is_present(minute) {
                    self.backfill_rejected.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                series.set(minute, value);
                // Bins after this one that were forward-filled from the
                // pre-gap value now re-fill from the recovered measurement,
                // up to the next real measurement.
                let mut m = minute + 1;
                while m < series.end() && !mask.is_present(m) {
                    series.set(m, value);
                    m += 1;
                }
            }
            mask.mark(minute);
            self.backfilled.fetch_add(1, Ordering::Relaxed);
        }
        self.publish(Measurement { key, minute, value });
        true
    }

    /// Records one late measurement refused before reaching
    /// [`MetricStore::backfill`] (e.g. the collector's plausibility gate).
    pub fn note_backfill_rejected(&self) {
        self.backfill_rejected.fetch_add(1, Ordering::Relaxed);
    }

    fn publish(&self, m: Measurement) {
        let mut dead = Vec::new();
        {
            let subs = self.subscribers.read();
            for s in subs.iter() {
                let wants = s.filter.as_ref().is_none_or(|f| f.contains(&m.key));
                if !wants {
                    continue;
                }
                match s.sender.try_send(m) {
                    Ok(()) => {
                        self.published.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full(_)) => {
                        // Lagging subscriber: drop the measurement for it
                        // rather than blocking ingestion (the store favours
                        // liveness; FUNNEL re-reads history on demand).
                        s.drops.fetch_add(1, Ordering::Relaxed);
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Disconnected(_)) => dead.push(s.id),
                }
            }
        }
        if !dead.is_empty() {
            self.reaped.fetch_add(dead.len() as u64, Ordering::Relaxed);
            self.subscribers.write().retain(|s| !dead.contains(&s.id));
        }
    }

    /// Subscribes to live measurements; `filter = None` means everything.
    /// The channel holds up to `capacity` undelivered measurements (clamped
    /// by [`MetricStore::set_subscription_capacity_limit`] when one is set).
    pub fn subscribe(&self, filter: Option<Vec<KpiKey>>, capacity: usize) -> Subscription {
        let limit = self.max_sub_capacity.load(Ordering::Relaxed);
        let mut cap = capacity.max(1);
        if limit > 0 {
            cap = cap.min(limit);
        }
        let (tx, rx) = bounded(cap);
        let id = self.next_sub.fetch_add(1, Ordering::Relaxed);
        let drops = Arc::new(AtomicU64::new(0));
        self.subscribers.write().push(Subscriber {
            id,
            filter,
            sender: tx,
            drops: Arc::clone(&drops),
        });
        Subscription {
            id,
            receiver: rx,
            drops,
        }
    }

    /// Caps the channel capacity of subscriptions created from now on
    /// (`None` lifts the cap). Fault injection for consumers that cannot
    /// keep up: with a tiny cap the store drops instead of blocking, and
    /// the per-subscription drop counters record exactly how much was lost.
    pub fn set_subscription_capacity_limit(&self, limit: Option<usize>) {
        self.max_sub_capacity
            .store(limit.unwrap_or(0), Ordering::Relaxed);
    }

    /// Records one quarantined (undecodable) ingestion frame. Called by the
    /// collector so operators see transport corruption in [`StoreStats`].
    pub fn note_quarantined_frame(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of the delivery counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            published: self.published.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            reaped_subscribers: self.reaped.load(Ordering::Relaxed),
            quarantined_frames: self.quarantined.load(Ordering::Relaxed),
            backfilled: self.backfilled.load(Ordering::Relaxed),
            backfill_rejected: self.backfill_rejected.load(Ordering::Relaxed),
        }
    }

    /// Cancels a subscription explicitly (dropping the [`Subscription`]
    /// also works — the dead channel is reaped on the next publish).
    pub fn unsubscribe(&self, sub: &Subscription) {
        self.subscribers.write().retain(|s| s.id != sub.id);
    }

    /// Closes every live subscription: all receivers see end-of-stream
    /// after draining. Call when ingestion is finished (end of a replay,
    /// shutdown) so consumers holding their own `Arc<MetricStore>` can
    /// terminate instead of blocking on a feed that will never resume.
    pub fn close_subscriptions(&self) {
        self.subscribers.write().clear();
    }

    /// An immutable point-in-time view of every series and coverage mask —
    /// the read handle the parallel assessment engine fans out over.
    ///
    /// The snapshot pays one copy of the store's contents up front; after
    /// that every accessor is lock-free, so N assessment workers reading
    /// the same snapshot never contend with each other or with live
    /// ingestion. Cloning a [`StoreSnapshot`] is O(1) (the maps sit behind
    /// `Arc`s). Both locks are taken together, in the same order as
    /// [`MetricStore::backfill`], so a snapshot never observes a backfilled
    /// series whose mask still reports the bin as missing.
    ///
    /// # Example
    ///
    /// ```
    /// use funnel_sim::kpi::{KpiKey, KpiKind};
    /// use funnel_sim::store::MetricStore;
    /// use funnel_topology::impact::Entity;
    /// use funnel_topology::model::ServerId;
    ///
    /// let key = KpiKey::new(Entity::Server(ServerId(0)), KpiKind::CpuUtilization);
    /// let store = MetricStore::new();
    /// store.append(key, 0, 1.0);
    /// let snap = store.snapshot();
    /// store.append(key, 1, 2.0); // lands in the store, not the snapshot
    /// assert_eq!(snap.get(&key).unwrap().len(), 1);
    /// assert_eq!(store.get(&key).unwrap().len(), 2);
    /// ```
    pub fn snapshot(&self) -> StoreSnapshot {
        let series = self.series.read();
        let masks = self.masks.read();
        StoreSnapshot {
            series: Arc::new(series.clone()),
            masks: Arc::new(masks.clone()),
        }
    }

    /// A full copy of the series for `key`.
    pub fn get(&self, key: &KpiKey) -> Option<TimeSeries> {
        self.series.read().get(key).cloned()
    }

    /// A copy of the coverage mask for `key`: which minutes hold real
    /// measurements rather than forward-fills.
    pub fn mask(&self, key: &KpiKey) -> Option<CoverageMask> {
        self.masks.read().get(key).cloned()
    }

    /// Fraction of `[from, to)` that holds real measurements for `key`
    /// (0 when the key is unknown).
    pub fn coverage(&self, key: &KpiKey, from: MinuteBin, to: MinuteBin) -> f64 {
        self.masks
            .read()
            .get(key)
            .map(|m| m.coverage(from, to))
            .unwrap_or(0.0)
    }

    /// The values of `key` over `[from, to)` (clamped), if the key exists.
    pub fn range(&self, key: &KpiKey, from: MinuteBin, to: MinuteBin) -> Option<Vec<f64>> {
        self.series
            .read()
            .get(key)
            .map(|s| s.slice(from, to).to_vec())
    }

    /// Number of keys held.
    pub fn len(&self) -> usize {
        self.series.read().len()
    }

    /// Whether the store holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.read().is_empty()
    }

    /// All keys currently held, in sorted (deterministic) order.
    pub fn keys(&self) -> Vec<KpiKey> {
        self.series.read().keys().copied().collect()
    }

    /// Deterministic export of every key's series and coverage mask, sorted
    /// by key — the store half of a recovery checkpoint. Keys without an
    /// explicit mask (inserted via batch materialization before the mask map
    /// learned about them) export an empty mask anchored at the series
    /// start, matching what [`MetricStore::coverage`] would report.
    pub fn export_entries(&self) -> Vec<(KpiKey, TimeSeries, CoverageMask)> {
        let series = self.series.read();
        let masks = self.masks.read();
        series
            .iter()
            .map(|(key, s)| {
                let mask = masks
                    .get(key)
                    .cloned()
                    .unwrap_or_else(|| CoverageMask::new(s.start()));
                (*key, s.clone(), mask)
            })
            .collect()
    }

    /// Replaces the store's contents with previously exported entries — the
    /// restore half of a recovery checkpoint. Unlike [`MetricStore::append`]
    /// nothing is published to subscribers: recovery rebuilds state, it does
    /// not re-measure, so a subscriber attached across a restore sees no
    /// phantom replays.
    pub fn restore_entries(
        &self,
        entries: impl IntoIterator<Item = (KpiKey, TimeSeries, CoverageMask)>,
    ) {
        let mut series = self.series.write();
        let mut masks = self.masks.write();
        series.clear();
        masks.clear();
        for (key, s, mask) in entries {
            series.insert(key, s);
            masks.insert(key, mask);
        }
    }
}

/// An immutable view of a [`MetricStore`] at one instant, created by
/// [`MetricStore::snapshot`].
///
/// Accessors mirror the store's read API but never touch a lock: the
/// snapshot owns frozen copies of the series and coverage-mask maps behind
/// `Arc`s. This is the view the batch pipeline hands its worker threads —
/// every worker reads the same bytes regardless of scheduling, which is one
/// half of the byte-identical-reports guarantee (the other half is the
/// deterministic merge in `funnel-core`).
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    series: Arc<BTreeMap<KpiKey, TimeSeries>>,
    masks: Arc<BTreeMap<KpiKey, CoverageMask>>,
}

impl StoreSnapshot {
    /// A full copy of the series for `key`.
    pub fn get(&self, key: &KpiKey) -> Option<TimeSeries> {
        self.series.get(key).cloned()
    }

    /// A copy of the coverage mask for `key`.
    pub fn mask(&self, key: &KpiKey) -> Option<CoverageMask> {
        self.masks.get(key).cloned()
    }

    /// Fraction of `[from, to)` that held real measurements for `key` at
    /// snapshot time (0 when the key is unknown).
    pub fn coverage(&self, key: &KpiKey, from: MinuteBin, to: MinuteBin) -> f64 {
        self.masks
            .get(key)
            .map(|m| m.coverage(from, to))
            .unwrap_or(0.0)
    }

    /// The values of `key` over `[from, to)` (clamped), if the key exists.
    pub fn range(&self, key: &KpiKey, from: MinuteBin, to: MinuteBin) -> Option<Vec<f64>> {
        self.series.get(key).map(|s| s.slice(from, to).to_vec())
    }

    /// Number of keys held.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the snapshot holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// All keys held, in sorted (deterministic) order.
    pub fn keys(&self) -> Vec<KpiKey> {
        self.series.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpi::KpiKind;
    use funnel_topology::impact::Entity;
    use funnel_topology::model::ServerId;

    fn key(n: u32) -> KpiKey {
        KpiKey::new(Entity::Server(ServerId(n)), KpiKind::CpuUtilization)
    }

    #[test]
    fn insert_and_range() {
        let store = MetricStore::new();
        store.insert(key(0), TimeSeries::new(10, vec![1.0, 2.0, 3.0]));
        assert_eq!(store.range(&key(0), 11, 13), Some(vec![2.0, 3.0]));
        assert_eq!(store.range(&key(1), 0, 5), None);
        assert_eq!(store.len(), 1);
        // Batch inserts count as fully measured.
        assert_eq!(store.coverage(&key(0), 10, 13), 1.0);
        assert_eq!(store.coverage(&key(1), 0, 5), 0.0);
    }

    #[test]
    fn append_grows_and_fills_gaps() {
        let store = MetricStore::new();
        store.append(key(0), 5, 1.0);
        store.append(key(0), 6, 2.0);
        store.append(key(0), 9, 5.0); // gap at 7, 8 → repeat 2.0
        let s = store.get(&key(0)).unwrap();
        assert_eq!(s.start(), 5);
        assert_eq!(s.values(), &[1.0, 2.0, 2.0, 2.0, 5.0]);
        // Late write ignored.
        store.append(key(0), 6, 99.0);
        assert_eq!(store.get(&key(0)).unwrap().values()[1], 2.0);
    }

    #[test]
    fn mask_tracks_real_measurements_only() {
        let store = MetricStore::new();
        store.append(key(0), 5, 1.0);
        store.append(key(0), 6, 2.0);
        store.append(key(0), 9, 5.0);
        // The series is dense 5..=9, but 7 and 8 are fills.
        let mask = store.mask(&key(0)).unwrap();
        assert!(mask.is_present(5));
        assert!(mask.is_present(6));
        assert!(!mask.is_present(7));
        assert!(!mask.is_present(8));
        assert!(mask.is_present(9));
        assert_eq!(store.coverage(&key(0), 5, 10), 0.6);
    }

    #[test]
    fn subscription_receives_matching_only() {
        let store = MetricStore::new();
        let sub = store.subscribe(Some(vec![key(1)]), 16);
        store.append(key(0), 0, 1.0);
        store.append(key(1), 0, 2.0);
        let m = sub.recv().unwrap();
        assert_eq!(m.key, key(1));
        assert_eq!(m.value, 2.0);
        assert!(sub.receiver().try_recv().is_err());
    }

    #[test]
    fn unfiltered_subscription_sees_everything() {
        let store = MetricStore::new();
        let sub = store.subscribe(None, 16);
        store.append(key(0), 0, 1.0);
        store.append(key(7), 0, 2.0);
        assert_eq!(sub.recv().unwrap().key, key(0));
        assert_eq!(sub.recv().unwrap().key, key(7));
    }

    #[test]
    fn lagging_subscriber_drops_not_blocks() {
        let store = MetricStore::new();
        let sub = store.subscribe(None, 2);
        for m in 0..10 {
            store.append(key(0), m, m as f64);
        }
        // Only the first two made it; ingestion never blocked.
        assert_eq!(sub.recv().unwrap().minute, 0);
        assert_eq!(sub.recv().unwrap().minute, 1);
        assert!(sub.receiver().try_recv().is_err());
        // Store itself has all ten.
        assert_eq!(store.get(&key(0)).unwrap().len(), 10);
        // Drop accounting: 8 lost for this subscription, visible both ways.
        assert_eq!(sub.dropped(), 8);
        let stats = store.stats();
        assert_eq!(stats.dropped, 8);
        assert_eq!(stats.published, 2);
    }

    #[test]
    fn capacity_limit_throttles_new_subscriptions() {
        let store = MetricStore::new();
        store.set_subscription_capacity_limit(Some(1));
        let sub = store.subscribe(None, 1024); // asked big, clamped to 1
        for m in 0..5 {
            store.append(key(0), m, 0.0);
        }
        assert_eq!(sub.dropped(), 4);
        store.set_subscription_capacity_limit(None);
        let free = store.subscribe(None, 16);
        for m in 5..10 {
            store.append(key(0), m, 0.0);
        }
        assert_eq!(free.dropped(), 0);
    }

    #[test]
    fn dropped_subscription_is_reaped() {
        let store = MetricStore::new();
        let sub = store.subscribe(None, 4);
        drop(sub);
        store.append(key(0), 0, 1.0); // triggers reap, must not panic
        let sub2 = store.subscribe(None, 4);
        store.unsubscribe(&sub2);
        store.append(key(0), 1, 1.0);
        assert!(sub2.receiver().try_recv().is_err());
        assert_eq!(store.stats().reaped_subscribers, 1);
    }

    #[test]
    fn backfill_fills_historical_gap_and_refreshes_fills() {
        let store = MetricStore::new();
        store.append(key(0), 5, 1.0);
        store.append(key(0), 9, 4.0); // 6..=8 forward-filled with 1.0
        assert!(store.backfill(key(0), 7, 3.0));
        let s = store.get(&key(0)).unwrap();
        // 6 still fills from minute 5; 7 is real; 8 now re-fills from 7.
        assert_eq!(s.values(), &[1.0, 1.0, 3.0, 3.0, 4.0]);
        let mask = store.mask(&key(0)).unwrap();
        assert!(mask.is_present(7));
        assert!(!mask.is_present(6));
        assert!(!mask.is_present(8));
        let stats = store.stats();
        assert_eq!(stats.backfilled, 1);
        assert_eq!(stats.backfill_rejected, 0);
    }

    #[test]
    fn backfill_is_dup_suppressed_against_real_bins() {
        let store = MetricStore::new();
        store.append(key(0), 5, 1.0);
        store.append(key(0), 8, 2.0);
        // 5 and 8 hold real measurements: first write wins.
        assert!(!store.backfill(key(0), 5, 99.0));
        assert!(!store.backfill(key(0), 8, 99.0));
        // Before the series anchor: nowhere to put it.
        assert!(!store.backfill(key(0), 2, 99.0));
        assert_eq!(store.get(&key(0)).unwrap().values(), &[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(store.stats().backfill_rejected, 3);
        assert_eq!(store.stats().backfilled, 0);
        // Collector-side plausibility rejections share the counter.
        store.note_backfill_rejected();
        assert_eq!(store.stats().backfill_rejected, 4);
    }

    #[test]
    fn backfill_past_frontier_extends_like_append() {
        let store = MetricStore::new();
        store.append(key(0), 0, 1.0);
        assert!(store.backfill(key(0), 3, 5.0));
        let s = store.get(&key(0)).unwrap();
        assert_eq!(s.values(), &[1.0, 1.0, 1.0, 5.0]);
        assert!(store.mask(&key(0)).unwrap().is_present(3));
    }

    #[test]
    fn heal_burst_overrun_counts_drops_per_subscription() {
        // Regression: a healed partition replaying a buffered burst through
        // backfill must account channel overruns exactly like live appends —
        // dropped() and StoreStats::dropped increment; nothing silently
        // truncates at the channel capacity.
        let store = MetricStore::new();
        store.append(key(0), 0, 1.0);
        store.append(key(0), 100, 2.0); // 1..100 forward-filled
        let sub = store.subscribe(None, 2);
        for minute in 10..20 {
            assert!(store.backfill(key(0), minute, minute as f64));
        }
        assert_eq!(sub.recv().unwrap().minute, 10);
        assert_eq!(sub.recv().unwrap().minute, 11);
        assert!(sub.receiver().try_recv().is_err());
        assert_eq!(sub.dropped(), 8);
        let stats = store.stats();
        assert_eq!(stats.dropped, 8);
        assert_eq!(stats.published, 2);
        assert_eq!(stats.backfilled, 10);
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let store = MetricStore::new();
        store.append(key(0), 0, 1.0);
        store.append(key(0), 3, 4.0); // 1, 2 forward-filled
        let snap = store.snapshot();
        // Later live appends and backfills do not reach the snapshot.
        store.append(key(0), 5, 9.0);
        store.append(key(1), 0, 7.0);
        assert!(store.backfill(key(0), 1, 2.0));
        assert_eq!(snap.len(), 1);
        assert!(snap.get(&key(1)).is_none());
        let s = snap.get(&key(0)).unwrap();
        assert_eq!(s.values(), &[1.0, 1.0, 1.0, 4.0]);
        let mask = snap.mask(&key(0)).unwrap();
        assert!(mask.is_present(0) && mask.is_present(3));
        assert!(!mask.is_present(1) && !mask.is_present(2));
        assert_eq!(snap.coverage(&key(0), 0, 4), 0.5);
        assert_eq!(snap.range(&key(0), 1, 3), Some(vec![1.0, 1.0]));
        assert_eq!(snap.keys(), vec![key(0)]);
        assert!(!snap.is_empty());
    }

    #[test]
    fn snapshot_matches_store_reads_at_capture_time() {
        let store = MetricStore::new();
        for m in 0..30 {
            store.append(key(0), m, m as f64);
            if m % 3 != 0 {
                store.append(key(1), m, -(m as f64));
            }
        }
        let snap = store.snapshot();
        for k in [key(0), key(1)] {
            assert_eq!(snap.get(&k), store.get(&k), "{k:?}");
            assert_eq!(
                snap.mask(&k).map(|m| m.prefix_counts()),
                store.mask(&k).map(|m| m.prefix_counts()),
                "{k:?}"
            );
        }
        assert_eq!(snap.keys(), store.keys());
        // Clones share the frozen maps.
        let clone = snap.clone();
        assert_eq!(clone.len(), snap.len());
    }

    #[test]
    fn quarantine_counter_snapshots() {
        let store = MetricStore::new();
        store.note_quarantined_frame();
        store.note_quarantined_frame();
        assert_eq!(store.stats().quarantined_frames, 2);
    }
}
