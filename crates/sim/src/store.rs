//! The central metric store with a subscription API.
//!
//! The paper's substrate is "a centralized Hadoop-based database … \[that\]
//! provides a subscription tool for other systems, such as FUNNEL, to
//! periodically receive the subscribed measurements" (§2.2). This in-memory
//! reproduction keeps one dense [`TimeSeries`] per KPI key behind a
//! read–write lock and fans out live appends to subscribers over bounded
//! crossbeam channels — the same push-within-a-second contract FUNNEL's
//! online pipeline consumes.

use crate::kpi::KpiKey;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use funnel_timeseries::series::{MinuteBin, TimeSeries};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One live measurement pushed to subscribers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Which KPI.
    pub key: KpiKey,
    /// The minute the measurement covers.
    pub minute: MinuteBin,
    /// The measured value.
    pub value: f64,
}

/// A live subscription handle; drop it to unsubscribe.
#[derive(Debug)]
pub struct Subscription {
    id: u64,
    receiver: Receiver<Measurement>,
}

impl Subscription {
    /// The receiving end of the measurement stream.
    pub fn receiver(&self) -> &Receiver<Measurement> {
        &self.receiver
    }

    /// Blocking receive of the next measurement (None when the store shuts
    /// down or this subscription lags so far it was dropped).
    pub fn recv(&self) -> Option<Measurement> {
        self.receiver.recv().ok()
    }
}

struct Subscriber {
    id: u64,
    filter: Option<Vec<KpiKey>>,
    sender: Sender<Measurement>,
}

/// The in-memory metric store.
#[derive(Default)]
pub struct MetricStore {
    series: RwLock<HashMap<KpiKey, TimeSeries>>,
    subscribers: RwLock<Vec<Subscriber>>,
    next_sub: AtomicU64,
}

impl std::fmt::Debug for MetricStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricStore")
            .field("keys", &self.series.read().len())
            .field("subscribers", &self.subscribers.read().len())
            .finish()
    }
}

impl MetricStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared-ownership constructor (the usual deployment: one store, many
    /// agent/collector/pipeline threads).
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Replaces the entire series for `key` (used by batch materialization).
    pub fn insert(&self, key: KpiKey, series: TimeSeries) {
        self.series.write().insert(key, series);
    }

    /// Appends one live measurement, growing the series (gaps are filled by
    /// repeating the last value, matching the upstream interpolation the
    /// paper's agents perform), and pushes it to matching subscribers.
    pub fn append(&self, key: KpiKey, minute: MinuteBin, value: f64) {
        {
            let mut map = self.series.write();
            let series = map.entry(key).or_insert_with(|| TimeSeries::empty(minute));
            if series.is_empty() {
                // Re-anchor an empty placeholder at the first real minute.
                *series = TimeSeries::empty(minute);
            }
            let mut end = series.end();
            if minute < end {
                // Late measurement for an already-filled minute: ignore
                // (first write wins, as in the real store).
                return;
            }
            let last = series.values().last().copied().unwrap_or(value);
            while end < minute {
                series.push(last);
                end += 1;
            }
            series.push(value);
        }
        self.publish(Measurement { key, minute, value });
    }

    fn publish(&self, m: Measurement) {
        let mut dead = Vec::new();
        {
            let subs = self.subscribers.read();
            for s in subs.iter() {
                let wants = s.filter.as_ref().is_none_or(|f| f.contains(&m.key));
                if !wants {
                    continue;
                }
                match s.sender.try_send(m) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        // Lagging subscriber: drop the measurement for it
                        // rather than blocking ingestion (the store favours
                        // liveness; FUNNEL re-reads history on demand).
                    }
                    Err(TrySendError::Disconnected(_)) => dead.push(s.id),
                }
            }
        }
        if !dead.is_empty() {
            self.subscribers.write().retain(|s| !dead.contains(&s.id));
        }
    }

    /// Subscribes to live measurements; `filter = None` means everything.
    /// The channel holds up to `capacity` undelivered measurements.
    pub fn subscribe(&self, filter: Option<Vec<KpiKey>>, capacity: usize) -> Subscription {
        let (tx, rx) = bounded(capacity.max(1));
        let id = self.next_sub.fetch_add(1, Ordering::Relaxed);
        self.subscribers.write().push(Subscriber { id, filter, sender: tx });
        Subscription { id, receiver: rx }
    }

    /// Cancels a subscription explicitly (dropping the [`Subscription`]
    /// also works — the dead channel is reaped on the next publish).
    pub fn unsubscribe(&self, sub: &Subscription) {
        self.subscribers.write().retain(|s| s.id != sub.id);
    }

    /// Closes every live subscription: all receivers see end-of-stream
    /// after draining. Call when ingestion is finished (end of a replay,
    /// shutdown) so consumers holding their own `Arc<MetricStore>` can
    /// terminate instead of blocking on a feed that will never resume.
    pub fn close_subscriptions(&self) {
        self.subscribers.write().clear();
    }

    /// A full copy of the series for `key`.
    pub fn get(&self, key: &KpiKey) -> Option<TimeSeries> {
        self.series.read().get(key).cloned()
    }

    /// The values of `key` over `[from, to)` (clamped), if the key exists.
    pub fn range(&self, key: &KpiKey, from: MinuteBin, to: MinuteBin) -> Option<Vec<f64>> {
        self.series.read().get(key).map(|s| s.slice(from, to).to_vec())
    }

    /// Number of keys held.
    pub fn len(&self) -> usize {
        self.series.read().len()
    }

    /// Whether the store holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.read().is_empty()
    }

    /// All keys currently held, in arbitrary order.
    pub fn keys(&self) -> Vec<KpiKey> {
        self.series.read().keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpi::KpiKind;
    use funnel_topology::impact::Entity;
    use funnel_topology::model::ServerId;

    fn key(n: u32) -> KpiKey {
        KpiKey::new(Entity::Server(ServerId(n)), KpiKind::CpuUtilization)
    }

    #[test]
    fn insert_and_range() {
        let store = MetricStore::new();
        store.insert(key(0), TimeSeries::new(10, vec![1.0, 2.0, 3.0]));
        assert_eq!(store.range(&key(0), 11, 13), Some(vec![2.0, 3.0]));
        assert_eq!(store.range(&key(1), 0, 5), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn append_grows_and_fills_gaps() {
        let store = MetricStore::new();
        store.append(key(0), 5, 1.0);
        store.append(key(0), 6, 2.0);
        store.append(key(0), 9, 5.0); // gap at 7, 8 → repeat 2.0
        let s = store.get(&key(0)).unwrap();
        assert_eq!(s.start(), 5);
        assert_eq!(s.values(), &[1.0, 2.0, 2.0, 2.0, 5.0]);
        // Late write ignored.
        store.append(key(0), 6, 99.0);
        assert_eq!(store.get(&key(0)).unwrap().values()[1], 2.0);
    }

    #[test]
    fn subscription_receives_matching_only() {
        let store = MetricStore::new();
        let sub = store.subscribe(Some(vec![key(1)]), 16);
        store.append(key(0), 0, 1.0);
        store.append(key(1), 0, 2.0);
        let m = sub.recv().unwrap();
        assert_eq!(m.key, key(1));
        assert_eq!(m.value, 2.0);
        assert!(sub.receiver().try_recv().is_err());
    }

    #[test]
    fn unfiltered_subscription_sees_everything() {
        let store = MetricStore::new();
        let sub = store.subscribe(None, 16);
        store.append(key(0), 0, 1.0);
        store.append(key(7), 0, 2.0);
        assert_eq!(sub.recv().unwrap().key, key(0));
        assert_eq!(sub.recv().unwrap().key, key(7));
    }

    #[test]
    fn lagging_subscriber_drops_not_blocks() {
        let store = MetricStore::new();
        let sub = store.subscribe(None, 2);
        for m in 0..10 {
            store.append(key(0), m, m as f64);
        }
        // Only the first two made it; ingestion never blocked.
        assert_eq!(sub.recv().unwrap().minute, 0);
        assert_eq!(sub.recv().unwrap().minute, 1);
        assert!(sub.receiver().try_recv().is_err());
        // Store itself has all ten.
        assert_eq!(store.get(&key(0)).unwrap().len(), 10);
    }

    #[test]
    fn dropped_subscription_is_reaped() {
        let store = MetricStore::new();
        let sub = store.subscribe(None, 4);
        drop(sub);
        store.append(key(0), 0, 1.0); // triggers reap, must not panic
        let sub2 = store.subscribe(None, 4);
        store.unsubscribe(&sub2);
        store.append(key(0), 1, 1.0);
        assert!(sub2.receiver().try_recv().is_err());
    }
}
