//! Agents and the collector: the live ingestion path.
//!
//! "The operations team deploys an agent on each server to monitor the
//! status of each instance and collect the KPIs of all instances
//! continuously. … the agent on each server delivers the measurements to a
//! centralized Hadoop-based database, which also stores the service KPIs
//! aggregated based on the KPIs of the instances" (§2.2).
//!
//! [`replay`] reproduces that dataflow over a frozen [`World`]: agent
//! threads (one per shard of servers) walk the timeline minute by minute,
//! encode each server's measurements into a [`crate::wire`] frame, and send
//! the frames over a crossbeam channel to a collector thread. The collector
//! decodes, appends server/instance measurements to the [`MetricStore`]
//! (which pushes to subscribers), and — once every shard has reported a
//! minute — computes and appends the service-level aggregates for that
//! minute.
//!
//! [`replay_with_faults`] runs the same dataflow through a deterministic
//! [`crate::faults::FaultSchedule`]: agents skip dropped frames, glitch sensor readings,
//! mangle bytes in flight, hold delayed frames back, and send duplicates.
//! The collector is hardened accordingly — undecodable frames are
//! quarantined (never panic), duplicates are suppressed per agent,
//! non-finite values are rejected, and minute finalization waits out the
//! schedule's reorder horizon so a delayed frame is never mistaken for a
//! lost one. Service aggregation sums instance values in instance-id order,
//! so the aggregate bytes are identical no matter how threads interleave.

use crate::collector::{Collector, CollectorState, IngestHooks, NoHooks};
use crate::faults::HealMode;
use crate::kpi::{KpiKey, KpiKind};
use crate::store::MetricStore;
use crate::wire::{encode_frame, WireRecord};
use crate::world::{SimError, World};
use bytes::Bytes;
use crossbeam::channel::bounded;
use funnel_timeseries::series::TimeSeries;
use funnel_topology::impact::Entity;
use funnel_topology::model::ServerId;

pub use crate::faults::FaultPlan;

/// Counters describing one replay run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Unique wire frames the collector accepted (dropped, duplicate, and
    /// quarantined frames excluded).
    pub frames: usize,
    /// Individual measurements ingested (before aggregation).
    pub records: usize,
    /// Minutes replayed.
    pub minutes: usize,
    /// Service-aggregate measurements produced by the collector.
    pub aggregates: usize,
    /// Frames the fault schedule dropped before delivery.
    pub dropped_frames: usize,
    /// Frames the fault schedule held back and delivered late.
    pub delayed_frames: usize,
    /// Duplicate deliveries the collector suppressed.
    pub duplicate_frames: usize,
    /// Frames that failed to decode and were quarantined.
    pub quarantined_frames: usize,
    /// Records whose value was scaled by an injected sensor glitch.
    pub glitched_records: usize,
    /// Records the collector rejected for carrying a non-finite or
    /// implausibly large value (byte corruption can turn a valid f64 into
    /// NaN/∞ — or into a "valid" number of magnitude 1e300 that would
    /// silently poison every aggregate it touches).
    pub invalid_records: usize,
    /// The subset of `invalid_records` that carried NaN or ±Inf.
    pub nonfinite_records: usize,
    /// The subset of `invalid_records` whose value fell implausibly far
    /// below the key's previous live measurement — a counter reset
    /// reported through a raw-gauge channel.
    pub counter_reset_records: usize,
    /// Frames quarantined because their minute stamp ran further ahead of
    /// the sending agent's watermark than clock skew can explain (also
    /// counted in `quarantined_frames`).
    pub clock_skewed_frames: usize,
    /// Agent shard threads that panicked mid-replay. Their already-sent
    /// frames were ingested; only their local fault counters are lost.
    pub crashed_agents: usize,
    /// Frames lost to a network partition: generated while the shard was
    /// dark with no buffering (silent drop), evicted from a full agent-side
    /// queue, or still queued when the replay ended inside the window.
    pub partition_lost_frames: usize,
    /// Late frames from a healed partition routed to the collector's
    /// backfill stage (their minute lay behind the sending agent's own
    /// watermark by more than the reorder horizon).
    pub backfilled_frames: usize,
    /// Individual measurements written into historical bins by backfill.
    pub backfilled_records: usize,
    /// Late measurements refused by backfill duplicate suppression (the
    /// bin already held a real measurement).
    pub backfill_rejected_records: usize,
    /// Service aggregates that only completed once backfill merged a
    /// healed span's instance cells.
    pub backfilled_aggregates: usize,
}

/// Replays the whole world through the agent → collector path into `store`,
/// using `shards` agent threads.
///
/// # Errors
///
/// Propagates series-generation errors (cannot occur for a well-formed
/// world).
pub fn replay(world: &World, store: &MetricStore, shards: usize) -> Result<ReplayStats, SimError> {
    replay_with_faults(world, store, shards, FaultPlan::none())
}

/// [`replay`] under a deterministic [`FaultPlan`].
///
/// The collector uses per-agent watermarks (frames within one agent arrive
/// in send order) to finalize minutes whose frames will never arrive, so a
/// lossy agent cannot stall service aggregation. When the plan delays
/// frames, finalization additionally waits out the schedule's reorder
/// horizon before declaring a frame lost. Service aggregates are only
/// emitted for minutes where *every* instance reported (partial minutes
/// leave a gap the store fills forward — and records in its coverage mask —
/// exactly like the production substrate).
///
/// # Errors
///
/// Propagates series-generation errors (cannot occur for a well-formed
/// world).
pub fn replay_with_faults(
    world: &World,
    store: &MetricStore,
    shards: usize,
    faults: FaultPlan,
) -> Result<ReplayStats, SimError> {
    replay_prefix(world, store, shards, faults, usize::MAX)
}

/// [`replay_with_faults`] truncated to the first `minutes` of the world's
/// timeline — a replay stopped mid-flight. Its purpose is interim
/// assessment during an open partition: a cutoff inside a
/// [`crate::faults::PartitionWindow`] leaves the agents' buffered queues
/// undrained (the link never came back inside the replayed span), so the
/// store shows the coverage gap exactly as a live operator would see it.
/// A shard still dark at the cutoff loses its queue, as agents that never
/// heal eventually do.
///
/// # Errors
///
/// Propagates series-generation errors (cannot occur for a well-formed
/// world).
pub fn replay_prefix(
    world: &World,
    store: &MetricStore,
    shards: usize,
    faults: FaultPlan,
    minutes: usize,
) -> Result<ReplayStats, SimError> {
    replay_durable(world, store, shards, faults, minutes, None, &mut NoHooks).map(|o| o.stats)
}

/// What [`replay_durable`] produced: the run's counters plus whether an
/// [`IngestHooks`] seam aborted the stream mid-flight (a simulated crash —
/// the end-of-stream flush did not run and the store holds a prefix of the
/// full ingestion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Counters for this run only (a resumed replay does not include the
    /// crashed run's counts — those died with the crashed process).
    pub stats: ReplayStats,
    /// Whether a hook aborted the stream before end-of-stream.
    pub aborted: bool,
}

/// [`replay_prefix`] with durability seams: every accepted frame and commit
/// passes through `hooks` (where `funnel-resilience` appends its WAL and
/// writes periodic checkpoints), and the collector can resume from a
/// previously captured [`CollectorState`].
///
/// On resume, agents fast-forward past the minutes the restored watermarks
/// prove durable — but only when the fault plan neither reorders nor
/// partitions (either would break the "accepted in send order ⇒ watermark
/// bounds durability" argument). Otherwise agents resend their whole
/// timeline and the restored duplicate-suppression state discards the
/// already-ingested prefix; both paths converge to the same bytes.
///
/// # Errors
///
/// Propagates series-generation errors (cannot occur for a well-formed
/// world).
pub fn replay_durable(
    world: &World,
    store: &MetricStore,
    shards: usize,
    faults: FaultPlan,
    minutes: usize,
    resume: Option<CollectorState>,
    hooks: &mut dyn IngestHooks,
) -> Result<ReplayOutcome, SimError> {
    // Observability (write-only; no-op unless `funnel_obs::enable` ran):
    // one span for the whole replay, counters at each fault-path site.
    let replay_span = funnel_obs::span!(funnel_obs::names::SPAN_COLLECT_REPLAY);
    let shards = shards.max(1);
    let duration = world.config().duration.min(minutes);
    let start = world.config().start;
    if faults.subscriber_capacity.is_some() {
        store.set_subscription_capacity_limit(faults.subscriber_capacity);
    }
    let schedule = faults.schedule();
    let horizon = schedule.reorder_horizon();

    // Replay cursors: when the transport neither reorders nor partitions,
    // frames from one agent are accepted in strictly ascending minute
    // order, so a resumed collector's per-agent watermark pins down exactly
    // which minutes are already durable — the agent fast-forwards past them
    // instead of resending its whole timeline. Any reordering or partition
    // voids that guarantee; agents then resend from the start and the
    // collector's duplicate suppression (whose memory is part of the
    // resumed state) discards what was already ingested.
    let cursors: Vec<usize> = match &resume {
        Some(state) if horizon == 0 && faults.partitions.is_empty() => (0..shards)
            .map(|a| {
                state
                    .watermarks
                    .get(a)
                    .copied()
                    .flatten()
                    .map_or(0, |w| (w + 1).saturating_sub(start) as usize)
            })
            .collect(),
        _ => vec![0; shards],
    };

    // Pre-generate per-server payload series (the "agent's local state").
    struct ShardData {
        // (key, series) pairs this shard reports, grouped by server.
        servers: Vec<Vec<(KpiKey, TimeSeries)>>,
    }
    let mut shard_data: Vec<ShardData> = (0..shards)
        .map(|_| ShardData {
            servers: Vec::new(),
        })
        .collect();

    for sid in 0..world.topology().server_count() {
        let server = ServerId(sid as u32);
        let mut payload = Vec::new();
        for kind in KpiKind::SERVER_KINDS {
            let key = KpiKey::new(Entity::Server(server), kind);
            payload.push((key, world.series(&key)?));
        }
        for inst in world.topology().instances() {
            if inst.server != server {
                continue;
            }
            for &kind in world.kinds_of_service(inst.service) {
                let key = KpiKey::new(Entity::Instance(inst.id), kind);
                payload.push((key, world.series(&key)?));
            }
        }
        if let Some(slot) = shard_data.get_mut(sid % shards) {
            slot.servers.push(payload);
        }
    }

    let (tx, rx) = bounded::<Bytes>(shards * 4);
    let mut collector = match resume {
        Some(state) => Collector::resume(world, store, shards, horizon, state),
        None => Collector::for_world(world, store, shards, horizon),
    };

    /// Per-agent counters returned by each shard thread.
    #[derive(Default)]
    struct AgentStats {
        dropped: usize,
        delayed: usize,
        glitched: usize,
        partition_lost: usize,
    }
    let mut agent_totals = AgentStats::default();
    let mut crashed_agents = 0usize;

    let mut aborted = std::thread::scope(|scope| {
        // Agent shards.
        let mut handles = Vec::with_capacity(shards);
        for (shard_idx, data) in shard_data.iter().enumerate() {
            let tx = tx.clone();
            let schedule = &schedule;
            let cursor = cursors.get(shard_idx).copied().unwrap_or(0);
            handles.push(scope.spawn(move || {
                let mut local = AgentStats::default();
                // Frames held back by the transport: (release minute, bytes).
                let mut held: Vec<(u64, Bytes)> = Vec::new();
                // Frames generated while partitioned, waiting for heal, in
                // ascending minute order (each keeps its original-minute
                // stamp in the wire header). The heal mode they were
                // buffered under governs the drain rate.
                let mut backlog: Vec<Bytes> = Vec::new();
                let mut backlog_heal = HealMode::SilentDrop;
                let send = |frame: Bytes, copies: u32| {
                    for _ in 0..=copies {
                        if tx.send(frame.clone()).is_err() {
                            return false;
                        }
                    }
                    true
                };
                let build_records = |minute: u64, local: &mut AgentStats| {
                    let mut records = Vec::new();
                    for server_payload in &data.servers {
                        for (key, series) in server_payload {
                            if let Some(mut value) = series.at(minute) {
                                if let Some(factor) =
                                    schedule.glitch(shard_idx, minute, records.len())
                                {
                                    value *= factor;
                                    local.glitched += 1;
                                }
                                records.push(WireRecord { key: *key, value });
                            }
                        }
                    }
                    records
                };
                for minute_idx in cursor..duration {
                    let minute = start + minute_idx as u64;
                    // Release previously delayed frames whose time has come
                    // (before this minute's frame, preserving the reorder
                    // horizon: a frame for m arrives by agent minute
                    // m + max_delay). Delayed frames were already accepted
                    // by the transport before any partition began, so they
                    // deliver even while the shard's uplink is dark.
                    held.sort_by_key(|(release, _)| *release);
                    while held.first().is_some_and(|(release, _)| *release <= minute) {
                        let (_, frame) = held.remove(0);
                        if !send(frame, 0) {
                            return local;
                        }
                    }
                    if let Some(window) = schedule.partition_at(shard_idx, minute) {
                        // Dark minute: the sensor still reads (glitches
                        // apply) but nothing enters the transport, so the
                        // per-frame fault channels never roll for this
                        // frame. The frame keeps its original-minute stamp
                        // — that stamp is what later makes it a backfill
                        // candidate rather than a live measurement.
                        match window.heal {
                            HealMode::SilentDrop => local.partition_lost += 1,
                            heal => {
                                let records = build_records(minute, &mut local);
                                backlog.push(encode_frame(minute, shard_idx as u32, &records));
                                backlog_heal = heal;
                                if backlog.len() > heal.queue_bound() {
                                    // Bounded agent-side queue: oldest out.
                                    backlog.remove(0);
                                    local.partition_lost += 1;
                                }
                            }
                        }
                        continue;
                    }
                    // Link is up: drain queued dark-span frames per the heal
                    // mode, oldest first, ahead of this minute's live frame.
                    if !backlog.is_empty() {
                        let burst = match backlog_heal {
                            HealMode::SilentDrop => 0,
                            HealMode::BufferedBurst { .. } => backlog.len(),
                            HealMode::StaggeredCatchUp { per_minute, .. } => {
                                per_minute.min(backlog.len())
                            }
                        };
                        for frame in backlog.drain(..burst) {
                            // Queued frames skip the per-frame fault
                            // channels: they were never in flight during
                            // the window and the uplink is live now.
                            if !send(frame, 0) {
                                return local;
                            }
                        }
                    }
                    let fate = schedule.frame_fate(shard_idx, minute);
                    if fate.dropped {
                        local.dropped += 1;
                        continue; // frame lost in transit
                    }
                    let records = build_records(minute, &mut local);
                    // One frame per shard per minute (empty shards included,
                    // so the collector's completeness count works).
                    let mut frame = encode_frame(minute, shard_idx as u32, &records);
                    if fate.truncate_frac.is_some() || fate.corrupt.is_some() {
                        frame = Bytes::from(schedule.mangle(&fate, &frame));
                    }
                    if fate.delay_minutes > 0 {
                        local.delayed += 1;
                        held.push((minute + fate.delay_minutes, frame));
                        continue;
                    }
                    if !send(frame, fate.duplicates) {
                        return local;
                    }
                }
                // Timeline over: flush anything still in flight, in release
                // order.
                held.sort_by_key(|(release, _)| *release);
                for (_, frame) in held {
                    if !send(frame, 0) {
                        return local;
                    }
                }
                // A shard still dark at the cutoff loses its queue (the
                // window never healed inside the replayed span); otherwise
                // the link is up and the leftover backlog flushes.
                let last_minute = start + duration.saturating_sub(1) as u64;
                if duration > 0 && schedule.is_partitioned(shard_idx, last_minute) {
                    local.partition_lost += backlog.len();
                    backlog.clear();
                }
                for frame in backlog {
                    if !send(frame, 0) {
                        return local;
                    }
                }
                local
            }));
        }
        drop(tx);

        // Drive the collector: classify (pure), then the WAL seam, then
        // commit, then the checkpoint seam. An abort simulates the
        // collector dying here — stop consuming, drop the channel so
        // blocked agents unwind, and skip the end-of-stream flush exactly
        // as a kill would. The classified-but-uncommitted frame is lost
        // with the process; its WAL append (torn or not) is what recovery
        // gets to see.
        let mut aborted = false;
        while let Ok(frame) = rx.recv() {
            let ingest = collector.classify(&frame);
            let accepted = ingest.accepted();
            if accepted && hooks.on_accepted_frame(&frame).is_err() {
                aborted = true;
                break;
            }
            collector.commit(ingest);
            if accepted && hooks.after_commit(&collector).is_err() {
                aborted = true;
                break;
            }
        }
        drop(rx);
        for handle in handles {
            // A crashed agent shard must not take the collector down with
            // it: the frames it sent before dying were already ingested,
            // only its local fault counters are lost. Count the crash so
            // operators see the degradation instead of a panic.
            match handle.join() {
                Ok(local) => {
                    agent_totals.dropped += local.dropped;
                    agent_totals.delayed += local.delayed;
                    agent_totals.glitched += local.glitched;
                    agent_totals.partition_lost += local.partition_lost;
                }
                Err(_) => crashed_agents += 1,
            }
        }
        aborted
    });

    if !aborted {
        // Every agent finished and every frame was consumed: give the WAL
        // its end-of-stream marker, then flush. A crash inside the marker
        // write leaves a stream that recovery resumes (and fully
        // dup-suppresses) rather than finishes — convergent either way.
        if hooks.on_end_of_stream(&collector).is_err() {
            aborted = true;
        } else {
            collector.finish();
        }
    }

    let (_, mut stats) = collector.into_parts();
    stats.minutes = duration;
    stats.dropped_frames = agent_totals.dropped;
    stats.delayed_frames = agent_totals.delayed;
    stats.glitched_records = agent_totals.glitched;
    stats.partition_lost_frames = agent_totals.partition_lost;
    stats.crashed_agents = crashed_agents;

    // Record the replay span and merge this thread's span buffer now, so a
    // snapshot taken right after `replay` returns already contains it.
    drop(replay_span);
    funnel_obs::flush_thread();
    Ok(ReplayOutcome { stats, aborted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::{ChangeEffect, EffectScope};
    use crate::world::{SimConfig, WorldBuilder};
    use funnel_topology::change::ChangeKind;

    fn test_world() -> World {
        let mut b = WorldBuilder::new(SimConfig {
            seed: 11,
            start: 0,
            duration: 120,
        });
        let svc = b.add_service("prod.web", 3).unwrap();
        let effect = ChangeEffect::none().with_level_shift(
            KpiKind::PageViewCount,
            EffectScope::TreatedInstances,
            -400.0,
        );
        b.deploy_change(ChangeKind::Upgrade, svc, 1, 60, effect, "pvc drop")
            .unwrap();
        b.build()
    }

    #[test]
    fn replay_matches_direct_generation() {
        let world = test_world();
        let store = MetricStore::new();
        let stats = replay(&world, &store, 2).unwrap();
        assert_eq!(stats.minutes, 120);
        assert!(stats.frames >= 240, "frames {}", stats.frames);
        assert!(stats.records > 0);
        assert!(stats.aggregates > 0);
        assert_eq!(stats.quarantined_frames, 0);
        assert_eq!(stats.duplicate_frames, 0);

        // Every key the world defines must be in the store, equal to the
        // directly-generated series.
        for key in world.all_keys() {
            let direct = world.series(&key).unwrap();
            let stored = store.get(&key).unwrap_or_else(|| panic!("{key:?} missing"));
            assert_eq!(stored.len(), direct.len(), "{key:?} length");
            for (a, b) in stored.values().iter().zip(direct.values()) {
                assert!((a - b).abs() < 1e-9, "{key:?}: {a} vs {b}");
            }
            // A clean replay measures every minute.
            assert_eq!(store.coverage(&key, 0, 120), 1.0, "{key:?} coverage");
        }
    }

    #[test]
    fn subscribers_see_live_measurements() {
        let world = test_world();
        let store = MetricStore::new();
        let svc = world.topology().services().next().unwrap().0;
        let key = KpiKey::new(Entity::Service(svc), KpiKind::PageViewCount);
        let sub = store.subscribe(Some(vec![key]), 256);
        replay(&world, &store, 3).unwrap();
        // All 120 service aggregates should have been pushed in order.
        let mut minutes = Vec::new();
        while let Ok(m) = sub.receiver().try_recv() {
            minutes.push(m.minute);
        }
        assert_eq!(minutes.len(), 120);
        assert!(minutes.windows(2).all(|w| w[0] < w[1]), "out of order");
        assert_eq!(sub.dropped(), 0);
    }

    #[test]
    fn single_shard_replay_works() {
        let world = test_world();
        let store = MetricStore::new();
        let stats = replay(&world, &store, 1).unwrap();
        assert_eq!(stats.frames, 120);
    }

    #[test]
    fn lossy_agents_do_not_stall_and_store_self_heals() {
        let world = test_world();
        let store = MetricStore::new();
        let faults = FaultPlan {
            drop_frame_prob: 0.1,
            seed: 99,
            ..FaultPlan::none()
        };
        let stats = replay_with_faults(&world, &store, 3, faults).unwrap();
        // ~10 % of frames lost.
        assert!(stats.frames < 3 * 120, "no frames were dropped");
        assert!(stats.frames > 3 * 120 * 7 / 10, "too many frames dropped");
        assert_eq!(stats.frames + stats.dropped_frames, 3 * 120);
        // Every key still holds a full-length series: the store fills the
        // gaps forward, so downstream windows never see holes.
        for key in world.all_keys() {
            let stored = store.get(&key).unwrap_or_else(|| panic!("{key:?} missing"));
            let direct = world.series(&key).unwrap();
            // The tail can be short when the final minutes' frames dropped.
            assert!(
                stored.len() + 4 >= direct.len(),
                "{key:?}: stored {} vs {}",
                stored.len(),
                direct.len()
            );
            assert!(stored.values().iter().all(|v| v.is_finite()));
            // ... but the coverage mask remembers what was really measured.
            let coverage = store.coverage(&key, 0, 120);
            assert!(coverage < 1.0, "{key:?}: loss must show in the mask");
            assert!(coverage > 0.5, "{key:?}: coverage {coverage}");
        }
    }

    #[test]
    fn faulted_replay_is_deterministic_and_measured_minutes_are_exact() {
        let world = test_world();
        let plan = FaultPlan {
            seed: 42,
            drop_frame_prob: 0.15,
            delay_prob: 0.2,
            max_delay_minutes: 3,
            duplicate_prob: 0.2,
            ..FaultPlan::none()
        };

        let store_a = MetricStore::new();
        let stats_a = replay_with_faults(&world, &store_a, 3, plan.clone()).unwrap();
        let store_b = MetricStore::new();
        let stats_b = replay_with_faults(&world, &store_b, 3, plan.clone()).unwrap();

        // Same seed + plan ⇒ identical stats and bit-identical series.
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.delayed_frames > 0, "delay channel never fired");
        assert!(
            stats_a.duplicate_frames > 0,
            "duplicate channel never fired"
        );
        for key in world.all_keys() {
            assert_eq!(store_a.get(&key), store_b.get(&key), "{key:?} diverged");
            assert_eq!(
                store_a.mask(&key),
                store_b.mask(&key),
                "{key:?} mask diverged"
            );
        }

        // Every minute the mask says was measured carries the true value:
        // duplicates were not double-counted and reordering did not
        // misattribute minutes. (Service aggregates included — sorted-sum
        // keeps them exact.)
        for key in world.all_keys() {
            let direct = world.series(&key).unwrap();
            let stored = store_a.get(&key).unwrap();
            let mask = store_a.mask(&key).unwrap();
            for minute in 0..120u64 {
                if !mask.is_present(minute) {
                    continue;
                }
                let (Some(got), Some(want)) = (stored.at(minute), direct.at(minute)) else {
                    panic!("{key:?}@{minute} missing despite mask");
                };
                assert!(
                    (got - want).abs() < 1e-9,
                    "{key:?}@{minute}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn disabled_faults_match_clean_replay_exactly() {
        let world = test_world();
        let clean = MetricStore::new();
        let clean_stats = replay(&world, &clean, 2).unwrap();
        let faulted = MetricStore::new();
        let none_stats = replay_with_faults(&world, &faulted, 2, FaultPlan::none()).unwrap();
        assert_eq!(clean_stats, none_stats);
        for key in world.all_keys() {
            assert_eq!(clean.get(&key), faulted.get(&key), "{key:?} diverged");
        }
    }

    #[test]
    fn corruption_is_quarantined_never_panics() {
        let world = test_world();
        let store = MetricStore::new();
        let plan = FaultPlan {
            seed: 7,
            truncate_prob: 0.15,
            corrupt_prob: 0.15,
            ..FaultPlan::none()
        };
        let stats = replay_with_faults(&world, &store, 3, plan).unwrap();
        assert!(
            stats.quarantined_frames > 0,
            "corruption channel never fired"
        );
        assert_eq!(
            store.stats().quarantined_frames as usize,
            stats.quarantined_frames
        );
        // Whatever survived decoding is finite (non-finite corrupted values
        // are rejected at the collector).
        for key in world.all_keys() {
            if let Some(series) = store.get(&key) {
                assert!(series.values().iter().all(|v| v.is_finite()), "{key:?}");
            }
        }
    }

    /// The durable state a checkpoint would capture: collector state plus
    /// store contents.
    type CapturedState = (
        CollectorState,
        Vec<(KpiKey, TimeSeries, funnel_timeseries::mask::CoverageMask)>,
    );

    /// Hooks that "crash" the collector after a fixed number of accepted
    /// frames, capturing the durable state (collector state + store
    /// contents) exactly as a checkpoint taken at that instant would.
    struct CrashingHooks<'a> {
        store: &'a MetricStore,
        kill_after: usize,
        accepted: usize,
        captured: Option<CapturedState>,
    }

    impl IngestHooks for CrashingHooks<'_> {
        fn after_commit(
            &mut self,
            collector: &Collector<'_>,
        ) -> Result<(), crate::collector::IngestAbort> {
            self.accepted += 1;
            if self.accepted == self.kill_after {
                self.captured = Some((collector.state().clone(), self.store.export_entries()));
                return Err(crate::collector::IngestAbort);
            }
            Ok(())
        }
    }

    fn assert_resume_converges(plan: FaultPlan, kill_after: usize) {
        let world = test_world();

        // Golden: the uninterrupted run.
        let golden = MetricStore::new();
        replay_with_faults(&world, &golden, 3, plan.clone()).unwrap();

        // Crashed: same run killed after `kill_after` accepted frames.
        let crashed = MetricStore::new();
        let mut hooks = CrashingHooks {
            store: &crashed,
            kill_after,
            accepted: 0,
            captured: None,
        };
        let out = replay_durable(
            &world,
            &crashed,
            3,
            plan.clone(),
            usize::MAX,
            None,
            &mut hooks,
        )
        .unwrap();
        assert!(out.aborted, "kill point never reached");
        let (state, entries) = hooks.captured.expect("capture at kill point");

        // Recovered: a fresh store rebuilt from the captured durable state,
        // resumed through the same fault plan. The crashed process's
        // in-memory store is dead — recovery only gets the checkpoint.
        let recovered = MetricStore::new();
        recovered.restore_entries(entries);
        let out = replay_durable(
            &world,
            &recovered,
            3,
            plan,
            usize::MAX,
            Some(state),
            &mut NoHooks,
        )
        .unwrap();
        assert!(!out.aborted);

        for key in world.all_keys() {
            assert_eq!(golden.get(&key), recovered.get(&key), "{key:?} diverged");
            assert_eq!(
                golden.mask(&key),
                recovered.mask(&key),
                "{key:?} mask diverged"
            );
        }
    }

    #[test]
    fn durable_resume_converges_with_fast_forward_cursor() {
        // No reordering, no partitions: agents fast-forward past the
        // restored watermarks instead of resending their whole timeline.
        let plan = FaultPlan {
            seed: 21,
            drop_frame_prob: 0.1,
            duplicate_prob: 0.1,
            ..FaultPlan::none()
        };
        for kill_after in [1, 40, 170] {
            assert_resume_converges(plan.clone(), kill_after);
        }
    }

    #[test]
    fn durable_resume_converges_under_reordering_via_dedup() {
        // Delays force the full-resend path: the restored duplicate
        // suppression must absorb the already-ingested prefix.
        let plan = FaultPlan {
            seed: 33,
            drop_frame_prob: 0.1,
            delay_prob: 0.2,
            max_delay_minutes: 3,
            duplicate_prob: 0.15,
            ..FaultPlan::none()
        };
        for kill_after in [7, 120] {
            assert_resume_converges(plan.clone(), kill_after);
        }
    }

    #[test]
    fn glitches_scale_measured_values() {
        let world = test_world();
        let store = MetricStore::new();
        let plan = FaultPlan {
            seed: 5,
            glitch_prob: 0.05,
            glitch_factor: 100.0,
            ..FaultPlan::none()
        };
        let stats = replay_with_faults(&world, &store, 2, plan).unwrap();
        assert!(stats.glitched_records > 0, "glitch channel never fired");
        // No loss channels: every frame still arrives.
        assert_eq!(stats.frames, 2 * 120);
    }
}
