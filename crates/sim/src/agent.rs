//! Agents and the collector: the live ingestion path.
//!
//! "The operations team deploys an agent on each server to monitor the
//! status of each instance and collect the KPIs of all instances
//! continuously. … the agent on each server delivers the measurements to a
//! centralized Hadoop-based database, which also stores the service KPIs
//! aggregated based on the KPIs of the instances" (§2.2).
//!
//! [`replay`] reproduces that dataflow over a frozen [`World`]: agent
//! threads (one per shard of servers) walk the timeline minute by minute,
//! encode each server's measurements into a [`crate::wire`] frame, and send
//! the frames over a crossbeam channel to a collector thread. The collector
//! decodes, appends server/instance measurements to the [`MetricStore`]
//! (which pushes to subscribers), and — once every shard has reported a
//! minute — computes and appends the service-level aggregates for that
//! minute.

use crate::kpi::{Aggregation, KpiKey, KpiKind};
use crate::store::MetricStore;
use crate::wire::{decode_frame, encode_frame, WireRecord};
use crate::world::{SimError, World};
use bytes::Bytes;
use crossbeam::channel::bounded;
use funnel_timeseries::series::TimeSeries;
use funnel_topology::impact::Entity;
use funnel_topology::model::{ServerId, ServiceId};
use std::collections::{BTreeMap, HashMap};

/// Counters describing one replay run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Wire frames delivered (one per shard per minute).
    pub frames: usize,
    /// Individual measurements ingested (before aggregation).
    pub records: usize,
    /// Minutes replayed.
    pub minutes: usize,
    /// Service-aggregate measurements produced by the collector.
    pub aggregates: usize,
}

/// Deterministic fault injection for the agent path: real agents lose
/// frames (host reboots, network blips). The collector and store must
/// tolerate both; [`replay_with_faults`] exercises them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability (per agent frame) that the frame is silently dropped
    /// before reaching the collector.
    pub drop_frame_prob: f64,
    /// Extra deterministic per-frame seed so distinct runs drop different
    /// frames.
    pub seed: u64,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the frame for (`shard`, `minute`) is dropped.
    fn drops(&self, shard: usize, minute: u64) -> bool {
        if self.drop_frame_prob <= 0.0 {
            return false;
        }
        let h = splitmix(self.seed ^ splitmix(shard as u64) ^ splitmix(minute));
        ((h >> 11) as f64 / (1u64 << 53) as f64) < self.drop_frame_prob
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Replays the whole world through the agent → collector path into `store`,
/// using `shards` agent threads.
///
/// # Errors
///
/// Propagates series-generation errors (cannot occur for a well-formed
/// world).
pub fn replay(world: &World, store: &MetricStore, shards: usize) -> Result<ReplayStats, SimError> {
    replay_with_faults(world, store, shards, FaultPlan::none())
}

/// [`replay`] with deterministic fault injection: dropped agent frames.
///
/// The collector uses a watermark (one minute behind the newest frame seen)
/// to finalize minutes whose frames will never arrive, so a lossy agent
/// cannot stall service aggregation; service aggregates are only emitted
/// for minutes where *every* instance reported (partial minutes leave a gap
/// the store fills forward, exactly like the production substrate).
///
/// # Errors
///
/// Propagates series-generation errors (cannot occur for a well-formed
/// world).
pub fn replay_with_faults(
    world: &World,
    store: &MetricStore,
    shards: usize,
    faults: FaultPlan,
) -> Result<ReplayStats, SimError> {
    let shards = shards.max(1);
    let duration = world.config().duration;
    let start = world.config().start;

    // Pre-generate per-server payload series (the "agent's local state").
    struct ShardData {
        // (key, series) pairs this shard reports, grouped by server.
        servers: Vec<Vec<(KpiKey, TimeSeries)>>,
    }
    let mut shard_data: Vec<ShardData> = (0..shards).map(|_| ShardData { servers: Vec::new() }).collect();

    for sid in 0..world.topology().server_count() {
        let server = ServerId(sid as u32);
        let mut payload = Vec::new();
        for kind in KpiKind::SERVER_KINDS {
            let key = KpiKey::new(Entity::Server(server), kind);
            payload.push((key, world.series(&key)?));
        }
        for inst in world.topology().instances() {
            if inst.server != server {
                continue;
            }
            for &kind in world.kinds_of_service(inst.service) {
                let key = KpiKey::new(Entity::Instance(inst.id), kind);
                payload.push((key, world.series(&key)?));
            }
        }
        shard_data[sid % shards].servers.push(payload);
    }

    // instance → (service, kinds) map for the collector's aggregation.
    let mut instance_service: HashMap<u32, ServiceId> = HashMap::new();
    for inst in world.topology().instances() {
        instance_service.insert(inst.id.0, inst.service);
    }
    let service_sizes: HashMap<ServiceId, usize> = world
        .topology()
        .services()
        .map(|(id, _)| (id, world.topology().instances_of(id).len()))
        .collect();

    let (tx, rx) = bounded::<Bytes>(shards * 4);
    let mut stats = ReplayStats { minutes: duration, ..Default::default() };

    std::thread::scope(|scope| {
        // Agent shards.
        for (shard_idx, data) in shard_data.iter().enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                for minute_idx in 0..duration {
                    let minute = start + minute_idx as u64;
                    if faults.drops(shard_idx, minute) {
                        continue; // frame lost in transit
                    }
                    let mut records = Vec::new();
                    for server_payload in &data.servers {
                        for (key, series) in server_payload {
                            if let Some(value) = series.at(minute) {
                                records.push(WireRecord { key: *key, value });
                            }
                        }
                    }
                    // One frame per shard per minute (empty shards included,
                    // so the collector's completeness count works).
                    let frame = encode_frame(minute, shard_idx as u32, &records);
                    if tx.send(frame).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);

        // Collector: decode, store, aggregate when a minute completes.
        // sum/count accumulators keyed by (service, kind) per minute.
        type MinuteAccs = HashMap<(ServiceId, KpiKind), (f64, u32)>;
        let mut pending: BTreeMap<u64, (usize, MinuteAccs)> = BTreeMap::new();
        // Per-agent watermark: frames within one agent arrive in minute
        // order, so once agent a's watermark passes minute m without a
        // frame for m, that frame is lost — scheduling skew between agents
        // can never be mistaken for loss.
        let mut watermarks: Vec<Option<u64>> = vec![None; shards];

        let finalize =
            |minute: u64, accs: MinuteAccs, stats: &mut ReplayStats| {
                for ((svc, kind), (sum, count)) in accs {
                    // Only aggregate when every instance reported.
                    if count as usize != *service_sizes.get(&svc).unwrap_or(&0) || count == 0 {
                        continue;
                    }
                    let value = match kind.aggregation() {
                        Aggregation::Sum => sum,
                        Aggregation::Mean => sum / count as f64,
                    };
                    store.append(KpiKey::new(Entity::Service(svc), kind), minute, value);
                    stats.aggregates += 1;
                }
            };

        while let Ok(frame) = rx.recv() {
            let decoded = decode_frame(frame).expect("agents produce valid frames");
            stats.frames += 1;
            if let Some(w) = watermarks.get_mut(decoded.agent_id as usize) {
                *w = Some(w.map_or(decoded.minute, |x| x.max(decoded.minute)));
            }
            let entry = pending.entry(decoded.minute).or_default();
            entry.0 += 1;
            for rec in &decoded.records {
                stats.records += 1;
                store.append(rec.key, decoded.minute, rec.value);
                if let Entity::Instance(i) = rec.key.entity {
                    if let Some(&svc) = instance_service.get(&i.0) {
                        let acc = entry.1.entry((svc, rec.key.kind)).or_insert((0.0, 0));
                        acc.0 += rec.value;
                        acc.1 += 1;
                    }
                }
            }
            // Finalize a minute once every agent has either delivered it or
            // demonstrably moved past it (its own watermark is beyond the
            // minute) — exact under any thread scheduling, robust to loss.
            while let Some((&minute, entry)) = pending.iter().next() {
                let complete = entry.0 >= shards;
                let all_past = watermarks.iter().all(|w| w.is_some_and(|x| x >= minute));
                if !complete && !all_past {
                    break;
                }
                let (_, accs) = pending.remove(&minute).expect("entry exists");
                finalize(minute, accs, &mut stats);
            }
        }
        // Channel closed: flush everything left.
        for (minute, (_, accs)) in std::mem::take(&mut pending) {
            finalize(minute, accs, &mut stats);
        }
    });

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::{ChangeEffect, EffectScope};
    use crate::world::{SimConfig, WorldBuilder};
    use funnel_topology::change::ChangeKind;

    fn test_world() -> World {
        let mut b = WorldBuilder::new(SimConfig { seed: 11, start: 0, duration: 120 });
        let svc = b.add_service("prod.web", 3).unwrap();
        let effect = ChangeEffect::none().with_level_shift(
            KpiKind::PageViewCount,
            EffectScope::TreatedInstances,
            -400.0,
        );
        b.deploy_change(ChangeKind::Upgrade, svc, 1, 60, effect, "pvc drop").unwrap();
        b.build()
    }

    #[test]
    fn replay_matches_direct_generation() {
        let world = test_world();
        let store = MetricStore::new();
        let stats = replay(&world, &store, 2).unwrap();
        assert_eq!(stats.minutes, 120);
        assert!(stats.frames >= 240, "frames {}", stats.frames);
        assert!(stats.records > 0);
        assert!(stats.aggregates > 0);

        // Every key the world defines must be in the store, equal to the
        // directly-generated series.
        for key in world.all_keys() {
            let direct = world.series(&key).unwrap();
            let stored = store.get(&key).unwrap_or_else(|| panic!("{key:?} missing"));
            assert_eq!(stored.len(), direct.len(), "{key:?} length");
            for (a, b) in stored.values().iter().zip(direct.values()) {
                assert!((a - b).abs() < 1e-9, "{key:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn subscribers_see_live_measurements() {
        let world = test_world();
        let store = MetricStore::new();
        let svc = world.topology().services().next().unwrap().0;
        let key = KpiKey::new(Entity::Service(svc), KpiKind::PageViewCount);
        let sub = store.subscribe(Some(vec![key]), 256);
        replay(&world, &store, 3).unwrap();
        // All 120 service aggregates should have been pushed in order.
        let mut minutes = Vec::new();
        while let Ok(m) = sub.receiver().try_recv() {
            minutes.push(m.minute);
        }
        assert_eq!(minutes.len(), 120);
        assert!(minutes.windows(2).all(|w| w[0] < w[1]), "out of order");
    }

    #[test]
    fn single_shard_replay_works() {
        let world = test_world();
        let store = MetricStore::new();
        let stats = replay(&world, &store, 1).unwrap();
        assert_eq!(stats.frames, 120);
    }

    #[test]
    fn lossy_agents_do_not_stall_and_store_self_heals() {
        let world = test_world();
        let store = MetricStore::new();
        let faults = FaultPlan { drop_frame_prob: 0.1, seed: 99 };
        let stats = replay_with_faults(&world, &store, 3, faults).unwrap();
        // ~10 % of frames lost.
        assert!(stats.frames < 3 * 120, "no frames were dropped");
        assert!(stats.frames > 3 * 120 * 7 / 10, "too many frames dropped");
        // Every key still holds a full-length series: the store fills the
        // gaps forward, so downstream windows never see holes.
        for key in world.all_keys() {
            let stored = store.get(&key).unwrap_or_else(|| panic!("{key:?} missing"));
            let direct = world.series(&key).unwrap();
            // The tail can be short when the final minutes' frames dropped.
            assert!(
                stored.len() + 4 >= direct.len(),
                "{key:?}: stored {} vs {}",
                stored.len(),
                direct.len()
            );
            assert!(stored.values().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn fault_plan_is_deterministic() {
        let p = FaultPlan { drop_frame_prob: 0.3, seed: 5 };
        let a: Vec<bool> = (0..100).map(|m| p.drops(1, m)).collect();
        let b: Vec<bool> = (0..100).map(|m| p.drops(1, m)).collect();
        assert_eq!(a, b);
        let dropped = a.iter().filter(|&&d| d).count();
        assert!((15..=45).contains(&dropped), "dropped {dropped}/100");
        assert!(!FaultPlan::none().drops(0, 0));
    }
}
