//! Agents and the collector: the live ingestion path.
//!
//! "The operations team deploys an agent on each server to monitor the
//! status of each instance and collect the KPIs of all instances
//! continuously. … the agent on each server delivers the measurements to a
//! centralized Hadoop-based database, which also stores the service KPIs
//! aggregated based on the KPIs of the instances" (§2.2).
//!
//! [`replay`] reproduces that dataflow over a frozen [`World`]: agent
//! threads (one per shard of servers) walk the timeline minute by minute,
//! encode each server's measurements into a [`crate::wire`] frame, and send
//! the frames over a crossbeam channel to a collector thread. The collector
//! decodes, appends server/instance measurements to the [`MetricStore`]
//! (which pushes to subscribers), and — once every shard has reported a
//! minute — computes and appends the service-level aggregates for that
//! minute.
//!
//! [`replay_with_faults`] runs the same dataflow through a deterministic
//! [`crate::faults::FaultSchedule`]: agents skip dropped frames, glitch sensor readings,
//! mangle bytes in flight, hold delayed frames back, and send duplicates.
//! The collector is hardened accordingly — undecodable frames are
//! quarantined (never panic), duplicates are suppressed per agent,
//! non-finite values are rejected, and minute finalization waits out the
//! schedule's reorder horizon so a delayed frame is never mistaken for a
//! lost one. Service aggregation sums instance values in instance-id order,
//! so the aggregate bytes are identical no matter how threads interleave.

use crate::faults::HealMode;
use crate::kpi::{Aggregation, KpiKey, KpiKind};
use crate::store::MetricStore;
use crate::wire::{decode_frame, encode_frame, WireRecord};
use crate::world::{SimError, World};
use bytes::Bytes;
use crossbeam::channel::bounded;
use funnel_timeseries::series::TimeSeries;
use funnel_topology::impact::Entity;
use funnel_topology::model::{ServerId, ServiceId};
use std::collections::{BTreeMap, HashMap, HashSet};

pub use crate::faults::FaultPlan;

/// Largest record magnitude the collector accepts. Anything beyond this is
/// treated as corruption, not measurement — see the rejection site for the
/// rationale.
const MAX_PLAUSIBLE_VALUE: f64 = 1e12;

/// Counters describing one replay run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Unique wire frames the collector accepted (dropped, duplicate, and
    /// quarantined frames excluded).
    pub frames: usize,
    /// Individual measurements ingested (before aggregation).
    pub records: usize,
    /// Minutes replayed.
    pub minutes: usize,
    /// Service-aggregate measurements produced by the collector.
    pub aggregates: usize,
    /// Frames the fault schedule dropped before delivery.
    pub dropped_frames: usize,
    /// Frames the fault schedule held back and delivered late.
    pub delayed_frames: usize,
    /// Duplicate deliveries the collector suppressed.
    pub duplicate_frames: usize,
    /// Frames that failed to decode and were quarantined.
    pub quarantined_frames: usize,
    /// Records whose value was scaled by an injected sensor glitch.
    pub glitched_records: usize,
    /// Records the collector rejected for carrying a non-finite or
    /// implausibly large value (byte corruption can turn a valid f64 into
    /// NaN/∞ — or into a "valid" number of magnitude 1e300 that would
    /// silently poison every aggregate it touches).
    pub invalid_records: usize,
    /// Agent shard threads that panicked mid-replay. Their already-sent
    /// frames were ingested; only their local fault counters are lost.
    pub crashed_agents: usize,
    /// Frames lost to a network partition: generated while the shard was
    /// dark with no buffering (silent drop), evicted from a full agent-side
    /// queue, or still queued when the replay ended inside the window.
    pub partition_lost_frames: usize,
    /// Late frames from a healed partition routed to the collector's
    /// backfill stage (their minute lay behind the sending agent's own
    /// watermark by more than the reorder horizon).
    pub backfilled_frames: usize,
    /// Individual measurements written into historical bins by backfill.
    pub backfilled_records: usize,
    /// Late measurements refused by backfill duplicate suppression (the
    /// bin already held a real measurement).
    pub backfill_rejected_records: usize,
    /// Service aggregates that only completed once backfill merged a
    /// healed span's instance cells.
    pub backfilled_aggregates: usize,
}

/// Replays the whole world through the agent → collector path into `store`,
/// using `shards` agent threads.
///
/// # Errors
///
/// Propagates series-generation errors (cannot occur for a well-formed
/// world).
pub fn replay(world: &World, store: &MetricStore, shards: usize) -> Result<ReplayStats, SimError> {
    replay_with_faults(world, store, shards, FaultPlan::none())
}

/// [`replay`] under a deterministic [`FaultPlan`].
///
/// The collector uses per-agent watermarks (frames within one agent arrive
/// in send order) to finalize minutes whose frames will never arrive, so a
/// lossy agent cannot stall service aggregation. When the plan delays
/// frames, finalization additionally waits out the schedule's reorder
/// horizon before declaring a frame lost. Service aggregates are only
/// emitted for minutes where *every* instance reported (partial minutes
/// leave a gap the store fills forward — and records in its coverage mask —
/// exactly like the production substrate).
///
/// # Errors
///
/// Propagates series-generation errors (cannot occur for a well-formed
/// world).
pub fn replay_with_faults(
    world: &World,
    store: &MetricStore,
    shards: usize,
    faults: FaultPlan,
) -> Result<ReplayStats, SimError> {
    replay_prefix(world, store, shards, faults, usize::MAX)
}

/// [`replay_with_faults`] truncated to the first `minutes` of the world's
/// timeline — a replay stopped mid-flight. Its purpose is interim
/// assessment during an open partition: a cutoff inside a
/// [`crate::faults::PartitionWindow`] leaves the agents' buffered queues
/// undrained (the link never came back inside the replayed span), so the
/// store shows the coverage gap exactly as a live operator would see it.
/// A shard still dark at the cutoff loses its queue, as agents that never
/// heal eventually do.
///
/// # Errors
///
/// Propagates series-generation errors (cannot occur for a well-formed
/// world).
pub fn replay_prefix(
    world: &World,
    store: &MetricStore,
    shards: usize,
    faults: FaultPlan,
    minutes: usize,
) -> Result<ReplayStats, SimError> {
    // Observability (write-only; no-op unless `funnel_obs::enable` ran):
    // one span for the whole replay, counters at each fault-path site.
    let replay_span = funnel_obs::span!(funnel_obs::names::SPAN_COLLECT_REPLAY);
    let shards = shards.max(1);
    let duration = world.config().duration.min(minutes);
    let start = world.config().start;
    if faults.subscriber_capacity.is_some() {
        store.set_subscription_capacity_limit(faults.subscriber_capacity);
    }
    let schedule = faults.schedule();
    let horizon = schedule.reorder_horizon();

    // Pre-generate per-server payload series (the "agent's local state").
    struct ShardData {
        // (key, series) pairs this shard reports, grouped by server.
        servers: Vec<Vec<(KpiKey, TimeSeries)>>,
    }
    let mut shard_data: Vec<ShardData> = (0..shards)
        .map(|_| ShardData {
            servers: Vec::new(),
        })
        .collect();

    for sid in 0..world.topology().server_count() {
        let server = ServerId(sid as u32);
        let mut payload = Vec::new();
        for kind in KpiKind::SERVER_KINDS {
            let key = KpiKey::new(Entity::Server(server), kind);
            payload.push((key, world.series(&key)?));
        }
        for inst in world.topology().instances() {
            if inst.server != server {
                continue;
            }
            for &kind in world.kinds_of_service(inst.service) {
                let key = KpiKey::new(Entity::Instance(inst.id), kind);
                payload.push((key, world.series(&key)?));
            }
        }
        shard_data[sid % shards].servers.push(payload);
    }

    // instance → service map for the collector's aggregation.
    let mut instance_service: HashMap<u32, ServiceId> = HashMap::new();
    for inst in world.topology().instances() {
        instance_service.insert(inst.id.0, inst.service);
    }
    let service_sizes: HashMap<ServiceId, usize> = world
        .topology()
        .services()
        .map(|(id, _)| (id, world.topology().instances_of(id).len()))
        .collect();

    let (tx, rx) = bounded::<Bytes>(shards * 4);
    let mut stats = ReplayStats {
        minutes: duration,
        ..Default::default()
    };

    /// Per-agent counters returned by each shard thread.
    #[derive(Default)]
    struct AgentStats {
        dropped: usize,
        delayed: usize,
        glitched: usize,
        partition_lost: usize,
    }

    std::thread::scope(|scope| {
        // Agent shards.
        let mut handles = Vec::with_capacity(shards);
        for (shard_idx, data) in shard_data.iter().enumerate() {
            let tx = tx.clone();
            let schedule = &schedule;
            handles.push(scope.spawn(move || {
                let mut local = AgentStats::default();
                // Frames held back by the transport: (release minute, bytes).
                let mut held: Vec<(u64, Bytes)> = Vec::new();
                // Frames generated while partitioned, waiting for heal, in
                // ascending minute order (each keeps its original-minute
                // stamp in the wire header). The heal mode they were
                // buffered under governs the drain rate.
                let mut backlog: Vec<Bytes> = Vec::new();
                let mut backlog_heal = HealMode::SilentDrop;
                let send = |frame: Bytes, copies: u32| {
                    for _ in 0..=copies {
                        if tx.send(frame.clone()).is_err() {
                            return false;
                        }
                    }
                    true
                };
                let build_records = |minute: u64, local: &mut AgentStats| {
                    let mut records = Vec::new();
                    for server_payload in &data.servers {
                        for (key, series) in server_payload {
                            if let Some(mut value) = series.at(minute) {
                                if let Some(factor) =
                                    schedule.glitch(shard_idx, minute, records.len())
                                {
                                    value *= factor;
                                    local.glitched += 1;
                                }
                                records.push(WireRecord { key: *key, value });
                            }
                        }
                    }
                    records
                };
                for minute_idx in 0..duration {
                    let minute = start + minute_idx as u64;
                    // Release previously delayed frames whose time has come
                    // (before this minute's frame, preserving the reorder
                    // horizon: a frame for m arrives by agent minute
                    // m + max_delay). Delayed frames were already accepted
                    // by the transport before any partition began, so they
                    // deliver even while the shard's uplink is dark.
                    held.sort_by_key(|(release, _)| *release);
                    while held.first().is_some_and(|(release, _)| *release <= minute) {
                        let (_, frame) = held.remove(0);
                        if !send(frame, 0) {
                            return local;
                        }
                    }
                    if let Some(window) = schedule.partition_at(shard_idx, minute) {
                        // Dark minute: the sensor still reads (glitches
                        // apply) but nothing enters the transport, so the
                        // per-frame fault channels never roll for this
                        // frame. The frame keeps its original-minute stamp
                        // — that stamp is what later makes it a backfill
                        // candidate rather than a live measurement.
                        match window.heal {
                            HealMode::SilentDrop => local.partition_lost += 1,
                            heal => {
                                let records = build_records(minute, &mut local);
                                backlog.push(encode_frame(minute, shard_idx as u32, &records));
                                backlog_heal = heal;
                                if backlog.len() > heal.queue_bound() {
                                    // Bounded agent-side queue: oldest out.
                                    backlog.remove(0);
                                    local.partition_lost += 1;
                                }
                            }
                        }
                        continue;
                    }
                    // Link is up: drain queued dark-span frames per the heal
                    // mode, oldest first, ahead of this minute's live frame.
                    if !backlog.is_empty() {
                        let burst = match backlog_heal {
                            HealMode::SilentDrop => 0,
                            HealMode::BufferedBurst { .. } => backlog.len(),
                            HealMode::StaggeredCatchUp { per_minute, .. } => {
                                per_minute.min(backlog.len())
                            }
                        };
                        for frame in backlog.drain(..burst) {
                            // Queued frames skip the per-frame fault
                            // channels: they were never in flight during
                            // the window and the uplink is live now.
                            if !send(frame, 0) {
                                return local;
                            }
                        }
                    }
                    let fate = schedule.frame_fate(shard_idx, minute);
                    if fate.dropped {
                        local.dropped += 1;
                        continue; // frame lost in transit
                    }
                    let records = build_records(minute, &mut local);
                    // One frame per shard per minute (empty shards included,
                    // so the collector's completeness count works).
                    let mut frame = encode_frame(minute, shard_idx as u32, &records);
                    if fate.truncate_frac.is_some() || fate.corrupt.is_some() {
                        frame = Bytes::from(schedule.mangle(&fate, &frame));
                    }
                    if fate.delay_minutes > 0 {
                        local.delayed += 1;
                        held.push((minute + fate.delay_minutes, frame));
                        continue;
                    }
                    if !send(frame, fate.duplicates) {
                        return local;
                    }
                }
                // Timeline over: flush anything still in flight, in release
                // order.
                held.sort_by_key(|(release, _)| *release);
                for (_, frame) in held {
                    if !send(frame, 0) {
                        return local;
                    }
                }
                // A shard still dark at the cutoff loses its queue (the
                // window never healed inside the replayed span); otherwise
                // the link is up and the leftover backlog flushes.
                let last_minute = start + duration.saturating_sub(1) as u64;
                if duration > 0 && schedule.is_partitioned(shard_idx, last_minute) {
                    local.partition_lost += backlog.len();
                    backlog.clear();
                }
                for frame in backlog {
                    if !send(frame, 0) {
                        return local;
                    }
                }
                local
            }));
        }
        drop(tx);

        // Collector: decode, store, aggregate when a minute completes.
        // Per (service, kind): the (instance id, value) pairs seen so far.
        // Summation happens in instance-id order at finalize time, so the
        // aggregate is bit-identical no matter how frames interleave. A
        // BTreeMap (not HashMap) fixes the order in which a finalized
        // minute's aggregates are appended and published to subscribers —
        // hasher order would leak into the subscriber-visible stream.
        type MinuteAccs = BTreeMap<(ServiceId, KpiKind), Vec<(u32, f64)>>;
        let mut pending: BTreeMap<u64, (usize, MinuteAccs)> = BTreeMap::new();
        // Per-agent watermark: frames within one agent arrive in send order,
        // so once agent a's watermark passes minute m + reorder horizon
        // without a frame for m, that frame is lost — scheduling skew
        // between agents can never be mistaken for loss, and a delayed frame
        // is never declared lost inside the horizon.
        let mut watermarks: Vec<Option<u64>> = vec![None; shards];
        // Per-agent minutes already accepted, for duplicate suppression.
        let mut seen: Vec<HashSet<u64>> = vec![HashSet::new(); shards];
        // Late frames from healed partitions, staged keyed by
        // (shard, minute): a BTreeMap so the post-stream flush walks them
        // in deterministic (shard, minute) order no matter how the agent
        // threads interleaved.
        let mut backfill_stage: BTreeMap<(usize, u64), Vec<WireRecord>> = BTreeMap::new();
        // Aggregation cells of finalized-but-incomplete minutes, kept (not
        // discarded) so a healed span's backfilled cells can complete them.
        let mut partial: BTreeMap<u64, MinuteAccs> = BTreeMap::new();

        let finalize = |minute: u64,
                        accs: MinuteAccs,
                        stats: &mut ReplayStats,
                        partial: &mut BTreeMap<u64, MinuteAccs>| {
            for ((svc, kind), mut cells) in accs {
                if cells.is_empty() {
                    continue;
                }
                // Only aggregate when every instance reported; keep
                // partial minutes around — a partition heal may still
                // backfill the missing cells.
                if cells.len() != *service_sizes.get(&svc).unwrap_or(&0) {
                    partial
                        .entry(minute)
                        .or_default()
                        .entry((svc, kind))
                        .or_default()
                        .append(&mut cells);
                    continue;
                }
                cells.sort_by_key(|(id, _)| *id);
                let sum: f64 = cells.iter().map(|(_, v)| v).sum();
                let value = match kind.aggregation() {
                    Aggregation::Sum => sum,
                    Aggregation::Mean => sum / cells.len() as f64,
                };
                store.append(KpiKey::new(Entity::Service(svc), kind), minute, value);
                stats.aggregates += 1;
            }
        };

        while let Ok(frame) = rx.recv() {
            let decoded = match decode_frame(frame) {
                Ok(d) => d,
                Err(_) => {
                    // Undecodable bytes: quarantine, never panic. The frame
                    // is gone; the watermark mechanism treats it as lost.
                    stats.quarantined_frames += 1;
                    store.note_quarantined_frame();
                    funnel_obs::counter_add(funnel_obs::names::FRAMES_QUARANTINED, 1);
                    continue;
                }
            };
            let agent = decoded.agent_id as usize;
            if agent >= shards {
                // Header claims an agent we never started: quarantine.
                stats.quarantined_frames += 1;
                store.note_quarantined_frame();
                funnel_obs::counter_add(funnel_obs::names::FRAMES_QUARANTINED, 1);
                continue;
            }
            if !seen[agent].insert(decoded.minute) {
                stats.duplicate_frames += 1;
                funnel_obs::counter_add(funnel_obs::names::FRAMES_DUP_SUPPRESSED, 1);
                continue;
            }
            stats.frames += 1;
            funnel_obs::counter_add(funnel_obs::names::FRAMES_INGESTED, 1);
            // A frame whose original-minute stamp lies behind this agent's
            // own watermark by more than the reorder horizon cannot be a
            // delayed live frame — it is a healed partition's backlog.
            // Stage it for the deterministic post-stream backfill flush
            // instead of disturbing watermarks or minute finalization. The
            // routing test is per-agent (frames within one agent arrive in
            // send order), so it is independent of cross-shard thread
            // interleaving.
            if watermarks[agent].is_some_and(|w| decoded.minute + horizon < w) {
                stats.backfilled_frames += 1;
                funnel_obs::counter_add(funnel_obs::names::FRAMES_BACKFILLED, 1);
                backfill_stage.insert((agent, decoded.minute), decoded.records);
                continue;
            }
            let w = &mut watermarks[agent];
            *w = Some(w.map_or(decoded.minute, |x| x.max(decoded.minute)));
            let entry = pending.entry(decoded.minute).or_default();
            entry.0 += 1;
            for rec in &decoded.records {
                // Plausibility gate, not just finiteness: corrupted bytes
                // can decode to a perfectly valid f64 of magnitude ~1e300,
                // which would dominate every sum, mean, and DiD estimate
                // downstream. No KPI this pipeline measures (counts,
                // millisecond delays, utilization percentages) comes within
                // orders of magnitude of the bound, even glitch-amplified.
                if !rec.value.is_finite() || rec.value.abs() > MAX_PLAUSIBLE_VALUE {
                    stats.invalid_records += 1;
                    continue;
                }
                stats.records += 1;
                store.append(rec.key, decoded.minute, rec.value);
                if let Entity::Instance(i) = rec.key.entity {
                    if let Some(&svc) = instance_service.get(&i.0) {
                        entry
                            .1
                            .entry((svc, rec.key.kind))
                            .or_default()
                            .push((i.0, rec.value));
                    }
                }
            }
            // Finalize a minute once every agent has either delivered it or
            // demonstrably moved past its reorder horizon (its own watermark
            // is beyond minute + horizon) — exact under any thread
            // scheduling, robust to loss, and safe under delay-induced
            // reordering.
            while let Some((&minute, entry)) = pending.iter().next() {
                let complete = entry.0 >= shards;
                let all_past = watermarks
                    .iter()
                    .all(|w| w.is_some_and(|x| x >= minute + horizon));
                if !complete && !all_past {
                    break;
                }
                if let Some((_, accs)) = pending.remove(&minute) {
                    finalize(minute, accs, &mut stats, &mut partial);
                }
            }
        }
        // Channel closed: flush everything left.
        for (minute, (_, accs)) in std::mem::take(&mut pending) {
            finalize(minute, accs, &mut stats, &mut partial);
        }
        // Backfill flush: healed-span frames enter historical bins in
        // (shard, minute) order — deterministic regardless of how agent
        // threads interleaved during the replay. Each record passes the
        // same plausibility gate as live ingestion, and the store's own
        // duplicate suppression (first write wins per real bin) guards
        // against re-delivery races.
        for ((_, minute), records) in backfill_stage {
            for rec in records {
                if !rec.value.is_finite() || rec.value.abs() > MAX_PLAUSIBLE_VALUE {
                    stats.invalid_records += 1;
                    store.note_backfill_rejected();
                    funnel_obs::counter_add(funnel_obs::names::BACKFILL_REJECTED, 1);
                    continue;
                }
                if store.backfill(rec.key, minute, rec.value) {
                    stats.backfilled_records += 1;
                    funnel_obs::counter_add(funnel_obs::names::RECORDS_BACKFILLED, 1);
                } else {
                    stats.backfill_rejected_records += 1;
                    funnel_obs::counter_add(funnel_obs::names::BACKFILL_REJECTED, 1);
                }
                if let Entity::Instance(i) = rec.key.entity {
                    if let Some(&svc) = instance_service.get(&i.0) {
                        partial
                            .entry(minute)
                            .or_default()
                            .entry((svc, rec.key.kind))
                            .or_default()
                            .push((i.0, rec.value));
                    }
                }
            }
        }
        // Service aggregates the backfill completed, ascending minute then
        // (service, kind). Emitted through the backfill path too: their
        // minute is historical for the (forward-filled) aggregate series.
        for (minute, accs) in partial {
            for ((svc, kind), mut cells) in accs {
                if cells.len() != *service_sizes.get(&svc).unwrap_or(&0) || cells.is_empty() {
                    continue;
                }
                cells.sort_by_key(|(id, _)| *id);
                let sum: f64 = cells.iter().map(|(_, v)| v).sum();
                let value = match kind.aggregation() {
                    Aggregation::Sum => sum,
                    Aggregation::Mean => sum / cells.len() as f64,
                };
                if store.backfill(KpiKey::new(Entity::Service(svc), kind), minute, value) {
                    stats.backfilled_aggregates += 1;
                }
            }
        }
        for handle in handles {
            // A crashed agent shard must not take the collector down with
            // it: the frames it sent before dying were already ingested,
            // only its local fault counters are lost. Count the crash so
            // operators see the degradation instead of a panic.
            match handle.join() {
                Ok(local) => {
                    stats.dropped_frames += local.dropped;
                    stats.delayed_frames += local.delayed;
                    stats.glitched_records += local.glitched;
                    stats.partition_lost_frames += local.partition_lost;
                }
                Err(_) => stats.crashed_agents += 1,
            }
        }
    });

    // Record the replay span and merge this thread's span buffer now, so a
    // snapshot taken right after `replay` returns already contains it.
    drop(replay_span);
    funnel_obs::flush_thread();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::{ChangeEffect, EffectScope};
    use crate::world::{SimConfig, WorldBuilder};
    use funnel_topology::change::ChangeKind;

    fn test_world() -> World {
        let mut b = WorldBuilder::new(SimConfig {
            seed: 11,
            start: 0,
            duration: 120,
        });
        let svc = b.add_service("prod.web", 3).unwrap();
        let effect = ChangeEffect::none().with_level_shift(
            KpiKind::PageViewCount,
            EffectScope::TreatedInstances,
            -400.0,
        );
        b.deploy_change(ChangeKind::Upgrade, svc, 1, 60, effect, "pvc drop")
            .unwrap();
        b.build()
    }

    #[test]
    fn replay_matches_direct_generation() {
        let world = test_world();
        let store = MetricStore::new();
        let stats = replay(&world, &store, 2).unwrap();
        assert_eq!(stats.minutes, 120);
        assert!(stats.frames >= 240, "frames {}", stats.frames);
        assert!(stats.records > 0);
        assert!(stats.aggregates > 0);
        assert_eq!(stats.quarantined_frames, 0);
        assert_eq!(stats.duplicate_frames, 0);

        // Every key the world defines must be in the store, equal to the
        // directly-generated series.
        for key in world.all_keys() {
            let direct = world.series(&key).unwrap();
            let stored = store.get(&key).unwrap_or_else(|| panic!("{key:?} missing"));
            assert_eq!(stored.len(), direct.len(), "{key:?} length");
            for (a, b) in stored.values().iter().zip(direct.values()) {
                assert!((a - b).abs() < 1e-9, "{key:?}: {a} vs {b}");
            }
            // A clean replay measures every minute.
            assert_eq!(store.coverage(&key, 0, 120), 1.0, "{key:?} coverage");
        }
    }

    #[test]
    fn subscribers_see_live_measurements() {
        let world = test_world();
        let store = MetricStore::new();
        let svc = world.topology().services().next().unwrap().0;
        let key = KpiKey::new(Entity::Service(svc), KpiKind::PageViewCount);
        let sub = store.subscribe(Some(vec![key]), 256);
        replay(&world, &store, 3).unwrap();
        // All 120 service aggregates should have been pushed in order.
        let mut minutes = Vec::new();
        while let Ok(m) = sub.receiver().try_recv() {
            minutes.push(m.minute);
        }
        assert_eq!(minutes.len(), 120);
        assert!(minutes.windows(2).all(|w| w[0] < w[1]), "out of order");
        assert_eq!(sub.dropped(), 0);
    }

    #[test]
    fn single_shard_replay_works() {
        let world = test_world();
        let store = MetricStore::new();
        let stats = replay(&world, &store, 1).unwrap();
        assert_eq!(stats.frames, 120);
    }

    #[test]
    fn lossy_agents_do_not_stall_and_store_self_heals() {
        let world = test_world();
        let store = MetricStore::new();
        let faults = FaultPlan {
            drop_frame_prob: 0.1,
            seed: 99,
            ..FaultPlan::none()
        };
        let stats = replay_with_faults(&world, &store, 3, faults).unwrap();
        // ~10 % of frames lost.
        assert!(stats.frames < 3 * 120, "no frames were dropped");
        assert!(stats.frames > 3 * 120 * 7 / 10, "too many frames dropped");
        assert_eq!(stats.frames + stats.dropped_frames, 3 * 120);
        // Every key still holds a full-length series: the store fills the
        // gaps forward, so downstream windows never see holes.
        for key in world.all_keys() {
            let stored = store.get(&key).unwrap_or_else(|| panic!("{key:?} missing"));
            let direct = world.series(&key).unwrap();
            // The tail can be short when the final minutes' frames dropped.
            assert!(
                stored.len() + 4 >= direct.len(),
                "{key:?}: stored {} vs {}",
                stored.len(),
                direct.len()
            );
            assert!(stored.values().iter().all(|v| v.is_finite()));
            // ... but the coverage mask remembers what was really measured.
            let coverage = store.coverage(&key, 0, 120);
            assert!(coverage < 1.0, "{key:?}: loss must show in the mask");
            assert!(coverage > 0.5, "{key:?}: coverage {coverage}");
        }
    }

    #[test]
    fn faulted_replay_is_deterministic_and_measured_minutes_are_exact() {
        let world = test_world();
        let plan = FaultPlan {
            seed: 42,
            drop_frame_prob: 0.15,
            delay_prob: 0.2,
            max_delay_minutes: 3,
            duplicate_prob: 0.2,
            ..FaultPlan::none()
        };

        let store_a = MetricStore::new();
        let stats_a = replay_with_faults(&world, &store_a, 3, plan.clone()).unwrap();
        let store_b = MetricStore::new();
        let stats_b = replay_with_faults(&world, &store_b, 3, plan.clone()).unwrap();

        // Same seed + plan ⇒ identical stats and bit-identical series.
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.delayed_frames > 0, "delay channel never fired");
        assert!(
            stats_a.duplicate_frames > 0,
            "duplicate channel never fired"
        );
        for key in world.all_keys() {
            assert_eq!(store_a.get(&key), store_b.get(&key), "{key:?} diverged");
            assert_eq!(
                store_a.mask(&key),
                store_b.mask(&key),
                "{key:?} mask diverged"
            );
        }

        // Every minute the mask says was measured carries the true value:
        // duplicates were not double-counted and reordering did not
        // misattribute minutes. (Service aggregates included — sorted-sum
        // keeps them exact.)
        for key in world.all_keys() {
            let direct = world.series(&key).unwrap();
            let stored = store_a.get(&key).unwrap();
            let mask = store_a.mask(&key).unwrap();
            for minute in 0..120u64 {
                if !mask.is_present(minute) {
                    continue;
                }
                let (Some(got), Some(want)) = (stored.at(minute), direct.at(minute)) else {
                    panic!("{key:?}@{minute} missing despite mask");
                };
                assert!(
                    (got - want).abs() < 1e-9,
                    "{key:?}@{minute}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn disabled_faults_match_clean_replay_exactly() {
        let world = test_world();
        let clean = MetricStore::new();
        let clean_stats = replay(&world, &clean, 2).unwrap();
        let faulted = MetricStore::new();
        let none_stats = replay_with_faults(&world, &faulted, 2, FaultPlan::none()).unwrap();
        assert_eq!(clean_stats, none_stats);
        for key in world.all_keys() {
            assert_eq!(clean.get(&key), faulted.get(&key), "{key:?} diverged");
        }
    }

    #[test]
    fn corruption_is_quarantined_never_panics() {
        let world = test_world();
        let store = MetricStore::new();
        let plan = FaultPlan {
            seed: 7,
            truncate_prob: 0.15,
            corrupt_prob: 0.15,
            ..FaultPlan::none()
        };
        let stats = replay_with_faults(&world, &store, 3, plan).unwrap();
        assert!(
            stats.quarantined_frames > 0,
            "corruption channel never fired"
        );
        assert_eq!(
            store.stats().quarantined_frames as usize,
            stats.quarantined_frames
        );
        // Whatever survived decoding is finite (non-finite corrupted values
        // are rejected at the collector).
        for key in world.all_keys() {
            if let Some(series) = store.get(&key) {
                assert!(series.values().iter().all(|v| v.is_finite()), "{key:?}");
            }
        }
    }

    #[test]
    fn glitches_scale_measured_values() {
        let world = test_world();
        let store = MetricStore::new();
        let plan = FaultPlan {
            seed: 5,
            glitch_prob: 0.05,
            glitch_factor: 100.0,
            ..FaultPlan::none()
        };
        let stats = replay_with_faults(&world, &store, 2, plan).unwrap();
        assert!(stats.glitched_records > 0, "glitch channel never fired");
        // No loss channels: every frame still arrives.
        assert_eq!(stats.frames, 2 * 120);
    }
}
