//! Effects: what software changes and external factors do to KPIs.
//!
//! A [`ChangeEffect`] describes the KPI perturbations one software change
//! introduces on its *treated* entities; the world expands it into concrete
//! ground-truth items. An [`ExternalShock`] models the confounders the DiD
//! step must exclude — network incidents, attacks, flash crowds — which hit
//! *every* entity of the scoped services regardless of treatment.

use crate::kpi::KpiKind;
use funnel_timeseries::inject::ChangeShape;
use funnel_topology::model::ServiceId;
use serde::{Deserialize, Serialize};

/// Which treated entities one KPI effect lands on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EffectScope {
    /// The KPI of every treated instance (and hence the changed service's
    /// aggregate).
    TreatedInstances,
    /// The KPI of every treated server.
    TreatedServers,
    /// The KPI of an explicit subset of treated servers — e.g. Fig. 6's
    /// class-A Redis servers shifting down while class B shifts up under
    /// one configuration change.
    Servers(Vec<funnel_topology::model::ServerId>),
    /// The aggregate KPI of an affected (related) service — modelling
    /// impact that propagates across the request graph.
    AffectedService(ServiceId),
}

/// One KPI perturbation caused by a software change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KpiEffect {
    /// Which KPI moves.
    pub kind: KpiKind,
    /// Where it moves.
    pub scope: EffectScope,
    /// How it moves (level shift / ramp / spike), in absolute KPI units
    /// *per instance or server*.
    pub shape: ChangeShape,
    /// Minutes after the deployment before the effect begins (0 = level
    /// shift immediately after the change).
    pub delay_minutes: u32,
}

/// The full KPI footprint of one software change (empty = a change with no
/// performance impact, the common case).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChangeEffect {
    /// Individual KPI perturbations.
    pub effects: Vec<KpiEffect>,
}

impl ChangeEffect {
    /// A change with no KPI impact.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the change has any impact.
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }

    /// Builder-style: adds a level shift of `delta` on `kind` over `scope`.
    pub fn with_level_shift(mut self, kind: KpiKind, scope: EffectScope, delta: f64) -> Self {
        self.effects.push(KpiEffect {
            kind,
            scope,
            shape: ChangeShape::LevelShift { delta },
            delay_minutes: 0,
        });
        self
    }

    /// Builder-style: adds a ramp to `delta` over `duration` minutes.
    pub fn with_ramp(
        mut self,
        kind: KpiKind,
        scope: EffectScope,
        delta: f64,
        duration: u32,
    ) -> Self {
        self.effects.push(KpiEffect {
            kind,
            scope,
            shape: ChangeShape::Ramp {
                delta,
                duration_minutes: duration,
            },
            delay_minutes: 0,
        });
        self
    }

    /// Builder-style: adds an arbitrary effect.
    pub fn with_effect(mut self, effect: KpiEffect) -> Self {
        self.effects.push(effect);
        self
    }
}

/// A non-software confounder: hits all entities of the scoped services.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExternalShock {
    /// Services whose entities are hit (instances, their servers, and the
    /// service aggregate).
    pub services: Vec<ServiceId>,
    /// Which KPI moves.
    pub kind: KpiKind,
    /// Shape of the perturbation, per instance/server.
    pub shape: ChangeShape,
    /// Absolute onset minute.
    pub onset: funnel_timeseries::series::MinuteBin,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_effects() {
        let e = ChangeEffect::none()
            .with_level_shift(
                KpiKind::MemoryUtilization,
                EffectScope::TreatedServers,
                12.0,
            )
            .with_ramp(
                KpiKind::PageViewResponseDelay,
                EffectScope::TreatedInstances,
                40.0,
                30,
            );
        assert_eq!(e.effects.len(), 2);
        assert!(!e.is_empty());
        assert!(ChangeEffect::none().is_empty());
        assert!(matches!(
            e.effects[1].shape,
            ChangeShape::Ramp {
                duration_minutes: 30,
                ..
            }
        ));
    }
}
