//! The KPI catalogue.
//!
//! Three KPI levels exist (§2.2, Fig. 1): **server KPIs** parsed from system
//! logs by the agent, **instance KPIs** recorded as the process serves
//! requests, and **service KPIs** aggregated from the instance KPIs. The
//! paper's evaluation uses CPU context switch count (variable) and memory
//! utilization (stationary) on every server, plus service-defined
//! instance/service KPIs (§4.1); the case studies add NIC throughput
//! (Fig. 6) and effective advertisement clicks (Fig. 7).

use funnel_timeseries::generate::KpiClass;
use funnel_topology::impact::Entity;
use serde::{Deserialize, Serialize};

/// Every KPI kind the simulator produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KpiKind {
    // ---- server KPIs (collected by the agent from system logs) ----
    /// CPU utilization percentage of a server.
    CpuUtilization,
    /// Memory utilization percentage of a server (stationary; the paper's
    /// memory-leak canary).
    MemoryUtilization,
    /// NIC throughput of a server (variable; Fig. 6's KPI).
    NicThroughput,
    /// CPU context switches per minute (variable; the paper's efficiency /
    /// thread-count canary).
    CpuContextSwitch,
    // ---- instance KPIs (recorded as requests are served) ----
    /// Page views served per minute (seasonal).
    PageViewCount,
    /// Mean page view response delay (stationary).
    PageViewResponseDelay,
    /// Access failures per minute (variable).
    AccessFailureCount,
    /// Effective (human, per anti-cheating) advertisement clicks per minute
    /// (seasonal; Fig. 7's KPI).
    EffectiveClickCount,
}

/// How instance KPIs aggregate into the service KPI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Service value = sum of instance values (counts).
    Sum,
    /// Service value = mean of instance values (delays, utilizations).
    Mean,
}

impl KpiKind {
    /// All server-level KPI kinds.
    pub const SERVER_KINDS: [KpiKind; 4] = [
        KpiKind::CpuUtilization,
        KpiKind::MemoryUtilization,
        KpiKind::NicThroughput,
        KpiKind::CpuContextSwitch,
    ];

    /// The default instance-level KPI kinds every web-style service carries.
    pub const INSTANCE_KINDS: [KpiKind; 3] = [
        KpiKind::PageViewCount,
        KpiKind::PageViewResponseDelay,
        KpiKind::AccessFailureCount,
    ];

    /// Whether this kind lives on servers (vs instances/services).
    pub fn is_server_kind(self) -> bool {
        matches!(
            self,
            KpiKind::CpuUtilization
                | KpiKind::MemoryUtilization
                | KpiKind::NicThroughput
                | KpiKind::CpuContextSwitch
        )
    }

    /// The paper's character class of this KPI (§4.2.1).
    pub fn class(self) -> KpiClass {
        match self {
            KpiKind::MemoryUtilization
            | KpiKind::CpuUtilization
            | KpiKind::PageViewResponseDelay => KpiClass::Stationary,
            KpiKind::NicThroughput | KpiKind::CpuContextSwitch | KpiKind::AccessFailureCount => {
                KpiClass::Variable
            }
            KpiKind::PageViewCount | KpiKind::EffectiveClickCount => KpiClass::Seasonal,
        }
    }

    /// How the service KPI aggregates instance measurements.
    pub fn aggregation(self) -> Aggregation {
        match self {
            KpiKind::PageViewCount | KpiKind::AccessFailureCount | KpiKind::EffectiveClickCount => {
                Aggregation::Sum
            }
            KpiKind::PageViewResponseDelay
            | KpiKind::CpuUtilization
            | KpiKind::MemoryUtilization
            | KpiKind::NicThroughput
            | KpiKind::CpuContextSwitch => Aggregation::Mean,
        }
    }

    /// Typical base level for the generator (per instance / per server).
    pub fn base_level(self) -> f64 {
        match self {
            KpiKind::CpuUtilization => 45.0,
            KpiKind::MemoryUtilization => 62.0,
            KpiKind::NicThroughput => 480.0,      // Mbit/s
            KpiKind::CpuContextSwitch => 9_000.0, // per minute
            KpiKind::PageViewCount => 1_200.0,
            KpiKind::PageViewResponseDelay => 180.0, // ms
            KpiKind::AccessFailureCount => 12.0,
            KpiKind::EffectiveClickCount => 300.0,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            KpiKind::CpuUtilization => "cpu_utilization",
            KpiKind::MemoryUtilization => "memory_utilization",
            KpiKind::NicThroughput => "nic_throughput",
            KpiKind::CpuContextSwitch => "cpu_context_switch",
            KpiKind::PageViewCount => "page_view_count",
            KpiKind::PageViewResponseDelay => "page_view_response_delay",
            KpiKind::AccessFailureCount => "access_failure_count",
            KpiKind::EffectiveClickCount => "effective_click_count",
        }
    }

    /// Stable numeric tag for the wire format.
    pub fn tag(self) -> u8 {
        match self {
            KpiKind::CpuUtilization => 0,
            KpiKind::MemoryUtilization => 1,
            KpiKind::NicThroughput => 2,
            KpiKind::CpuContextSwitch => 3,
            KpiKind::PageViewCount => 4,
            KpiKind::PageViewResponseDelay => 5,
            KpiKind::AccessFailureCount => 6,
            KpiKind::EffectiveClickCount => 7,
        }
    }

    /// Inverse of [`KpiKind::tag`].
    pub fn from_tag(tag: u8) -> Option<KpiKind> {
        Some(match tag {
            0 => KpiKind::CpuUtilization,
            1 => KpiKind::MemoryUtilization,
            2 => KpiKind::NicThroughput,
            3 => KpiKind::CpuContextSwitch,
            4 => KpiKind::PageViewCount,
            5 => KpiKind::PageViewResponseDelay,
            6 => KpiKind::AccessFailureCount,
            7 => KpiKind::EffectiveClickCount,
            _ => return None,
        })
    }
}

impl std::fmt::Display for KpiKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully-qualified KPI: entity + kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KpiKey {
    /// The server/instance/service the KPI belongs to.
    pub entity: Entity,
    /// Which measurement.
    pub kind: KpiKind,
}

impl KpiKey {
    /// Constructs a key.
    pub fn new(entity: Entity, kind: KpiKind) -> Self {
        Self { entity, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_match_paper() {
        assert_eq!(KpiKind::MemoryUtilization.class(), KpiClass::Stationary);
        assert_eq!(KpiKind::CpuContextSwitch.class(), KpiClass::Variable);
        assert_eq!(KpiKind::PageViewCount.class(), KpiClass::Seasonal);
        assert_eq!(KpiKind::NicThroughput.class(), KpiClass::Variable);
        assert_eq!(KpiKind::EffectiveClickCount.class(), KpiClass::Seasonal);
    }

    #[test]
    fn counts_sum_delays_average() {
        assert_eq!(KpiKind::PageViewCount.aggregation(), Aggregation::Sum);
        assert_eq!(
            KpiKind::PageViewResponseDelay.aggregation(),
            Aggregation::Mean
        );
    }

    #[test]
    fn tag_roundtrip() {
        for kind in KpiKind::SERVER_KINDS
            .iter()
            .chain(KpiKind::INSTANCE_KINDS.iter())
            .chain([KpiKind::EffectiveClickCount].iter())
        {
            assert_eq!(KpiKind::from_tag(kind.tag()), Some(*kind));
        }
        assert_eq!(KpiKind::from_tag(200), None);
    }

    #[test]
    fn server_kinds_flagged() {
        for k in KpiKind::SERVER_KINDS {
            assert!(k.is_server_kind());
        }
        for k in KpiKind::INSTANCE_KINDS {
            assert!(!k.is_server_kind());
        }
    }
}
