//! The deterministic world generator.
//!
//! A [`World`] is a frozen description of everything that "happened" in the
//! simulated datacenter over a time span: the topology, the change log, the
//! KPI effects of each change, and external shocks. From it, every KPI
//! series is generated *deterministically* — base behaviour from seeded
//! generators (instances of one service share their seasonal profile, as
//! load balancing makes real instances statistically exchangeable, §3.2.4),
//! plus the injected effects and shocks. The world also knows the exact
//! ground truth of which (change, entity, KPI) items were truly impacted —
//! the role the operations team's manual labels play in the paper (§4.1).

use crate::effect::{ChangeEffect, EffectScope, ExternalShock};
use crate::kpi::{Aggregation, KpiKey, KpiKind};
use crate::store::MetricStore;
use funnel_timeseries::generate::KpiGenerator;
use funnel_timeseries::inject::{ChangeShape, InjectedChange};
use funnel_timeseries::series::{MinuteBin, TimeSeries};
use funnel_topology::change::{ChangeId, ChangeKind, ChangeLog, LaunchMode};
use funnel_topology::impact::Entity;
use funnel_topology::model::{InstanceId, ServiceId, Topology};
use funnel_topology::naming::ServiceName;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Simulation span and seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed; every generated series derives its own seed from this.
    pub seed: u64,
    /// Absolute minute of the first generated bin.
    pub start: MinuteBin,
    /// Number of minutes generated.
    pub duration: usize,
}

impl SimConfig {
    /// One simulated day starting at minute 0.
    pub fn one_day(seed: u64) -> Self {
        Self {
            seed,
            start: 0,
            duration: funnel_timeseries::MINUTES_PER_DAY,
        }
    }

    /// `days` simulated days starting at minute 0.
    pub fn days(seed: u64, days: usize) -> Self {
        Self {
            seed,
            start: 0,
            duration: days * funnel_timeseries::MINUTES_PER_DAY,
        }
    }

    /// The absolute end minute (exclusive).
    pub fn end(&self) -> MinuteBin {
        self.start + self.duration as u64
    }
}

/// Errors from world construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A topology operation failed.
    Topology(funnel_topology::model::TopologyError),
    /// A change effect's scope and KPI kind disagree (e.g. a server KPI
    /// scoped to instances).
    ScopeKindMismatch {
        /// The offending KPI.
        kind: KpiKind,
        /// Human-readable detail.
        detail: &'static str,
    },
    /// The requested KPI key does not exist in this world.
    UnknownKey(KpiKey),
    /// A service name failed to parse.
    InvalidName(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Topology(e) => write!(f, "topology error: {e}"),
            SimError::ScopeKindMismatch { kind, detail } => {
                write!(f, "effect scope mismatch for {kind}: {detail}")
            }
            SimError::UnknownKey(k) => write!(f, "unknown KPI key {k:?}"),
            SimError::InvalidName(e) => write!(f, "invalid service name: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<funnel_topology::model::TopologyError> for SimError {
    fn from(e: funnel_topology::model::TopologyError) -> Self {
        SimError::Topology(e)
    }
}

/// One ground-truth impacted item: software change × KPI key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthItem {
    /// The causing change.
    pub change: ChangeId,
    /// The impacted KPI.
    pub key: KpiKey,
    /// Absolute onset minute of the KPI change.
    pub onset: MinuteBin,
    /// Effective shape at this entity (service aggregates are scaled by the
    /// number of treated instances and the aggregation rule).
    pub shape: ChangeShape,
    /// The stationary noise scale of this KPI series, for prominence
    /// assessment.
    pub noise_sigma: f64,
}

impl GroundTruthItem {
    /// Magnitude of the injected change (|delta| of the shift/ramp).
    pub fn magnitude(&self) -> f64 {
        match self.shape {
            ChangeShape::LevelShift { delta } | ChangeShape::Ramp { delta, .. } => delta.abs(),
            ChangeShape::Spike { .. } => 0.0,
        }
    }

    /// Whether the change is prominent enough that a competent detector (or
    /// the paper's human labellers) would call it a KPI change: at least 3
    /// noise standard deviations.
    pub fn is_prominent(&self) -> bool {
        self.magnitude() >= 3.0 * self.noise_sigma
    }
}

/// Builder for a [`World`].
#[derive(Debug)]
pub struct WorldBuilder {
    config: SimConfig,
    topology: Topology,
    change_log: ChangeLog,
    effects: BTreeMap<ChangeId, ChangeEffect>,
    shocks: Vec<ExternalShock>,
    instance_kinds: BTreeMap<ServiceId, Vec<KpiKind>>,
    base_overrides: BTreeMap<(funnel_topology::model::ServerId, KpiKind), f64>,
}

impl WorldBuilder {
    /// Starts a world.
    pub fn new(config: SimConfig) -> Self {
        Self {
            config,
            topology: Topology::new(),
            change_log: ChangeLog::new(),
            effects: BTreeMap::new(),
            shocks: Vec::new(),
            instance_kinds: BTreeMap::new(),
            base_overrides: BTreeMap::new(),
        }
    }

    /// Read access to the topology under construction (to look up the
    /// server ids a service was given).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Overrides the base level of one server KPI — e.g. Fig. 6's class-A
    /// Redis servers run their NICs near saturation while class B idles.
    pub fn set_server_base(
        &mut self,
        server: funnel_topology::model::ServerId,
        kind: KpiKind,
        base_level: f64,
    ) {
        self.base_overrides.insert((server, kind), base_level);
    }

    /// Adds a service with `n_instances` instances, each on its own fresh
    /// server, carrying the default instance KPI kinds.
    ///
    /// # Errors
    ///
    /// Propagates topology errors (duplicate names).
    pub fn add_service(&mut self, name: &str, n_instances: usize) -> Result<ServiceId, SimError> {
        let name = ServiceName::parse(name).map_err(SimError::InvalidName)?;
        let id = self.topology.add_service(name.clone())?;
        for k in 0..n_instances {
            let server = self.topology.add_server(format!("{name}-host-{k}"));
            self.topology.add_instance(id, server)?;
        }
        self.instance_kinds
            .insert(id, KpiKind::INSTANCE_KINDS.to_vec());
        Ok(id)
    }

    /// Overrides the instance KPI kinds a service carries (e.g. adds
    /// [`KpiKind::EffectiveClickCount`] for the ads service).
    pub fn set_instance_kinds(&mut self, service: ServiceId, kinds: Vec<KpiKind>) {
        self.instance_kinds.insert(service, kinds);
    }

    /// Declares a request/response relationship (Fig. 4 edges).
    ///
    /// # Errors
    ///
    /// Propagates topology errors.
    pub fn relate(&mut self, a: ServiceId, b: ServiceId) -> Result<(), SimError> {
        self.topology.relate(a, b)?;
        Ok(())
    }

    /// Deploys a software change on the first `n_targets` instances of
    /// `service` at `minute` and records its (possibly empty) KPI effect.
    /// `LaunchMode::Full` requires `n_targets == all`.
    ///
    /// # Errors
    ///
    /// [`SimError::ScopeKindMismatch`] when an effect's scope and kind
    /// disagree.
    #[allow(clippy::too_many_arguments)]
    pub fn deploy_change(
        &mut self,
        kind: ChangeKind,
        service: ServiceId,
        n_targets: usize,
        minute: MinuteBin,
        effect: ChangeEffect,
        description: &str,
    ) -> Result<ChangeId, SimError> {
        validate_effect(&effect)?;
        let instances = self.topology.instances_of(service);
        let n_targets = n_targets.min(instances.len());
        let targets: Vec<InstanceId> = instances.iter().take(n_targets).map(|i| i.id).collect();
        let launch = if n_targets == instances.len() {
            LaunchMode::Full
        } else {
            LaunchMode::Dark
        };
        let id = self
            .change_log
            .record(kind, service, targets, minute, launch, description);
        self.effects.insert(id, effect);
        Ok(id)
    }

    /// Adds an external (non-software) shock.
    pub fn add_shock(&mut self, shock: ExternalShock) {
        self.shocks.push(shock);
    }

    /// Freezes the world.
    pub fn build(self) -> World {
        World {
            config: self.config,
            topology: self.topology,
            change_log: self.change_log,
            effects: self.effects,
            shocks: self.shocks,
            instance_kinds: self.instance_kinds,
            base_overrides: self.base_overrides,
        }
    }
}

fn validate_effect(effect: &ChangeEffect) -> Result<(), SimError> {
    for e in &effect.effects {
        match &e.scope {
            EffectScope::TreatedInstances | EffectScope::AffectedService(_) => {
                if e.kind.is_server_kind() {
                    return Err(SimError::ScopeKindMismatch {
                        kind: e.kind,
                        detail: "server KPI scoped to instances/services",
                    });
                }
            }
            EffectScope::TreatedServers | EffectScope::Servers(_) => {
                if !e.kind.is_server_kind() {
                    return Err(SimError::ScopeKindMismatch {
                        kind: e.kind,
                        detail: "instance KPI scoped to servers",
                    });
                }
            }
        }
    }
    Ok(())
}

/// The frozen simulated datacenter.
#[derive(Debug)]
pub struct World {
    config: SimConfig,
    topology: Topology,
    change_log: ChangeLog,
    effects: BTreeMap<ChangeId, ChangeEffect>,
    shocks: Vec<ExternalShock>,
    instance_kinds: BTreeMap<ServiceId, Vec<KpiKind>>,
    base_overrides: BTreeMap<(funnel_topology::model::ServerId, KpiKind), f64>,
}

/// splitmix64: deterministic seed derivation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn entity_seed(master: u64, entity: Entity, kind: KpiKind) -> u64 {
    let tag = match entity {
        Entity::Server(s) => (1u64 << 40) | s.0 as u64,
        Entity::Instance(i) => (2u64 << 40) | i.0 as u64,
        Entity::Service(s) => (3u64 << 40) | s.0 as u64,
    };
    mix(master ^ mix(tag) ^ mix(kind.tag() as u64))
}

impl World {
    /// The simulation span.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The change log.
    pub fn change_log(&self) -> &ChangeLog {
        &self.change_log
    }

    /// The declared effect of a change (empty if none was registered).
    pub fn effect_of(&self, change: ChangeId) -> ChangeEffect {
        self.effects.get(&change).cloned().unwrap_or_default()
    }

    /// The per-service level multiplier (services differ in scale).
    fn service_level_factor(&self, service: ServiceId) -> f64 {
        0.7 + 0.6 * (mix(self.config.seed ^ mix(0xA11CE ^ service.0 as u64)) % 1000) as f64 / 1000.0
    }

    /// The generator for one KPI key (base behaviour, no effects).
    fn generator(&self, key: &KpiKey) -> Result<KpiGenerator, SimError> {
        let (kind, level_factor) = match key.entity {
            Entity::Server(s) => {
                if !key.kind.is_server_kind() || s.0 as usize >= self.topology.server_count() {
                    return Err(SimError::UnknownKey(*key));
                }
                if let Some(&base) = self.base_overrides.get(&(s, key.kind)) {
                    return Ok(KpiGenerator::for_class(key.kind.class(), base));
                }
                let svc = self.topology.server_service(s);
                let f = svc.map_or(1.0, |svc| self.service_level_factor(svc));
                (key.kind, f)
            }
            Entity::Instance(i) => {
                let inst = self.topology.instance(i)?;
                if !self.kinds_of_service(inst.service).contains(&key.kind) {
                    return Err(SimError::UnknownKey(*key));
                }
                (key.kind, self.service_level_factor(inst.service))
            }
            Entity::Service(s) => {
                if !self.kinds_of_service(s).contains(&key.kind) {
                    return Err(SimError::UnknownKey(*key));
                }
                (key.kind, self.service_level_factor(s))
            }
        };
        Ok(KpiGenerator::for_class(
            kind.class(),
            kind.base_level() * level_factor,
        ))
    }

    /// Instance KPI kinds a service carries.
    pub fn kinds_of_service(&self, service: ServiceId) -> &[KpiKind] {
        self.instance_kinds
            .get(&service)
            .map(Vec::as_slice)
            .unwrap_or(&KpiKind::INSTANCE_KINDS)
    }

    /// Generates the series for one KPI key over the full span, with all
    /// effects and shocks applied. Service keys aggregate their instances.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownKey`] when the key does not exist in this world.
    pub fn series(&self, key: &KpiKey) -> Result<TimeSeries, SimError> {
        match key.entity {
            Entity::Service(s) => {
                let instances = self.topology.instances_of(s);
                if instances.is_empty() {
                    return Err(SimError::UnknownKey(*key));
                }
                if !self.kinds_of_service(s).contains(&key.kind) {
                    return Err(SimError::UnknownKey(*key));
                }
                let members: Vec<TimeSeries> = instances
                    .iter()
                    .map(|i| self.series(&KpiKey::new(Entity::Instance(i.id), key.kind)))
                    .collect::<Result<_, _>>()?;
                let refs: Vec<&TimeSeries> = members.iter().collect();
                let agg = match key.kind.aggregation() {
                    Aggregation::Sum => TimeSeries::sum(&refs),
                    Aggregation::Mean => TimeSeries::average(&refs),
                };
                agg.map_err(|_| SimError::UnknownKey(*key))
            }
            _ => {
                let gen = self.generator(key)?;
                let seed = entity_seed(self.config.seed, key.entity, key.kind);
                let mut series = gen.generate(self.config.start, self.config.duration, seed);
                for inj in self.injections_for(key) {
                    inj.apply(&mut series, gen.non_negative);
                }
                Ok(series)
            }
        }
    }

    /// All injections (change effects + shocks) that land directly on a
    /// server/instance KPI key. (Service keys inherit through aggregation.)
    fn injections_for(&self, key: &KpiKey) -> Vec<InjectedChange> {
        let mut out = Vec::new();
        for change in self.change_log.all() {
            let Some(effect) = self.effects.get(&change.id) else {
                continue;
            };
            for e in &effect.effects {
                if e.kind != key.kind {
                    continue;
                }
                let applies = match (&e.scope, key.entity) {
                    (EffectScope::TreatedInstances, Entity::Instance(i)) => {
                        change.targets.contains(&i)
                    }
                    (EffectScope::TreatedServers, Entity::Server(s)) => change
                        .targets
                        .iter()
                        .any(|&t| self.topology.instance(t).is_ok_and(|inst| inst.server == s)),
                    (EffectScope::Servers(list), Entity::Server(s)) => list.contains(&s),
                    (EffectScope::AffectedService(svc), Entity::Instance(i)) => self
                        .topology
                        .instance(i)
                        .is_ok_and(|inst| inst.service == *svc),
                    _ => false,
                };
                if applies {
                    out.push(InjectedChange {
                        onset: change.minute + e.delay_minutes as u64,
                        shape: e.shape,
                    });
                }
            }
        }
        for shock in &self.shocks {
            if shock.kind != key.kind {
                continue;
            }
            let applies = match key.entity {
                Entity::Instance(i) => self
                    .topology
                    .instance(i)
                    .is_ok_and(|inst| shock.services.contains(&inst.service)),
                Entity::Server(s) => self
                    .topology
                    .server_service(s)
                    .is_some_and(|svc| shock.services.contains(&svc)),
                Entity::Service(_) => false,
            };
            if applies {
                out.push(InjectedChange {
                    onset: shock.onset,
                    shape: shock.shape,
                });
            }
        }
        out
    }

    /// The stationary noise scale of a key's base generator (aggregates
    /// scale with √n per the aggregation rule).
    pub fn noise_sigma(&self, key: &KpiKey) -> Result<f64, SimError> {
        match key.entity {
            Entity::Service(s) => {
                let n = self.topology.instances_of(s).len().max(1) as f64;
                let inst = self.topology.instances_of(s);
                let member = KpiKey::new(Entity::Instance(inst[0].id), key.kind);
                let sigma = self.noise_sigma(&member)?;
                Ok(match key.kind.aggregation() {
                    Aggregation::Sum => sigma * n.sqrt(),
                    Aggregation::Mean => sigma / n.sqrt(),
                })
            }
            _ => {
                let gen = self.generator(key)?;
                let innov = gen.noise_frac * gen.base_level;
                Ok(innov / (1.0 - gen.ar_coeff * gen.ar_coeff).sqrt())
            }
        }
    }

    /// Expands every change effect into concrete ground-truth items over the
    /// *monitored* entities (treated instances/servers, the changed service,
    /// affected services). Spikes are excluded: they are not KPI changes
    /// under the paper's ≥7-minute persistence definition.
    pub fn ground_truth(&self) -> Vec<GroundTruthItem> {
        let mut items = Vec::new();
        for change in self.change_log.all() {
            let Some(effect) = self.effects.get(&change.id) else {
                continue;
            };
            for e in &effect.effects {
                if !e.shape.is_persistent() {
                    continue;
                }
                let onset = change.minute + e.delay_minutes as u64;
                match &e.scope {
                    EffectScope::TreatedInstances => {
                        for &t in &change.targets {
                            let key = KpiKey::new(Entity::Instance(t), e.kind);
                            if let Ok(sigma) = self.noise_sigma(&key) {
                                items.push(GroundTruthItem {
                                    change: change.id,
                                    key,
                                    onset,
                                    shape: e.shape,
                                    noise_sigma: sigma,
                                });
                            }
                        }
                        // The changed service's aggregate also moves.
                        let n = self.topology.instances_of(change.service).len().max(1) as f64;
                        let m = change.targets.len() as f64;
                        let scale = match e.kind.aggregation() {
                            Aggregation::Sum => m,
                            Aggregation::Mean => m / n,
                        };
                        let key = KpiKey::new(Entity::Service(change.service), e.kind);
                        if let Ok(sigma) = self.noise_sigma(&key) {
                            items.push(GroundTruthItem {
                                change: change.id,
                                key,
                                onset,
                                shape: scale_shape(e.shape, scale),
                                noise_sigma: sigma,
                            });
                        }
                    }
                    EffectScope::TreatedServers => {
                        let mut seen = std::collections::BTreeSet::new();
                        for &t in &change.targets {
                            if let Ok(inst) = self.topology.instance(t) {
                                if seen.insert(inst.server) {
                                    let key = KpiKey::new(Entity::Server(inst.server), e.kind);
                                    if let Ok(sigma) = self.noise_sigma(&key) {
                                        items.push(GroundTruthItem {
                                            change: change.id,
                                            key,
                                            onset,
                                            shape: e.shape,
                                            noise_sigma: sigma,
                                        });
                                    }
                                }
                            }
                        }
                    }
                    EffectScope::Servers(list) => {
                        for &srv in list {
                            let key = KpiKey::new(Entity::Server(srv), e.kind);
                            if let Ok(sigma) = self.noise_sigma(&key) {
                                items.push(GroundTruthItem {
                                    change: change.id,
                                    key,
                                    onset,
                                    shape: e.shape,
                                    noise_sigma: sigma,
                                });
                            }
                        }
                    }
                    EffectScope::AffectedService(svc) => {
                        let svc = *svc;
                        let n = self.topology.instances_of(svc).len().max(1) as f64;
                        let scale = match e.kind.aggregation() {
                            Aggregation::Sum => n,
                            Aggregation::Mean => 1.0,
                        };
                        let key = KpiKey::new(Entity::Service(svc), e.kind);
                        if let Ok(sigma) = self.noise_sigma(&key) {
                            items.push(GroundTruthItem {
                                change: change.id,
                                key,
                                onset,
                                shape: scale_shape(e.shape, scale),
                                noise_sigma: sigma,
                            });
                        }
                    }
                }
            }
        }
        items
    }

    /// Every KPI key that exists in this world, in a stable order: server
    /// keys, instance keys, then service keys.
    pub fn all_keys(&self) -> Vec<KpiKey> {
        let mut keys = Vec::new();
        for sid in 0..self.topology.server_count() {
            let server = funnel_topology::model::ServerId(sid as u32);
            for kind in KpiKind::SERVER_KINDS {
                keys.push(KpiKey::new(Entity::Server(server), kind));
            }
        }
        for inst in self.topology.instances() {
            for &kind in self.kinds_of_service(inst.service) {
                keys.push(KpiKey::new(Entity::Instance(inst.id), kind));
            }
        }
        for (svc, _) in self.topology.services() {
            if self.topology.instances_of(svc).is_empty() {
                continue;
            }
            for &kind in self.kinds_of_service(svc) {
                keys.push(KpiKey::new(Entity::Service(svc), kind));
            }
        }
        keys
    }

    /// Generates every key into a [`MetricStore`].
    ///
    /// # Errors
    ///
    /// Propagates generation errors (cannot happen for keys from
    /// [`World::all_keys`]).
    pub fn materialize(&self) -> Result<MetricStore, SimError> {
        let store = MetricStore::new();
        for key in self.all_keys() {
            store.insert(key, self.series(&key)?);
        }
        Ok(store)
    }
}

fn scale_shape(shape: ChangeShape, scale: f64) -> ChangeShape {
    match shape {
        ChangeShape::LevelShift { delta } => ChangeShape::LevelShift {
            delta: delta * scale,
        },
        ChangeShape::Ramp {
            delta,
            duration_minutes,
        } => ChangeShape::Ramp {
            delta: delta * scale,
            duration_minutes,
        },
        ChangeShape::Spike {
            delta,
            duration_minutes,
        } => ChangeShape::Spike {
            delta: delta * scale,
            duration_minutes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnel_timeseries::stats::mean;

    fn small_world() -> (World, ServiceId, ChangeId) {
        let mut b = WorldBuilder::new(SimConfig {
            seed: 7,
            start: 0,
            duration: 600,
        });
        let svc = b.add_service("prod.web", 4).unwrap();
        let effect = ChangeEffect::none().with_level_shift(
            KpiKind::PageViewResponseDelay,
            EffectScope::TreatedInstances,
            60.0,
        );
        let change = b
            .deploy_change(ChangeKind::Upgrade, svc, 2, 300, effect, "slow deploy")
            .unwrap();
        (b.build(), svc, change)
    }

    #[test]
    fn determinism() {
        let (w1, svc, _) = small_world();
        let (w2, _, _) = small_world();
        let key = KpiKey::new(Entity::Service(svc), KpiKind::PageViewCount);
        assert_eq!(w1.series(&key).unwrap(), w2.series(&key).unwrap());
    }

    #[test]
    fn treated_instances_shift_control_does_not() {
        let (w, svc, _) = small_world();
        let instances = w.topology().instances_of(svc);
        let treated = KpiKey::new(
            Entity::Instance(instances[0].id),
            KpiKind::PageViewResponseDelay,
        );
        let control = KpiKey::new(
            Entity::Instance(instances[3].id),
            KpiKind::PageViewResponseDelay,
        );
        let ts = w.series(&treated).unwrap();
        let cs = w.series(&control).unwrap();
        let t_jump = mean(ts.slice(300, 400)) - mean(ts.slice(200, 300));
        let c_jump = mean(cs.slice(300, 400)) - mean(cs.slice(200, 300));
        assert!(t_jump > 50.0, "treated jump {t_jump}");
        assert!(c_jump.abs() < 5.0, "control jump {c_jump}");
    }

    #[test]
    fn service_aggregate_inherits_effect() {
        let (w, svc, _) = small_world();
        let key = KpiKey::new(Entity::Service(svc), KpiKind::PageViewResponseDelay);
        let s = w.series(&key).unwrap();
        // Mean aggregation over 4 instances, 2 treated with +60 ⇒ +30.
        let jump = mean(s.slice(300, 400)) - mean(s.slice(200, 300));
        assert!((jump - 30.0).abs() < 5.0, "service jump {jump}");
    }

    #[test]
    fn ground_truth_expansion() {
        let (w, svc, change) = small_world();
        let gt = w.ground_truth();
        // 2 treated instances + 1 changed-service aggregate.
        assert_eq!(gt.len(), 3);
        assert!(gt.iter().all(|g| g.change == change));
        assert!(gt.iter().all(|g| g.onset == 300));
        let service_item = gt
            .iter()
            .find(|g| g.key.entity == Entity::Service(svc))
            .expect("service item");
        // Mean aggregation: per-instance 60 × (2/4) = 30.
        assert!((service_item.magnitude() - 30.0).abs() < 1e-9);
        assert!(service_item.is_prominent());
    }

    #[test]
    fn shock_hits_treated_and_control_alike() {
        let mut b = WorldBuilder::new(SimConfig {
            seed: 3,
            start: 0,
            duration: 400,
        });
        let svc = b.add_service("prod.x", 3).unwrap();
        b.add_shock(ExternalShock {
            services: vec![svc],
            kind: KpiKind::AccessFailureCount,
            shape: ChangeShape::LevelShift { delta: 200.0 },
            onset: 200,
        });
        let w = b.build();
        for inst in w.topology().instances_of(svc) {
            let key = KpiKey::new(Entity::Instance(inst.id), KpiKind::AccessFailureCount);
            let s = w.series(&key).unwrap();
            let jump = mean(s.slice(200, 300)) - mean(s.slice(100, 200));
            assert!(jump > 150.0, "instance {:?} jump {jump}", inst.id);
        }
        // Shocks produce no ground-truth items.
        assert!(w.ground_truth().is_empty());
    }

    #[test]
    fn scope_kind_mismatch_rejected() {
        let mut b = WorldBuilder::new(SimConfig {
            seed: 1,
            start: 0,
            duration: 100,
        });
        let svc = b.add_service("prod.y", 2).unwrap();
        let bad = ChangeEffect::none().with_level_shift(
            KpiKind::MemoryUtilization, // server KPI
            EffectScope::TreatedInstances,
            5.0,
        );
        let err = b
            .deploy_change(ChangeKind::Upgrade, svc, 1, 50, bad, "bad")
            .unwrap_err();
        assert!(matches!(err, SimError::ScopeKindMismatch { .. }));
    }

    #[test]
    fn all_keys_and_materialize_cover_world() {
        let (w, _, _) = small_world();
        let keys = w.all_keys();
        // 4 servers × 4 server kinds + 4 instances × 3 kinds + 1 service × 3.
        assert_eq!(keys.len(), 16 + 12 + 3);
        let store = w.materialize().unwrap();
        for key in &keys {
            assert!(store.get(key).is_some(), "{key:?} missing");
        }
    }

    #[test]
    fn unknown_key_errors() {
        let (w, svc, _) = small_world();
        let bad = KpiKey::new(Entity::Service(svc), KpiKind::EffectiveClickCount);
        assert!(matches!(w.series(&bad), Err(SimError::UnknownKey(_))));
    }

    #[test]
    fn launch_mode_inferred_from_target_count() {
        let mut b = WorldBuilder::new(SimConfig {
            seed: 1,
            start: 0,
            duration: 100,
        });
        let svc = b.add_service("prod.z", 3).unwrap();
        let dark = b
            .deploy_change(
                ChangeKind::Upgrade,
                svc,
                2,
                50,
                ChangeEffect::none(),
                "dark",
            )
            .unwrap();
        let full = b
            .deploy_change(
                ChangeKind::Upgrade,
                svc,
                3,
                60,
                ChangeEffect::none(),
                "full",
            )
            .unwrap();
        let w = b.build();
        assert_eq!(w.change_log().get(dark).unwrap().launch, LaunchMode::Dark);
        assert_eq!(w.change_log().get(full).unwrap().launch, LaunchMode::Full);
    }
}
