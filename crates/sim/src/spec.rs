//! Declarative world specifications.
//!
//! A [`WorldSpec`] is a plain-data description of a scenario — topology,
//! software changes, effects, shocks — that serializes with serde, so
//! downstream users can keep scenarios as JSON/TOML files and replay them
//! through FUNNEL without writing builder code:
//!
//! ```
//! use funnel_sim::spec::*;
//! let spec = WorldSpec {
//!     seed: 7,
//!     days: 8,
//!     services: vec![ServiceSpec {
//!         name: "shop.web".into(),
//!         instances: 4,
//!         extra_kinds: vec![],
//!     }],
//!     relations: vec![],
//!     changes: vec![ChangeSpec {
//!         service: "shop.web".into(),
//!         kind: ChangeKindSpec::Upgrade,
//!         targets: 2,
//!         day: 7,
//!         minute_of_day: 540,
//!         description: "v2".into(),
//!         effects: vec![EffectSpec {
//!             kpi: "page_view_response_delay".into(),
//!             scope: ScopeSpec::TreatedInstances,
//!             delta: 80.0,
//!             ramp_minutes: 0,
//!             delay_minutes: 0,
//!         }],
//!     }],
//!     shocks: vec![],
//! };
//! let built = spec.build().unwrap();
//! assert_eq!(built.changes.len(), 1);
//! ```

use crate::effect::{ChangeEffect, EffectScope, ExternalShock, KpiEffect};
use crate::kpi::KpiKind;
use crate::world::{SimConfig, SimError, World, WorldBuilder};
use funnel_timeseries::inject::ChangeShape;
use funnel_timeseries::MINUTES_PER_DAY;
use funnel_topology::change::{ChangeId, ChangeKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Hierarchical dotted name.
    pub name: String,
    /// Number of instances (one server each).
    pub instances: usize,
    /// Extra instance KPI kind names beyond the defaults (e.g.
    /// `"effective_click_count"`).
    #[serde(default)]
    pub extra_kinds: Vec<String>,
}

/// Change kinds, serde-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ChangeKindSpec {
    /// A software upgrade.
    Upgrade,
    /// A configuration change.
    ConfigChange,
}

/// Effect scopes, serde-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ScopeSpec {
    /// All treated instances (and hence the changed service aggregate).
    TreatedInstances,
    /// All treated servers.
    TreatedServers,
}

/// One KPI effect of a change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EffectSpec {
    /// KPI kind name (see [`KpiKind::name`]).
    pub kpi: String,
    /// Where the effect lands.
    pub scope: ScopeSpec,
    /// Signed magnitude, absolute KPI units per instance/server.
    pub delta: f64,
    /// 0 = instantaneous level shift; >0 = linear ramp over this many
    /// minutes.
    #[serde(default)]
    pub ramp_minutes: u32,
    /// Minutes after deployment before the effect begins.
    #[serde(default)]
    pub delay_minutes: u32,
}

/// One software change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChangeSpec {
    /// Target service name.
    pub service: String,
    /// Upgrade vs configuration change.
    pub kind: ChangeKindSpec,
    /// Number of instances to deploy on (clamped; equal to the service
    /// size ⇒ full launch).
    pub targets: usize,
    /// Deployment day (0-based).
    pub day: u32,
    /// Deployment minute within the day (0..1440).
    pub minute_of_day: u32,
    /// Operator-facing description.
    #[serde(default)]
    pub description: String,
    /// KPI effects (empty = a change with no impact).
    #[serde(default)]
    pub effects: Vec<EffectSpec>,
}

/// One external (non-software) shock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShockSpec {
    /// Affected service names.
    pub services: Vec<String>,
    /// KPI kind name.
    pub kpi: String,
    /// Signed magnitude per instance/server.
    pub delta: f64,
    /// Onset day (0-based).
    pub day: u32,
    /// Onset minute within the day.
    pub minute_of_day: u32,
    /// 0 = persistent level shift; >0 = transient spike of this duration.
    #[serde(default)]
    pub spike_minutes: u32,
}

/// A complete scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldSpec {
    /// Master seed.
    pub seed: u64,
    /// Simulated days.
    pub days: usize,
    /// Services.
    pub services: Vec<ServiceSpec>,
    /// Undirected relationship edges, by service name.
    #[serde(default)]
    pub relations: Vec<(String, String)>,
    /// Software changes.
    #[serde(default)]
    pub changes: Vec<ChangeSpec>,
    /// External shocks.
    #[serde(default)]
    pub shocks: Vec<ShockSpec>,
}

/// The result of building a spec.
#[derive(Debug)]
pub struct BuiltWorld {
    /// The frozen world.
    pub world: World,
    /// Change ids, in spec order.
    pub changes: Vec<ChangeId>,
}

fn kind_by_name(name: &str) -> Result<KpiKind, SimError> {
    let all = [
        KpiKind::CpuUtilization,
        KpiKind::MemoryUtilization,
        KpiKind::NicThroughput,
        KpiKind::CpuContextSwitch,
        KpiKind::PageViewCount,
        KpiKind::PageViewResponseDelay,
        KpiKind::AccessFailureCount,
        KpiKind::EffectiveClickCount,
    ];
    all.into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| SimError::InvalidName(format!("unknown KPI kind '{name}'")))
}

impl WorldSpec {
    /// Builds the world.
    ///
    /// # Errors
    ///
    /// [`SimError`] on unknown service names, unknown KPI kind names, or
    /// invalid effect scoping.
    pub fn build(&self) -> Result<BuiltWorld, SimError> {
        let mut b = WorldBuilder::new(SimConfig::days(self.seed, self.days));
        let mut by_name = BTreeMap::new();
        for s in &self.services {
            let id = b.add_service(&s.name, s.instances)?;
            if !s.extra_kinds.is_empty() {
                let mut kinds = KpiKind::INSTANCE_KINDS.to_vec();
                for extra in &s.extra_kinds {
                    kinds.push(kind_by_name(extra)?);
                }
                b.set_instance_kinds(id, kinds);
            }
            by_name.insert(s.name.clone(), id);
        }
        let lookup = |name: &str| {
            by_name
                .get(name)
                .copied()
                .ok_or_else(|| SimError::InvalidName(format!("unknown service '{name}'")))
        };
        for (a, bb) in &self.relations {
            let (a, bb) = (lookup(a)?, lookup(bb)?);
            b.relate(a, bb)?;
        }

        let mut change_ids = Vec::new();
        for c in &self.changes {
            let svc = lookup(&c.service)?;
            let mut effect = ChangeEffect::none();
            for e in &c.effects {
                let kind = kind_by_name(&e.kpi)?;
                let scope = match e.scope {
                    ScopeSpec::TreatedInstances => EffectScope::TreatedInstances,
                    ScopeSpec::TreatedServers => EffectScope::TreatedServers,
                };
                let shape = if e.ramp_minutes > 0 {
                    ChangeShape::Ramp {
                        delta: e.delta,
                        duration_minutes: e.ramp_minutes,
                    }
                } else {
                    ChangeShape::LevelShift { delta: e.delta }
                };
                effect = effect.with_effect(KpiEffect {
                    kind,
                    scope,
                    shape,
                    delay_minutes: e.delay_minutes,
                });
            }
            let minute = c.day as u64 * MINUTES_PER_DAY as u64 + c.minute_of_day.min(1439) as u64;
            let kind = match c.kind {
                ChangeKindSpec::Upgrade => ChangeKind::Upgrade,
                ChangeKindSpec::ConfigChange => ChangeKind::ConfigChange,
            };
            let id = b.deploy_change(kind, svc, c.targets, minute, effect, &c.description)?;
            change_ids.push(id);
        }

        for s in &self.shocks {
            let services = s
                .services
                .iter()
                .map(|n| lookup(n))
                .collect::<Result<Vec<_>, _>>()?;
            let shape = if s.spike_minutes > 0 {
                ChangeShape::Spike {
                    delta: s.delta,
                    duration_minutes: s.spike_minutes,
                }
            } else {
                ChangeShape::LevelShift { delta: s.delta }
            };
            b.add_shock(ExternalShock {
                services,
                kind: kind_by_name(&s.kpi)?,
                shape,
                onset: s.day as u64 * MINUTES_PER_DAY as u64 + s.minute_of_day.min(1439) as u64,
            });
        }

        Ok(BuiltWorld {
            world: b.build(),
            changes: change_ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> WorldSpec {
        WorldSpec {
            seed: 3,
            days: 8,
            services: vec![
                ServiceSpec {
                    name: "a.web".into(),
                    instances: 4,
                    extra_kinds: vec![],
                },
                ServiceSpec {
                    name: "a.ads".into(),
                    instances: 2,
                    extra_kinds: vec!["effective_click_count".into()],
                },
            ],
            relations: vec![("a.web".into(), "a.ads".into())],
            changes: vec![ChangeSpec {
                service: "a.web".into(),
                kind: ChangeKindSpec::Upgrade,
                targets: 2,
                day: 7,
                minute_of_day: 600,
                description: "demo".into(),
                effects: vec![EffectSpec {
                    kpi: "page_view_count".into(),
                    scope: ScopeSpec::TreatedInstances,
                    delta: -400.0,
                    ramp_minutes: 0,
                    delay_minutes: 0,
                }],
            }],
            shocks: vec![ShockSpec {
                services: vec!["a.ads".into()],
                kpi: "access_failure_count".into(),
                delta: 20.0,
                day: 7,
                minute_of_day: 700,
                spike_minutes: 5,
            }],
        }
    }

    #[test]
    fn build_demo_spec() {
        let built = demo_spec().build().unwrap();
        assert_eq!(built.changes.len(), 1);
        assert_eq!(built.world.topology().service_count(), 2);
        assert_eq!(built.world.change_log().len(), 1);
        assert_eq!(built.world.ground_truth().len(), 3); // 2 instances + service
    }

    #[test]
    fn unknown_service_rejected() {
        let mut spec = demo_spec();
        spec.changes[0].service = "nope".into();
        assert!(matches!(spec.build(), Err(SimError::InvalidName(_))));
    }

    #[test]
    fn unknown_kpi_rejected() {
        let mut spec = demo_spec();
        spec.changes[0].effects[0].kpi = "bogus".into();
        assert!(matches!(spec.build(), Err(SimError::InvalidName(_))));
    }

    #[test]
    fn spec_is_deterministic() {
        let a = demo_spec().build().unwrap();
        let b = demo_spec().build().unwrap();
        let key = a.world.all_keys()[0];
        assert_eq!(a.world.series(&key).unwrap(), b.world.series(&key).unwrap());
    }
}
