//! Deterministic per-minute measurement feed — the driver side of the
//! streaming engine.
//!
//! A [`LiveFeed`] flattens a materialized [`MetricStore`] into the exact
//! sequence of [`Measurement`]s that produced it: for every key (sorted)
//! and every mask-present minute (ascending), one measurement. Replaying
//! the feed in arrival order into any consumer that applies the store's
//! append/forward-fill semantics reproduces the store's series and masks
//! byte-for-byte — which is what makes streaming-versus-batch comparisons
//! meaningful.
//!
//! [`LiveFeed::with_late`] deterministically holds back a seeded fraction
//! of measurements and re-delivers them `delay` minutes later, exercising
//! a consumer's late/out-of-order path without changing the final data:
//! the *content* of the feed is identical, only arrival times move. All
//! seeding goes through the workspace splitmix mixer — recorded, never
//! random.

use crate::faults::splitmix;
use crate::store::{Measurement, MetricStore};
use crate::wire::key_to_bytes;
use funnel_timeseries::series::MinuteBin;
use std::collections::BTreeMap;

/// A deterministic arrival-ordered measurement feed.
#[derive(Debug, Clone, Default)]
pub struct LiveFeed {
    /// Arrival minute → measurements delivered that minute (key-sorted,
    /// original-minute-sorted within a batch).
    arrivals: BTreeMap<MinuteBin, Vec<Measurement>>,
    frames: usize,
}

impl LiveFeed {
    /// Flattens `store` into an in-order feed: each measurement arrives at
    /// its own minute. Keys without an explicit mask (batch-materialized
    /// stores) are treated as fully measured.
    pub fn from_store(store: &MetricStore) -> Self {
        let mut arrivals: BTreeMap<MinuteBin, Vec<Measurement>> = BTreeMap::new();
        let mut frames = 0usize;
        for (key, series, mask) in store.export_entries() {
            for minute in series.start()..series.end() {
                let present = if mask.is_empty() {
                    true
                } else {
                    mask.is_present(minute)
                };
                if !present {
                    continue;
                }
                let Some(value) = series.at(minute) else {
                    continue;
                };
                arrivals
                    .entry(minute)
                    .or_default()
                    .push(Measurement { key, minute, value });
                frames += 1;
            }
        }
        Self { arrivals, frames }
    }

    /// Deterministically delays a fraction of the feed: measurements whose
    /// seeded draw lands below `permille`/1000 arrive `delay` minutes
    /// after their own minute (out of order), the rest stay in order. The
    /// feed's content is unchanged — only arrival times move.
    #[must_use]
    pub fn with_late(self, seed: u64, permille: u64, delay: u64) -> Self {
        let mut arrivals: BTreeMap<MinuteBin, Vec<Measurement>> = BTreeMap::new();
        let mut frames = 0usize;
        for (arrival, batch) in self.arrivals {
            for m in batch {
                let kb = key_to_bytes(m.key);
                let kh = kb
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << (8 * i)));
                let draw = splitmix(seed ^ kh.rotate_left(17) ^ m.minute) % 1000;
                let when = if draw < permille.min(1000) {
                    arrival + delay
                } else {
                    arrival
                };
                arrivals.entry(when).or_default().push(m);
                frames += 1;
            }
        }
        // Keep per-batch order deterministic: key, then original minute.
        for batch in arrivals.values_mut() {
            batch.sort_by(|a, b| a.key.cmp(&b.key).then(a.minute.cmp(&b.minute)));
        }
        Self { arrivals, frames }
    }

    /// Total measurements in the feed.
    pub fn len(&self) -> usize {
        self.frames
    }

    /// Whether the feed carries no measurements.
    pub fn is_empty(&self) -> bool {
        self.frames == 0
    }

    /// First arrival minute, if any.
    pub fn first_minute(&self) -> Option<MinuteBin> {
        self.arrivals.keys().next().copied()
    }

    /// Last arrival minute, if any.
    pub fn last_minute(&self) -> Option<MinuteBin> {
        self.arrivals.keys().next_back().copied()
    }

    /// The measurements arriving at exactly `minute` (empty when none).
    pub fn at(&self, minute: MinuteBin) -> &[Measurement] {
        self.arrivals.get(&minute).map_or(&[], Vec::as_slice)
    }

    /// Iterates `(arrival_minute, batch)` in arrival order.
    pub fn arrivals(&self) -> impl Iterator<Item = (MinuteBin, &[Measurement])> {
        self.arrivals.iter().map(|(&m, b)| (m, b.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{SimConfig, WorldBuilder};

    fn store() -> MetricStore {
        let mut b = WorldBuilder::new(SimConfig {
            seed: 7,
            start: 0,
            duration: 120,
        });
        b.add_service("prod.feed", 2).unwrap();
        b.build().materialize().unwrap()
    }

    #[test]
    fn feed_replays_the_store_exactly() {
        let store = store();
        let feed = LiveFeed::from_store(&store);
        assert!(!feed.is_empty());
        // Replaying the feed into a fresh store reproduces every series.
        let replayed = MetricStore::new();
        for (_, batch) in feed.arrivals() {
            for m in batch {
                replayed.append(m.key, m.minute, m.value);
            }
        }
        for key in store.keys() {
            assert_eq!(store.get(&key), replayed.get(&key), "{key:?}");
        }
    }

    #[test]
    fn with_late_moves_arrivals_not_content() {
        let feed = LiveFeed::from_store(&store());
        let total = feed.len();
        let late = feed.clone().with_late(11, 250, 5);
        assert_eq!(late.len(), total);
        // Some batch moved: at least one arrival minute now carries a
        // measurement for an earlier minute.
        let moved = late
            .arrivals()
            .flat_map(|(when, b)| b.iter().map(move |m| (when, m.minute)))
            .filter(|(when, minute)| when != minute)
            .count();
        assert!(moved > 0, "expected some late deliveries");
        // Determinism: same seed, same schedule.
        let again = LiveFeed::from_store(&store()).with_late(11, 250, 5);
        let a: Vec<_> = late.arrivals().map(|(m, b)| (m, b.to_vec())).collect();
        let b: Vec<_> = again.arrivals().map(|(m, b)| (m, b.to_vec())).collect();
        assert_eq!(a, b);
    }
}
