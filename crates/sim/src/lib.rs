//! Simulated datacenter telemetry — the substrate FUNNEL runs on.
//!
//! The paper's FUNNEL consumes Baidu production telemetry: per-server agents
//! sample every KPI once a minute and push the measurements to a central
//! Hadoop-based store, which fans them out to subscribers such as FUNNEL
//! within a second (§2.2). That pipeline is proprietary, so this crate
//! rebuilds its observable behaviour end to end:
//!
//! * [`kpi`] — the KPI catalogue: server KPIs (CPU/memory/NIC/context
//!   switches), instance KPIs (page views, response delay, failures,
//!   effective clicks), their character classes and service-level
//!   aggregation rules.
//! * [`effect`] — what a software change (or an external shock) does to
//!   KPIs: shapes, delays, and scopes.
//! * [`world`] — the deterministic generator: topology + change log +
//!   effects + shocks → every KPI series, with exact ground truth of which
//!   (change, entity, KPI) items were truly impacted.
//! * [`store`] — the central metric store with a crossbeam-channel
//!   subscription API (the "database + subscription tool" of §2.2).
//! * [`agent`] — per-server agents that encode measurements into a compact
//!   wire format ([`wire`]) and stream them to a collector thread, minute
//!   by minute: the live ingestion path used by the online pipeline.
//! * [`collector`] — the collector as a resumable state machine: its
//!   working state is a first-class value a checkpoint can serialize, and
//!   the ingest path exposes durability seams ([`collector::IngestHooks`])
//!   that `funnel-resilience` uses for write-ahead logging and crash
//!   recovery.
//! * [`faults`] — seeded, deterministic telemetry fault injection (frame
//!   drop/delay/duplication/corruption, sensor glitches, slow subscribers)
//!   applied to the agent→collector path to exercise FUNNEL under the
//!   degraded telemetry the paper warns about (§2.2).
//! * [`scenario`] — canned worlds: the Table-1/Fig-5 evaluation cohort, the
//!   Redis load-balancing case (Fig. 6), and the advertising anti-cheat
//!   incident (Fig. 7).
//!
//! Everything is seeded and deterministic; two runs of any scenario produce
//! bit-identical series.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod collector;
pub mod effect;
pub mod faults;
pub mod kpi;
pub mod live;
pub mod scenario;
pub mod spec;
pub mod store;
pub mod wire;
pub mod world;

pub use collector::{Collector, CollectorState, Ingest, IngestAbort, IngestHooks, NoHooks};
pub use effect::{ChangeEffect, EffectScope, ExternalShock, KpiEffect};
pub use faults::{FaultPlan, FaultSchedule, FrameFate, HealMode, PartitionScope, PartitionWindow};
pub use kpi::{Aggregation, KpiKey, KpiKind};
pub use live::LiveFeed;
pub use store::{MetricStore, StoreSnapshot, StoreStats, Subscription};
pub use world::{GroundTruthItem, SimConfig, World, WorldBuilder};
