//! Canned worlds for the paper's experiments and case studies.
//!
//! * [`evaluation_world`] — the §4.1 cohort: 19 services, 144 software
//!   changes over the evaluation day (72 with injected KPI effects, 72
//!   without), mixed dark/full launches, plus external shocks and the
//!   built-in diurnal seasonality as confounders. Ground truth comes from
//!   the world itself.
//! * [`redis_world`] — Fig. 6: a Redis query service whose class-A servers
//!   run their NICs near saturation until a load-balancing configuration
//!   change swaps traffic onto the idle class-B servers.
//! * [`ads_world`] — Fig. 7: an advertising system whose anti-cheat check
//!   silently breaks on one device class after an upgrade, collapsing the
//!   strongly seasonal effective-click count.

use crate::effect::{ChangeEffect, EffectScope, ExternalShock, KpiEffect};
use crate::kpi::KpiKind;
use crate::world::{SimConfig, World, WorldBuilder};
use funnel_timeseries::inject::ChangeShape;
use funnel_timeseries::series::MinuteBin;
use funnel_timeseries::MINUTES_PER_DAY;
use funnel_topology::change::{ChangeId, ChangeKind};
use funnel_topology::model::{ServerId, ServiceId};

const DAY: u64 = MINUTES_PER_DAY as u64;

/// Metadata of the evaluation cohort.
#[derive(Debug, Clone)]
pub struct CohortMeta {
    /// Every deployed change and whether it truly has a KPI effect.
    pub changes: Vec<(ChangeId, bool)>,
    /// The services in the cohort.
    pub services: Vec<ServiceId>,
    /// First minute of the evaluation day (changes are deployed from here).
    pub eval_day_start: MinuteBin,
    /// Days of history available before the evaluation day (for the
    /// seasonal DiD mode).
    pub history_days: u32,
}

/// Builds the §4.1 evaluation cohort.
///
/// 19 moderate services (4–10 instances each), 8 simulated days. 144
/// changes are deployed across day 7 (the evaluation day): 72 carry one of
/// six realistic KPI-effect templates (memory-leak ramp, context-switch
/// jump, page-view drop, latency shift, failure surge, NIC drop — every
/// third one shaped as a ramp instead of a level shift), 72 carry none.
/// Three of every four changes are dark launches. External shocks (which
/// are *not* software-change impacts) hit several services during the day.
pub fn evaluation_world(seed: u64) -> (World, CohortMeta) {
    let mut b = WorldBuilder::new(SimConfig::days(seed, 8));
    let mut services = Vec::new();
    for s in 0..19 {
        let n_instances = 4 + (seed as usize + s * 7) % 7; // 4..=10
        let svc = b
            .add_service(&format!("prod.svc-{s}.web"), n_instances)
            .expect("unique service names");
        services.push(svc);
    }
    // Relationship edges: every third service talks to its successor
    // (Fig. 4-style chains, giving some changes affected services).
    for s in (0..18).step_by(3) {
        b.relate(services[s], services[s + 1])
            .expect("valid services");
    }

    let eval_day_start = 7 * DAY;
    let mut changes = Vec::new();
    for i in 0..144usize {
        let svc = services[i % services.len()];
        let minute = eval_day_start + (i as u64) * 9; // spread over the day
        let dark = i % 4 != 3; // 108 dark, 36 full (paper: 108 / 26)
        let n_instances = {
            // WorldBuilder clamps to the service's size.
            if dark {
                2
            } else {
                usize::MAX
            }
        };
        let has_effect = i % 2 == 0; // 72 with, 72 without
        let effect = if has_effect {
            effect_template(i / 2)
        } else {
            ChangeEffect::none()
        };
        let kind = if i % 3 == 0 {
            ChangeKind::ConfigChange
        } else {
            ChangeKind::Upgrade
        };
        let id = b
            .deploy_change(
                kind,
                svc,
                n_instances,
                minute,
                effect,
                &format!("cohort change #{i}"),
            )
            .expect("valid effect template");
        changes.push((id, has_effect));
    }

    // Non-software confounders during the evaluation day: persistent shifts
    // (e.g. an upstream hardware fault) and transient spikes (attacks).
    for (j, &svc) in services.iter().enumerate().take(6) {
        let onset = eval_day_start + 150 + (j as u64) * 190;
        let shock = if j % 2 == 0 {
            ExternalShock {
                services: vec![svc],
                kind: KpiKind::AccessFailureCount,
                shape: ChangeShape::LevelShift { delta: 25.0 },
                onset,
            }
        } else {
            ExternalShock {
                services: vec![svc],
                kind: KpiKind::PageViewCount,
                shape: ChangeShape::Spike {
                    delta: -300.0,
                    duration_minutes: 5,
                },
                onset,
            }
        };
        b.add_shock(shock);
    }

    let world = b.build();
    (
        world,
        CohortMeta {
            changes,
            services,
            eval_day_start,
            history_days: 6,
        },
    )
}

/// The six KPI-effect templates of the evaluation cohort. Magnitudes are
/// several noise standard deviations (prominent), matching the paper's
/// operator-labelled "behaviour changes".
fn effect_template(idx: usize) -> ChangeEffect {
    // Decoupled from the template cycle (idx % 6) so every KPI kind gets
    // both level shifts and ramps across the cohort.
    let ramp = (idx / 6) % 3 == 2;
    let shape = |delta: f64| -> ChangeShape {
        if ramp {
            ChangeShape::Ramp {
                delta,
                duration_minutes: 20,
            }
        } else {
            ChangeShape::LevelShift { delta }
        }
    };
    let mk = |kind: KpiKind, scope: EffectScope, delta: f64| KpiEffect {
        kind,
        scope,
        shape: shape(delta),
        delay_minutes: 0,
    };
    match idx % 6 {
        0 => ChangeEffect::none().with_effect(mk(
            KpiKind::MemoryUtilization,
            EffectScope::TreatedServers,
            14.0,
        )),
        1 => ChangeEffect::none().with_effect(mk(
            KpiKind::CpuContextSwitch,
            EffectScope::TreatedServers,
            6_500.0,
        )),
        2 => ChangeEffect::none().with_effect(mk(
            KpiKind::PageViewCount,
            EffectScope::TreatedInstances,
            -450.0,
        )),
        3 => ChangeEffect::none().with_effect(mk(
            KpiKind::PageViewResponseDelay,
            EffectScope::TreatedInstances,
            70.0,
        )),
        4 => ChangeEffect::none().with_effect(mk(
            KpiKind::AccessFailureCount,
            EffectScope::TreatedInstances,
            35.0,
        )),
        _ => ChangeEffect::none().with_effect(mk(
            KpiKind::NicThroughput,
            EffectScope::TreatedServers,
            -180.0,
        )),
    }
}

/// Metadata of a simulated deployment week (Table 3).
#[derive(Debug, Clone)]
pub struct DeploymentMeta {
    /// Change ids grouped by deployment day (0-based within the week).
    pub days: Vec<Vec<ChangeId>>,
    /// Days of history before the deployment week.
    pub history_days: u32,
}

/// Builds the §5 deployment week for Table 3, scaled down from production
/// (the paper's one server watched ~24k changes and 2.26M KPIs per day; we
/// keep the *rates* — ~1 % of changes having real impact — at a size a
/// single evaluation core can replay).
///
/// 19 services, 7 history days, then 7 deployment days with
/// `changes_per_day` changes each; ~4 % carry a KPI effect; one external
/// shock lands per day as causality bait.
pub fn deployment_week(seed: u64, changes_per_day: usize) -> (World, DeploymentMeta) {
    let mut b = WorldBuilder::new(SimConfig::days(seed, 14));
    let mut services = Vec::new();
    for s in 0..19 {
        let n_instances = 4 + (seed as usize + s * 5) % 6;
        services.push(
            b.add_service(&format!("prod.week-{s}.web"), n_instances)
                .expect("unique names"),
        );
    }
    for s in (0..18).step_by(4) {
        b.relate(services[s], services[s + 1]).expect("valid");
    }

    let mut days = Vec::new();
    let mut counter = 0usize;
    for day in 0..7u64 {
        let day_start = (7 + day) * DAY;
        let mut ids = Vec::new();
        let spacing = (DAY - 120) / changes_per_day.max(1) as u64;
        for c in 0..changes_per_day {
            let svc = services[counter % services.len()];
            let minute = day_start + 60 + c as u64 * spacing;
            let has_effect = counter % 25 == 7; // 4 %
            let effect = if has_effect {
                effect_template(counter)
            } else {
                ChangeEffect::none()
            };
            let dark = counter % 5 != 4;
            let kind = if counter.is_multiple_of(3) {
                ChangeKind::ConfigChange
            } else {
                ChangeKind::Upgrade
            };
            let id = b
                .deploy_change(
                    kind,
                    svc,
                    if dark { 2 } else { usize::MAX },
                    minute,
                    effect,
                    &format!("week change #{counter}"),
                )
                .expect("valid");
            ids.push(id);
            counter += 1;
        }
        // A non-software incident every other day: a quarter-hour failure
        // burst. Detectors fire on it; DiD must not blame any coincident
        // software change (dark launches cancel it through the control
        // group, and a 60-minute DiD window dilutes the burst for full
        // launches).
        if day % 2 == 0 {
            b.add_shock(ExternalShock {
                services: vec![services[(day as usize * 3) % services.len()]],
                kind: KpiKind::AccessFailureCount,
                shape: ChangeShape::Spike {
                    delta: 10.0,
                    duration_minutes: 14,
                },
                onset: day_start + 400 + day * 37,
            });
        }
        days.push(ids);
    }
    (
        b.build(),
        DeploymentMeta {
            days,
            history_days: 6,
        },
    )
}

/// Fig. 6: the Redis load-balancing case study.
///
/// Returns the world, the class-A (saturated) and class-B (idle) server
/// ids, and the configuration change id. The change swaps ~450 Mbit/s of
/// NIC load from every class-A server onto class B.
pub fn redis_world(seed: u64) -> (World, Vec<ServerId>, Vec<ServerId>, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig::days(seed, 4));
    let svc = b.add_service("cache.redis-query", 12).expect("fresh world");
    let servers: Vec<ServerId> = b
        .topology()
        .instances_of(svc)
        .iter()
        .map(|i| i.server)
        .collect();
    let (class_a, class_b) = servers.split_at(6);
    for &s in class_a {
        b.set_server_base(s, KpiKind::NicThroughput, 880.0); // near saturation
    }
    for &s in class_b {
        b.set_server_base(s, KpiKind::NicThroughput, 140.0); // mostly idle
    }
    let change_minute = 3 * DAY + 600;
    let effect = ChangeEffect::none()
        .with_effect(KpiEffect {
            kind: KpiKind::NicThroughput,
            scope: EffectScope::Servers(class_a.to_vec()),
            shape: ChangeShape::LevelShift { delta: -450.0 },
            delay_minutes: 0,
        })
        .with_effect(KpiEffect {
            kind: KpiKind::NicThroughput,
            scope: EffectScope::Servers(class_b.to_vec()),
            shape: ChangeShape::LevelShift { delta: 450.0 },
            delay_minutes: 0,
        });
    let change = b
        .deploy_change(
            ChangeKind::ConfigChange,
            svc,
            usize::MAX,
            change_minute,
            effect,
            "balance Redis query traffic between server classes",
        )
        .expect("valid effect");
    (b.build(), class_a.to_vec(), class_b.to_vec(), change)
}

/// Fig. 7: the advertising anti-cheat incident.
///
/// Returns the world, the ads service, and the faulty upgrade's change id.
/// The upgrade breaks the anti-cheat JSON check on one device class, so
/// ~45 % of genuinely human clicks get misclassified as cheats: the
/// strongly seasonal effective-click count collapses immediately.
pub fn ads_world(seed: u64) -> (World, ServiceId, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig::days(seed, 8));
    let ads = b.add_service("ads.serving", 10).expect("fresh world");
    let anticheat = b.add_service("ads.anticheat", 4).expect("fresh world");
    b.relate(ads, anticheat).expect("valid services");
    let mut kinds = KpiKind::INSTANCE_KINDS.to_vec();
    kinds.push(KpiKind::EffectiveClickCount);
    b.set_instance_kinds(ads, kinds);

    let change_minute = 7 * DAY + 14 * 60; // 14:00 on the evaluation day
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::EffectiveClickCount,
        EffectScope::TreatedInstances,
        -135.0, // ≈ 45 % of the per-instance base of 300
    );
    let change = b
        .deploy_change(
            ChangeKind::Upgrade,
            ads,
            usize::MAX,
            change_minute,
            effect,
            "advertising system performance upgrade",
        )
        .expect("valid effect");
    (b.build(), ads, change)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpi::KpiKey;
    use funnel_timeseries::stats::mean;
    use funnel_topology::impact::Entity;

    #[test]
    fn evaluation_cohort_shape() {
        let (world, meta) = evaluation_world(1);
        assert_eq!(meta.changes.len(), 144);
        assert_eq!(meta.changes.iter().filter(|(_, e)| *e).count(), 72);
        assert_eq!(meta.services.len(), 19);
        assert_eq!(world.change_log().len(), 144);
        // Dark/full split: 108 dark.
        let dark = world
            .change_log()
            .all()
            .iter()
            .filter(|c| c.launch == funnel_topology::change::LaunchMode::Dark)
            .count();
        assert_eq!(dark, 108);
        // Ground truth exists exactly for effecting changes.
        let gt = world.ground_truth();
        assert!(!gt.is_empty());
        let effecting: std::collections::BTreeSet<_> = meta
            .changes
            .iter()
            .filter(|(_, e)| *e)
            .map(|(id, _)| *id)
            .collect();
        assert!(gt.iter().all(|g| effecting.contains(&g.change)));
    }

    #[test]
    fn evaluation_world_is_deterministic() {
        let (w1, _) = evaluation_world(5);
        let (w2, _) = evaluation_world(5);
        let key = world_first_key(&w1);
        assert_eq!(w1.series(&key).unwrap(), w2.series(&key).unwrap());
    }

    fn world_first_key(w: &World) -> KpiKey {
        w.all_keys()[0]
    }

    #[test]
    fn redis_classes_swap_load() {
        let (world, class_a, class_b, change) = redis_world(2);
        let minute = world.change_log().get(change).unwrap().minute;
        let a_key = KpiKey::new(Entity::Server(class_a[0]), KpiKind::NicThroughput);
        let b_key = KpiKey::new(Entity::Server(class_b[0]), KpiKind::NicThroughput);
        let a = world.series(&a_key).unwrap();
        let bb = world.series(&b_key).unwrap();
        let a_before = mean(a.slice(minute - 120, minute));
        let a_after = mean(a.slice(minute, minute + 120));
        let b_before = mean(bb.slice(minute - 120, minute));
        let b_after = mean(bb.slice(minute, minute + 120));
        assert!(
            a_before > 800.0 && a_after < 600.0,
            "A {a_before} → {a_after}"
        );
        assert!(
            b_before < 250.0 && b_after > 400.0,
            "B {b_before} → {b_after}"
        );
        // 12 ground-truth server items (6 down + 6 up).
        assert_eq!(world.ground_truth().len(), 12);
    }

    #[test]
    fn ads_clicks_collapse_after_upgrade() {
        let (world, ads, change) = ads_world(3);
        let minute = world.change_log().get(change).unwrap().minute;
        let key = KpiKey::new(Entity::Service(ads), KpiKind::EffectiveClickCount);
        let s = world.series(&key).unwrap();
        let before = mean(s.slice(minute - 60, minute));
        let after = mean(s.slice(minute, minute + 60));
        assert!(after < 0.7 * before, "clicks {before} → {after}");
        // Seasonality is strong: the same clock hour one week earlier (same
        // day-of-week) is close to `before`, confirming the drop is the
        // upgrade, not the diurnal/weekly pattern.
        let last_week = mean(s.slice(minute - 7 * DAY - 60, minute - 7 * DAY));
        assert!(
            (last_week - before).abs() < 0.25 * before,
            "last week {last_week} vs before {before}"
        );
    }
}
