//! Concurrency tests for the central metric store: many agent threads
//! appending while subscribers consume — the contention pattern of the real
//! deployment (§2.2: every server's agent pushes once a minute while FUNNEL
//! and other systems subscribe).

use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::store::MetricStore;
use funnel_topology::impact::Entity;
use funnel_topology::model::ServerId;
use std::sync::Arc;

fn key(n: u32) -> KpiKey {
    KpiKey::new(Entity::Server(ServerId(n)), KpiKind::CpuUtilization)
}

#[test]
fn parallel_appenders_disjoint_keys() {
    let store = MetricStore::shared();
    let threads = 8;
    let minutes = 500u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for m in 0..minutes {
                    store.append(key(t), m, (t as f64) * 1000.0 + m as f64);
                }
            });
        }
    });
    for t in 0..threads {
        let series = store.get(&key(t)).expect("series exists");
        assert_eq!(series.len(), minutes as usize);
        assert_eq!(series.at(7), Some((t as f64) * 1000.0 + 7.0));
    }
}

#[test]
fn subscriber_sees_every_update_for_its_key_under_load() {
    let store = MetricStore::shared();
    let watched = key(0);
    let sub = store.subscribe(Some(vec![watched]), 4096);
    let minutes = 300u64;
    std::thread::scope(|s| {
        // Noisy neighbours on other keys.
        for t in 1..6 {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for m in 0..minutes {
                    store.append(key(t), m, m as f64);
                }
            });
        }
        // The watched key's writer.
        let store2 = Arc::clone(&store);
        s.spawn(move || {
            for m in 0..minutes {
                store2.append(watched, m, m as f64 * 2.0);
            }
        });
    });
    let mut got = Vec::new();
    while let Ok(m) = sub.receiver().try_recv() {
        assert_eq!(m.key, watched);
        got.push(m.minute);
    }
    assert_eq!(got.len(), minutes as usize);
    assert!(got.windows(2).all(|w| w[0] < w[1]), "updates out of order");
}

#[test]
fn many_subscribers_shared_feed() {
    let store = MetricStore::shared();
    let subs: Vec<_> = (0..10).map(|_| store.subscribe(None, 1024)).collect();
    for m in 0..200 {
        store.append(key(1), m, m as f64);
    }
    for sub in &subs {
        let mut count = 0;
        while sub.receiver().try_recv().is_ok() {
            count += 1;
        }
        assert_eq!(count, 200);
    }
}

#[test]
fn unsubscribe_during_publishing_is_safe() {
    let store = MetricStore::shared();
    let publisher = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for m in 0..2000 {
                store.append(key(2), m, m as f64);
            }
        })
    };
    // Subscribe/unsubscribe churn while the publisher runs.
    for _ in 0..50 {
        let s = store.subscribe(None, 8);
        let _ = s.receiver().try_recv();
        store.unsubscribe(&s);
    }
    publisher.join().expect("publisher ok");
    assert_eq!(store.get(&key(2)).unwrap().len(), 2000);
}
