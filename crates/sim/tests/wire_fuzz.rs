//! Fuzz-style property tests for the wire codec.
//!
//! The fault-injection transport hands the collector truncated and
//! bit-flipped frames on purpose, so `decode_frame` is a trust boundary:
//! for *any* input bytes it must return `Ok` with a well-formed frame or a
//! `WireError` — never panic, never over-allocate, never fabricate records
//! the bytes cannot hold.

use bytes::Bytes;
use funnel_sim::wire::{decode_frame, encode_frame, WireRecord};
use funnel_sim::{KpiKey, KpiKind};
use funnel_topology::impact::Entity;
use funnel_topology::model::{InstanceId, ServerId, ServiceId};
use proptest::prelude::*;

const KINDS: [KpiKind; 8] = [
    KpiKind::CpuUtilization,
    KpiKind::MemoryUtilization,
    KpiKind::NicThroughput,
    KpiKind::CpuContextSwitch,
    KpiKind::PageViewCount,
    KpiKind::PageViewResponseDelay,
    KpiKind::AccessFailureCount,
    KpiKind::EffectiveClickCount,
];

fn record(entity_sel: u8, id: u32, kind_sel: usize, value: f64) -> WireRecord {
    let entity = match entity_sel % 3 {
        0 => Entity::Server(ServerId(id)),
        1 => Entity::Instance(InstanceId(id)),
        _ => Entity::Service(ServiceId(id)),
    };
    WireRecord {
        key: KpiKey::new(entity, KINDS[kind_sel % KINDS.len()]),
        value,
    }
}

/// Decoding must be total: any outcome but a panic (and if the bytes say
/// `Ok`, the frame must be self-consistent with what bytes can hold).
fn assert_total(bytes: Vec<u8>) {
    let len = bytes.len();
    if let Ok(frame) = decode_frame(Bytes::from(bytes)) {
        // 16-byte header + 14 bytes per record: Ok implies the bytes were
        // long enough for every record it reports.
        assert!(len >= 16 + frame.records.len() * 14);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        assert_total(bytes);
    }

    #[test]
    fn truncated_frames_never_panic(
        minute in 0u64..100_000,
        agent in 0u32..64,
        entity_sels in prop::collection::vec(any::<u8>(), 0..12),
        cut_frac in 0.0..1.0f64,
    ) {
        let records: Vec<WireRecord> = entity_sels
            .iter()
            .enumerate()
            .map(|(i, &sel)| record(sel, i as u32, sel as usize, i as f64 * 1.5))
            .collect();
        let frame = encode_frame(minute, agent, &records);
        let cut = ((cut_frac * frame.len() as f64) as usize).min(frame.len());
        let truncated = frame[..cut].to_vec();
        let len = truncated.len();
        match decode_frame(Bytes::from(truncated)) {
            Ok(decoded) => {
                // Only a cut that kept everything can still decode (the
                // count field promises all records).
                prop_assert_eq!(len, frame.len());
                prop_assert_eq!(decoded.minute, minute);
                prop_assert_eq!(decoded.agent_id, agent);
                prop_assert_eq!(decoded.records, records);
            }
            Err(_) => prop_assert!(len < frame.len()),
        }
    }

    #[test]
    fn mutated_frames_never_panic(
        minute in 0u64..100_000,
        agent in 0u32..64,
        entity_sels in prop::collection::vec(any::<u8>(), 1..12),
        flip_frac in 0.0..1.0f64,
        mask in 1u8..255,
    ) {
        let records: Vec<WireRecord> = entity_sels
            .iter()
            .enumerate()
            .map(|(i, &sel)| record(sel, i as u32, sel as usize, -0.25 * i as f64))
            .collect();
        let mut bytes = encode_frame(minute, agent, &records).to_vec();
        let idx = ((flip_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[idx] ^= mask;
        assert_total(bytes);
    }

    #[test]
    fn clean_roundtrip_is_exact(
        minute in 0u64..10_000_000,
        agent in 0u32..1024,
        entity_sels in prop::collection::vec(any::<u8>(), 0..20),
    ) {
        let records: Vec<WireRecord> = entity_sels
            .iter()
            .enumerate()
            .map(|(i, &sel)| record(sel, sel as u32 * 7 + i as u32, i, f64::from(sel) / 3.0))
            .collect();
        let frame = encode_frame(minute, agent, &records);
        let decoded = decode_frame(frame).expect("clean frames decode");
        prop_assert_eq!(decoded.minute, minute);
        prop_assert_eq!(decoded.agent_id, agent);
        prop_assert_eq!(decoded.records, records);
    }
}
