//! Fuzz-style property tests for the wire codec.
//!
//! The fault-injection transport hands the collector truncated and
//! bit-flipped frames on purpose, so `decode_frame` is a trust boundary:
//! for *any* input bytes it must return `Ok` with a well-formed frame or a
//! `WireError` — never panic, never over-allocate, never fabricate records
//! the bytes cannot hold.

use bytes::Bytes;
use funnel_sim::collector::{MAX_CLOCK_SKEW_MINUTES, MAX_COUNTER_RESET_DROP};
use funnel_sim::wire::{decode_frame, encode_frame, WireRecord};
use funnel_sim::world::SimConfig;
use funnel_sim::{Collector, Ingest, KpiKey, KpiKind, MetricStore, World, WorldBuilder};
use funnel_topology::impact::Entity;
use funnel_topology::model::{InstanceId, ServerId, ServiceId};
use proptest::prelude::*;

const KINDS: [KpiKind; 8] = [
    KpiKind::CpuUtilization,
    KpiKind::MemoryUtilization,
    KpiKind::NicThroughput,
    KpiKind::CpuContextSwitch,
    KpiKind::PageViewCount,
    KpiKind::PageViewResponseDelay,
    KpiKind::AccessFailureCount,
    KpiKind::EffectiveClickCount,
];

fn record(entity_sel: u8, id: u32, kind_sel: usize, value: f64) -> WireRecord {
    let entity = match entity_sel % 3 {
        0 => Entity::Server(ServerId(id)),
        1 => Entity::Instance(InstanceId(id)),
        _ => Entity::Service(ServiceId(id)),
    };
    WireRecord {
        key: KpiKey::new(entity, KINDS[kind_sel % KINDS.len()]),
        value,
    }
}

/// Decoding must be total: any outcome but a panic (and if the bytes say
/// `Ok`, the frame must be self-consistent with what bytes can hold).
fn assert_total(bytes: Vec<u8>) {
    let len = bytes.len();
    if let Ok(frame) = decode_frame(Bytes::from(bytes)) {
        // 16-byte header + 14 bytes per record: Ok implies the bytes were
        // long enough for every record it reports.
        assert!(len >= 16 + frame.records.len() * 14);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        assert_total(bytes);
    }

    #[test]
    fn truncated_frames_never_panic(
        minute in 0u64..100_000,
        agent in 0u32..64,
        entity_sels in prop::collection::vec(any::<u8>(), 0..12),
        cut_frac in 0.0..1.0f64,
    ) {
        let records: Vec<WireRecord> = entity_sels
            .iter()
            .enumerate()
            .map(|(i, &sel)| record(sel, i as u32, sel as usize, i as f64 * 1.5))
            .collect();
        let frame = encode_frame(minute, agent, &records);
        let cut = ((cut_frac * frame.len() as f64) as usize).min(frame.len());
        let truncated = frame[..cut].to_vec();
        let len = truncated.len();
        match decode_frame(Bytes::from(truncated)) {
            Ok(decoded) => {
                // Only a cut that kept everything can still decode (the
                // count field promises all records).
                prop_assert_eq!(len, frame.len());
                prop_assert_eq!(decoded.minute, minute);
                prop_assert_eq!(decoded.agent_id, agent);
                prop_assert_eq!(decoded.records, records);
            }
            Err(_) => prop_assert!(len < frame.len()),
        }
    }

    #[test]
    fn mutated_frames_never_panic(
        minute in 0u64..100_000,
        agent in 0u32..64,
        entity_sels in prop::collection::vec(any::<u8>(), 1..12),
        flip_frac in 0.0..1.0f64,
        mask in 1u8..255,
    ) {
        let records: Vec<WireRecord> = entity_sels
            .iter()
            .enumerate()
            .map(|(i, &sel)| record(sel, i as u32, sel as usize, -0.25 * i as f64))
            .collect();
        let mut bytes = encode_frame(minute, agent, &records).to_vec();
        let idx = ((flip_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[idx] ^= mask;
        assert_total(bytes);
    }

    #[test]
    fn clean_roundtrip_is_exact(
        minute in 0u64..10_000_000,
        agent in 0u32..1024,
        entity_sels in prop::collection::vec(any::<u8>(), 0..20),
    ) {
        let records: Vec<WireRecord> = entity_sels
            .iter()
            .enumerate()
            .map(|(i, &sel)| record(sel, sel as u32 * 7 + i as u32, i, f64::from(sel) / 3.0))
            .collect();
        let frame = encode_frame(minute, agent, &records);
        let decoded = decode_frame(frame).expect("clean frames decode");
        prop_assert_eq!(decoded.minute, minute);
        prop_assert_eq!(decoded.agent_id, agent);
        prop_assert_eq!(decoded.records, records);
    }
}

/// A minimal world whose collector the gate tests feed by hand.
fn small_world(seed: u64) -> World {
    let mut b = WorldBuilder::new(SimConfig {
        seed,
        start: 0,
        duration: 16,
    });
    b.add_service("prod.fuzz", 2).unwrap();
    b.build()
}

// The collector's plausibility gates sit behind the codec: bytes that
// *decode* cleanly can still carry hostile payloads — NaN/±Inf values,
// counter resets, clock-skewed minute stamps. Each gate must quarantine
// with its own counter and leave no trace in the store.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nonfinite_record_values_are_gated_with_their_own_counter(
        seed in 0u64..1000,
        sels in prop::collection::vec(any::<u8>(), 1..24),
    ) {
        let world = small_world(seed);
        let store = MetricStore::new();
        let mut collector = Collector::for_world(&world, &store, 1, 3);
        let mut bad = 0usize;
        let records: Vec<WireRecord> = sels
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let value = match s % 4 {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    _ => i as f64,
                };
                if !value.is_finite() {
                    bad += 1;
                }
                record(s, i as u32, i, value)
            })
            .collect();
        let frame = encode_frame(5, 0, &records);
        // The frame itself is live — only the hostile records are dropped.
        prop_assert!(matches!(collector.classify(&frame), Ingest::Live(_)));
        collector.ingest(&frame);
        let stats = collector.stats();
        prop_assert_eq!(stats.nonfinite_records, bad);
        prop_assert_eq!(stats.invalid_records, bad);
        prop_assert_eq!(stats.records, records.len() - bad);
    }

    #[test]
    fn counter_resets_are_gated_with_their_own_counter(
        seed in 0u64..1000,
        base in 2.0e9f64..1.0e12,
        extra in 0.0..1.0f64,
    ) {
        let world = small_world(seed);
        let store = MetricStore::new();
        let mut collector = Collector::for_world(&world, &store, 1, 3);
        let one = |value: f64| vec![record(0, 7, 0, value)];
        collector.ingest(&encode_frame(0, 0, &one(base)));
        // A one-minute drop beyond the gate is a reset artifact…
        let reset = base - MAX_COUNTER_RESET_DROP - 1.0 - extra * 1e9;
        collector.ingest(&encode_frame(1, 0, &one(reset)));
        prop_assert_eq!(collector.stats().counter_reset_records, 1);
        prop_assert_eq!(collector.stats().invalid_records, 1);
        // …while a large-but-plausible drop from the same last value is
        // believed (the gated record never became the reference).
        let plausible = base - 0.5 * MAX_COUNTER_RESET_DROP;
        collector.ingest(&encode_frame(2, 0, &one(plausible)));
        prop_assert_eq!(collector.stats().counter_reset_records, 1);
        prop_assert_eq!(collector.stats().records, 2);
    }

    #[test]
    fn clock_skew_beyond_the_bound_is_quarantined(
        seed in 0u64..1000,
        start in 0u64..10_000,
        ahead in 1u64..5_000,
    ) {
        let world = small_world(seed);
        let store = MetricStore::new();
        let horizon = 3u64;
        let mut collector = Collector::for_world(&world, &store, 2, horizon);
        let recs = vec![record(0, 1, 0, 1.0)];
        // An agent's very first frame is always believed, however far
        // ahead: there is no watermark to measure skew against.
        let first = encode_frame(start + 1_000_000, 1, &recs);
        prop_assert!(matches!(collector.classify(&first), Ingest::Live(_)));
        // Establish agent 0's watermark, then probe the bound.
        collector.ingest(&encode_frame(start, 0, &recs));
        let edge = start + horizon + MAX_CLOCK_SKEW_MINUTES;
        let at_edge = encode_frame(edge, 0, &recs);
        prop_assert!(matches!(collector.classify(&at_edge), Ingest::Live(_)));
        let skewed = encode_frame(edge + ahead, 0, &recs);
        prop_assert!(matches!(collector.classify(&skewed), Ingest::ClockSkewed(_)));
        collector.ingest(&skewed);
        prop_assert_eq!(collector.stats().clock_skewed_frames, 1);
        prop_assert_eq!(collector.stats().quarantined_frames, 1);
        // The skewed frame moved no watermark: the agent keeps working at
        // sane minutes instead of having its future frames misrouted.
        let next = encode_frame(start + 1, 0, &recs);
        prop_assert!(matches!(collector.classify(&next), Ingest::Live(_)));
    }
}
