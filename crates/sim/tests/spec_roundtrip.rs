//! JSON round-trip tests for the declarative world spec.

use funnel_sim::spec::*;

fn demo_json() -> &'static str {
    r#"{
        "seed": 11,
        "days": 8,
        "services": [
            {"name": "pay.gateway", "instances": 6},
            {"name": "pay.ledger", "instances": 3, "extra_kinds": ["effective_click_count"]}
        ],
        "relations": [["pay.gateway", "pay.ledger"]],
        "changes": [
            {
                "service": "pay.gateway",
                "kind": "upgrade",
                "targets": 2,
                "day": 7,
                "minute_of_day": 540,
                "description": "gateway v9",
                "effects": [
                    {"kpi": "access_failure_count", "scope": "treated_instances", "delta": 40.0},
                    {"kpi": "memory_utilization", "scope": "treated_servers", "delta": 12.0, "ramp_minutes": 30}
                ]
            },
            {
                "service": "pay.ledger",
                "kind": "config_change",
                "targets": 3,
                "day": 7,
                "minute_of_day": 700
            }
        ],
        "shocks": [
            {"services": ["pay.ledger"], "kpi": "page_view_count", "delta": -200.0,
             "day": 7, "minute_of_day": 800, "spike_minutes": 4}
        ]
    }"#
}

#[test]
fn json_parses_and_builds() {
    let spec: WorldSpec = serde_json::from_str(demo_json()).expect("valid JSON spec");
    assert_eq!(spec.services.len(), 2);
    assert_eq!(spec.changes.len(), 2);
    let built = spec.build().expect("buildable");
    assert_eq!(built.changes.len(), 2);
    let log = built.world.change_log();
    // Change 0 is a dark launch (2 of 6), change 1 full (3 of 3).
    use funnel_topology::change::LaunchMode;
    assert_eq!(log.get(built.changes[0]).unwrap().launch, LaunchMode::Dark);
    assert_eq!(log.get(built.changes[1]).unwrap().launch, LaunchMode::Full);
    // Ground truth: 2 instance failures + service + 2 servers (memory ramp).
    assert_eq!(built.world.ground_truth().len(), 5);
}

#[test]
fn serialize_roundtrip_preserves_spec() {
    let spec: WorldSpec = serde_json::from_str(demo_json()).unwrap();
    let text = serde_json::to_string_pretty(&spec).unwrap();
    let again: WorldSpec = serde_json::from_str(&text).unwrap();
    assert_eq!(spec, again);
}

#[test]
fn built_world_assessable_end_to_end() {
    let spec: WorldSpec = serde_json::from_str(demo_json()).unwrap();
    let built = spec.build().unwrap();
    let funnel = funnel_core::pipeline::Funnel::paper_default();
    let a = funnel
        .assess_change(&built.world, built.changes[0])
        .expect("assessable");
    assert!(
        a.has_impact(),
        "the 40-unit failure surge should be attributed"
    );
}
