//! Partition windows, heal modes, and collector backfill, end to end.
//!
//! The invariants under test: a healed buffered partition recovers every
//! dark-span measurement bit-exactly (coverage mask included); silent drop
//! loses the span but stays honest in the mask; the whole flow is
//! deterministic across runs *and* across shard counts for shard-count-
//! invariant scopes; and backfill never double-writes a bin that already
//! holds a real measurement.

use funnel_sim::agent::{replay_prefix, replay_with_faults};
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::faults::{FaultPlan, HealMode, PartitionScope, PartitionWindow};
use funnel_sim::kpi::KpiKind;
use funnel_sim::store::MetricStore;
use funnel_sim::world::{SimConfig, World, WorldBuilder};
use funnel_topology::change::ChangeKind;

const DURATION: usize = 240;
const WINDOW: PartitionWindow = PartitionWindow {
    scope: PartitionScope::Collector,
    start: 80,
    duration: 40,
    heal: HealMode::SilentDrop, // overridden per test
};

fn test_world() -> World {
    let mut b = WorldBuilder::new(SimConfig {
        seed: 23,
        start: 0,
        duration: DURATION,
    });
    let svc = b.add_service("prod.web", 3).unwrap();
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewCount,
        EffectScope::TreatedInstances,
        -400.0,
    );
    b.deploy_change(ChangeKind::Upgrade, svc, 1, 150, effect, "pvc drop")
        .unwrap();
    b.build()
}

fn plan(heal: HealMode, scope: PartitionScope) -> FaultPlan {
    FaultPlan::none().with_partition(PartitionWindow {
        heal,
        scope,
        ..WINDOW
    })
}

#[test]
fn buffered_burst_heal_recovers_the_full_span() {
    let world = test_world();
    let store = MetricStore::new();
    let stats = replay_with_faults(
        &world,
        &store,
        3,
        plan(
            HealMode::BufferedBurst { queue: 64 },
            PartitionScope::Collector,
        ),
    )
    .unwrap();
    assert_eq!(stats.partition_lost_frames, 0);
    // Whole-collector burst arrives in minute order before the heal
    // minute's live frame, so it flows through the live path — no frame
    // needs the historical backfill stage.
    assert_eq!(stats.backfilled_frames, 0);
    // Every key matches direct generation exactly, with full coverage.
    for key in world.all_keys() {
        let direct = world.series(&key).unwrap();
        let stored = store.get(&key).unwrap_or_else(|| panic!("{key:?} missing"));
        assert_eq!(stored.len(), direct.len(), "{key:?}");
        for (a, b) in stored.values().iter().zip(direct.values()) {
            assert!((a - b).abs() < 1e-9, "{key:?}");
        }
        assert_eq!(
            store.coverage(&key, 0, DURATION as u64),
            1.0,
            "{key:?} coverage"
        );
    }
}

#[test]
fn staggered_catch_up_backfills_historic_bins_exactly() {
    let world = test_world();
    let store = MetricStore::new();
    // Zone 1 of 2 dark for 40 minutes; catch-up drains 4 frames/minute, so
    // the backlog takes 10 post-heal minutes to clear while zone 0 keeps
    // reporting — the later chunks land behind the collector's frontier
    // and must ride the backfill path.
    let stats = replay_with_faults(
        &world,
        &store,
        4,
        plan(
            HealMode::StaggeredCatchUp {
                queue: 64,
                per_minute: 4,
            },
            PartitionScope::Zone { zone: 1, zones: 2 },
        ),
    )
    .unwrap();
    assert_eq!(stats.partition_lost_frames, 0);
    assert!(
        stats.backfilled_frames > 0,
        "staggered heal never exercised the backfill stage"
    );
    assert!(stats.backfilled_records > 0);
    assert_eq!(stats.backfill_rejected_records, 0);
    assert_eq!(store.stats().backfill_rejected, 0);
    // After the catch-up drains, the store is indistinguishable from a
    // clean replay: every bin real, every value exact.
    for key in world.all_keys() {
        let direct = world.series(&key).unwrap();
        let stored = store.get(&key).unwrap_or_else(|| panic!("{key:?} missing"));
        assert_eq!(stored.len(), direct.len(), "{key:?}");
        for (a, b) in stored.values().iter().zip(direct.values()) {
            assert!((a - b).abs() < 1e-9, "{key:?}");
        }
        assert_eq!(
            store.coverage(&key, 0, DURATION as u64),
            1.0,
            "{key:?} coverage"
        );
    }
}

#[test]
fn silent_drop_leaves_an_honest_gap() {
    let world = test_world();
    let store = MetricStore::new();
    let stats = replay_with_faults(
        &world,
        &store,
        3,
        plan(HealMode::SilentDrop, PartitionScope::Collector),
    )
    .unwrap();
    assert_eq!(stats.partition_lost_frames, 3 * 40);
    assert_eq!(stats.backfilled_frames, 0);
    for key in world.all_keys() {
        let mask = store
            .mask(&key)
            .unwrap_or_else(|| panic!("{key:?} missing"));
        // The dark span is one contiguous gap, visible as such.
        assert_eq!(mask.gaps_in(0, DURATION as u64), vec![(80, 120)], "{key:?}");
        assert_eq!(mask.longest_gap(0, DURATION as u64), 40, "{key:?}");
        // The series itself stays dense (forward-filled), never lying with
        // holes downstream code cannot represent.
        let stored = store.get(&key).unwrap();
        assert_eq!(stored.len(), DURATION, "{key:?}");
    }
}

#[test]
fn bounded_queue_evicts_oldest_and_counts_losses() {
    let world = test_world();
    let store = MetricStore::new();
    // Queue holds 10 of the 40 dark minutes: 30 evictions per dark shard.
    let stats = replay_with_faults(
        &world,
        &store,
        2,
        plan(
            HealMode::BufferedBurst { queue: 10 },
            PartitionScope::Shard(1),
        ),
    )
    .unwrap();
    assert_eq!(stats.partition_lost_frames, 30);
    // The surviving tail of the span (its newest 10 minutes) made it back.
    let key = world
        .all_keys()
        .into_iter()
        .find(|k| store.mask(k).is_some_and(|m| m.longest_gap(0, 240) > 0))
        .expect("some key lost coverage");
    let mask = store.mask(&key).unwrap();
    assert_eq!(mask.gaps_in(0, DURATION as u64), vec![(80, 110)]);
}

#[test]
fn unhealed_prefix_shows_open_gap_then_full_replay_heals_it() {
    let world = test_world();
    let plan = plan(
        HealMode::StaggeredCatchUp {
            queue: 64,
            per_minute: 4,
        },
        PartitionScope::Collector,
    );

    // Cut off mid-partition: the queue never drained.
    let interim = MetricStore::new();
    let stats = replay_prefix(&world, &interim, 3, plan.clone(), 100).unwrap();
    assert_eq!(stats.minutes, 100);
    // Dark from 80, cutoff at 100, still partitioned: queue lost.
    assert_eq!(stats.partition_lost_frames, 3 * 20);
    for key in world.all_keys() {
        if let Some(mask) = interim.mask(&key) {
            assert_eq!(mask.gaps_in(0, 100), vec![(80, 100)], "{key:?}");
        }
    }

    // The same plan replayed to completion heals completely.
    let healed = MetricStore::new();
    replay_with_faults(&world, &healed, 3, plan).unwrap();
    for key in world.all_keys() {
        assert_eq!(
            healed.coverage(&key, 0, DURATION as u64),
            1.0,
            "{key:?} not healed"
        );
    }
}

#[test]
fn healed_replay_is_deterministic_across_shard_counts() {
    // Collector scope darkens every shard regardless of how many there
    // are, so the healed store must be bit-identical for 3 vs 7 shards —
    // the backfill flush order (shard, minute) cannot leak thread or
    // shard-count structure into the data.
    let world = test_world();
    let plan = plan(
        HealMode::StaggeredCatchUp {
            queue: 64,
            per_minute: 2,
        },
        PartitionScope::Collector,
    );
    let a = MetricStore::new();
    replay_with_faults(&world, &a, 3, plan.clone()).unwrap();
    let b = MetricStore::new();
    replay_with_faults(&world, &b, 7, plan.clone()).unwrap();
    let c = MetricStore::new();
    replay_with_faults(&world, &c, 3, plan).unwrap();
    assert_eq!(a.keys(), b.keys());
    for key in a.keys() {
        assert_eq!(a.get(&key), b.get(&key), "{key:?} series diverged");
        assert_eq!(a.mask(&key), b.mask(&key), "{key:?} mask diverged");
        assert_eq!(a.get(&key), c.get(&key), "{key:?} not reproducible");
        assert_eq!(a.mask(&key), c.mask(&key), "{key:?} not reproducible");
    }
}
