//! Regression tests for funnel-lint's `unordered-iteration` sweep: the
//! store's key enumeration and the collector's per-minute aggregation
//! must not depend on insertion order (which, with a hash map underneath,
//! would really mean hasher order — different on every run).

use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::store::MetricStore;
use funnel_topology::impact::Entity;
use funnel_topology::model::{InstanceId, ServerId, ServiceId};

/// A spread of keys across entity levels and KPI kinds.
fn key_set() -> Vec<KpiKey> {
    let mut keys = Vec::new();
    for n in 0..6u32 {
        keys.push(KpiKey::new(
            Entity::Server(ServerId(n)),
            KpiKind::CpuUtilization,
        ));
        keys.push(KpiKey::new(
            Entity::Instance(InstanceId(n)),
            KpiKind::PageViewCount,
        ));
        keys.push(KpiKey::new(
            Entity::Instance(InstanceId(n)),
            KpiKind::PageViewResponseDelay,
        ));
        keys.push(KpiKey::new(
            Entity::Service(ServiceId(n)),
            KpiKind::AccessFailureCount,
        ));
    }
    keys
}

/// A deterministic per-key value so both stores hold identical series.
fn value_for(key: &KpiKey, minute: u64) -> f64 {
    let tag = match key.entity {
        Entity::Server(s) => s.0 as f64,
        Entity::Instance(i) => 100.0 + i.0 as f64,
        Entity::Service(s) => 200.0 + s.0 as f64,
    };
    tag * 7.0 + minute as f64 * 0.5
}

/// Renders everything a downstream report could observe from the store,
/// byte for byte: key enumeration order, series values, coverage masks.
fn report_bytes(store: &MetricStore) -> String {
    let mut out = String::new();
    for key in store.keys() {
        let series = store.get(&key).expect("enumerated key exists");
        out.push_str(&format!("{key:?} start={}\n", series.start()));
        for v in series.values() {
            out.push_str(&format!("  {}\n", v.to_bits()));
        }
        out.push_str(&format!("  coverage={}\n", store.coverage(&key, 0, 10)));
    }
    out
}

#[test]
fn shuffled_insertion_order_produces_identical_report_bytes() {
    let keys = key_set();

    // Store A: keys appended in natural order; Store B: reversed, with an
    // extra deterministic interleave so no two keys keep their relative
    // insertion positions.
    let store_a = MetricStore::new();
    for minute in 0..10u64 {
        for key in &keys {
            store_a.append(*key, minute, value_for(key, minute));
        }
    }
    let store_b = MetricStore::new();
    for minute in 0..10u64 {
        let mut shuffled: Vec<&KpiKey> = keys.iter().rev().collect();
        // Deterministic mid-point rotation, different per minute.
        let rot = (minute as usize * 5 + 3) % shuffled.len();
        shuffled.rotate_left(rot);
        for key in shuffled {
            store_b.append(*key, minute, value_for(key, minute));
        }
    }

    assert_eq!(store_a.keys(), store_b.keys(), "key enumeration diverged");
    assert_eq!(
        report_bytes(&store_a),
        report_bytes(&store_b),
        "report bytes depend on insertion order"
    );
}

#[test]
fn key_enumeration_is_sorted() {
    let store = MetricStore::new();
    for key in key_set().iter().rev() {
        store.append(*key, 0, 1.0);
    }
    let keys = store.keys();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "keys() must be deterministic and sorted");
}
