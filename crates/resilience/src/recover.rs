//! Durable ingestion hooks and crash recovery.
//!
//! [`DurableHooks`] plugs into the collector's three-step ingest protocol
//! ([`IngestHooks`]): every accepted frame is WAL-appended *before* the
//! commit that mutates the store, and every `cadence` accepted frames a
//! full [`Checkpoint`] is written at the post-commit boundary. Because
//! the hook runs between classification and commit, the WAL is always at
//! least as new as the store — recovery can only ever need to *replay*
//! frames, never to un-commit them.
//!
//! [`recover`] rebuilds the durable state after a crash: load the newest
//! valid checkpoint (torn newest falls back to its predecessor), restore
//! the store entries and collector state from it, then re-ingest the WAL
//! tail past the checkpoint's frame cursor through the very same
//! classify/commit path live ingestion uses. If the WAL carries the
//! end-of-stream marker the collector's `finish()` runs too; otherwise
//! the caller resumes live ingestion from the returned
//! [`CollectorState`] via
//! [`replay_durable`](funnel_sim::agent::replay_durable), whose per-agent
//! replay cursor fast-forwards past everything already durable.
//!
//! [`Kill`] is the chaos harness's seeded kill switch: it turns one
//! specific write — the Nth frame append or the Nth checkpoint — into a
//! torn partial write followed by an ingest abort, which is exactly what
//! `kill -9` at that instant leaves on disk.

use crate::checkpoint::{Checkpoint, CheckpointStore};
use crate::wal::{self, WalWriter};
use crate::ResilienceError;
use bytes::Bytes;
use funnel_core::reassess::QueueState;
use funnel_sim::collector::{Collector, CollectorState, IngestAbort, IngestHooks};
use funnel_sim::store::MetricStore;
use funnel_sim::world::World;
use std::path::{Path, PathBuf};

/// Where the durable state lives and how often checkpoints fire.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// WAL segment directory.
    pub wal_dir: PathBuf,
    /// Checkpoint directory.
    pub checkpoint_dir: PathBuf,
    /// Byte threshold at which WAL segments roll over.
    pub segment_limit: u64,
    /// Checkpoint every this many accepted frames (`0` disables periodic
    /// checkpoints; recovery then replays the whole WAL).
    pub cadence: u64,
    /// The seeded kill switch (chaos harness only).
    pub kill: Kill,
}

impl DurableOptions {
    /// Durability rooted at `base` (`base/wal`, `base/ckpt`) with a small
    /// segment limit and a frame cadence sized for tests.
    pub fn at(base: &Path) -> Self {
        Self {
            wal_dir: base.join("wal"),
            checkpoint_dir: base.join("ckpt"),
            segment_limit: 64 * 1024,
            cadence: 64,
            kill: Kill::None,
        }
    }
}

/// A seeded kill point: tears one specific durable write mid-flight and
/// aborts ingestion there, modelling `kill -9` at that instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kill {
    /// Never fires (production).
    #[default]
    None,
    /// Tear the WAL append of accepted frame `index` (0-based), keeping
    /// only the first `keep` bytes of its record.
    Frame {
        /// Which accepted frame dies mid-append.
        index: u64,
        /// Bytes of the record that reach disk before the kill.
        keep: usize,
    },
    /// Tear checkpoint number `index` (0-based), keeping only the first
    /// `keep` bytes of the file.
    Checkpoint {
        /// Which periodic checkpoint dies mid-write.
        index: u64,
        /// Bytes of the file that reach disk before the kill.
        keep: usize,
    },
}

/// The [`IngestHooks`] implementation that makes ingestion durable.
///
/// I/O failures cannot travel through the hook trait, so the first one is
/// parked in [`DurableHooks::error`] and ingestion aborts; callers check
/// it after the replay returns.
#[derive(Debug)]
pub struct DurableHooks {
    wal: WalWriter,
    checkpoints: CheckpointStore,
    cadence: u64,
    kill: Kill,
    frames: u64,
    checkpoints_written: u64,
    queue: QueueState,
    error: Option<ResilienceError>,
}

impl DurableHooks {
    /// Opens the durable state for a fresh ingest run.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Io`] on filesystem failure.
    pub fn create(options: &DurableOptions) -> Result<Self, ResilienceError> {
        Self::resume(options, 0)
    }

    /// Opens the durable state continuing after recovery:
    /// `frames_so_far` is [`Recovered::frames_in_wal`], so the frame
    /// numbering (and with it the checkpoint cadence and any [`Kill`]
    /// index) continues where the crashed process stopped.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Io`] on filesystem failure.
    pub fn resume(options: &DurableOptions, frames_so_far: u64) -> Result<Self, ResilienceError> {
        Ok(Self {
            wal: WalWriter::open(&options.wal_dir, options.segment_limit)?,
            checkpoints: CheckpointStore::open(&options.checkpoint_dir)?,
            cadence: options.cadence,
            kill: options.kill,
            frames: frames_so_far,
            checkpoints_written: 0,
            queue: QueueState::default(),
            error: None,
        })
    }

    /// Sets the re-assessment queue state stamped into subsequent
    /// checkpoints (defaults to empty — pure ingestion has no queue).
    pub fn set_queue_state(&mut self, queue: QueueState) {
        self.queue = queue;
    }

    /// The first I/O error the hooks hit, if any — the reason an aborted
    /// replay aborted, unless the abort came from a [`Kill`].
    pub fn error(&self) -> Option<&ResilienceError> {
        self.error.as_ref()
    }

    /// Accepted frames appended so far (including any inherited via
    /// [`DurableHooks::resume`]).
    pub fn frames(&self) -> u64 {
        self.frames
    }
}

impl IngestHooks for DurableHooks {
    fn on_accepted_frame(&mut self, raw: &Bytes) -> Result<(), IngestAbort> {
        if let Kill::Frame { index, keep } = self.kill {
            if self.frames == index {
                if let Err(e) = self.wal.append_torn_frame(raw, keep) {
                    self.error = Some(e);
                }
                return Err(IngestAbort);
            }
        }
        match self.wal.append_frame(raw) {
            Ok(()) => {
                self.frames += 1;
                Ok(())
            }
            Err(e) => {
                self.error = Some(e);
                Err(IngestAbort)
            }
        }
    }

    fn after_commit(&mut self, collector: &Collector<'_>) -> Result<(), IngestAbort> {
        if self.cadence == 0 || self.frames == 0 || !self.frames.is_multiple_of(self.cadence) {
            return Ok(());
        }
        let checkpoint = Checkpoint {
            wal_frames: self.frames,
            entries: collector.store().export_entries(),
            collector: collector.state().clone(),
            queue: self.queue.clone(),
        };
        if let Kill::Checkpoint { index, keep } = self.kill {
            if self.checkpoints_written == index {
                if let Err(e) = self.checkpoints.write_torn(&checkpoint, keep) {
                    self.error = Some(e);
                }
                return Err(IngestAbort);
            }
        }
        match self.checkpoints.write(&checkpoint) {
            Ok(_) => {
                self.checkpoints_written += 1;
                Ok(())
            }
            Err(e) => {
                self.error = Some(e);
                Err(IngestAbort)
            }
        }
    }

    fn on_end_of_stream(&mut self, _collector: &Collector<'_>) -> Result<(), IngestAbort> {
        match self.wal.append_end_of_stream() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.error = Some(e);
                Err(IngestAbort)
            }
        }
    }
}

/// Everything recovery rebuilt from the durable state.
#[derive(Debug)]
pub struct Recovered {
    /// The metric store, restored to the last durable commit boundary.
    pub store: MetricStore,
    /// The collector state to resume live ingestion from.
    pub state: CollectorState,
    /// The re-assessment queue from the checkpoint.
    pub queue: QueueState,
    /// Whether the WAL ended with the end-of-stream marker (in which case
    /// `finish()` already ran and the store is final).
    pub end_of_stream: bool,
    /// Whether a torn WAL tail was detected (and discarded).
    pub torn_wal_tail: bool,
    /// Total validated frames in the WAL.
    pub frames_in_wal: u64,
    /// Frames re-ingested past the checkpoint cursor.
    pub frames_replayed: u64,
    /// The checkpoint's frame cursor (0 when no checkpoint was usable).
    pub checkpoint_frames: u64,
    /// Whether a checkpoint was restored (vs. whole-WAL replay).
    pub used_checkpoint: bool,
}

/// Rebuilds the durable state after a crash: newest valid checkpoint +
/// WAL-tail replay through the live classify/commit path, under the
/// `recover.replay` span.
///
/// # Errors
///
/// [`ResilienceError::Io`] on filesystem failure,
/// [`ResilienceError::Corrupt`] when the WAL is damaged in a way no crash
/// produces (mid-log tears, records after end-of-stream, a checkpoint
/// cursor beyond the WAL).
pub fn recover(
    world: &World,
    shards: usize,
    horizon: u64,
    options: &DurableOptions,
) -> Result<Recovered, ResilienceError> {
    let span = funnel_obs::span!(funnel_obs::names::SPAN_RECOVER_REPLAY);
    let checkpoint = CheckpointStore::latest_valid(&options.checkpoint_dir)?;
    let scan = wal::scan(&options.wal_dir)?;

    let store = MetricStore::new();
    let (state, queue, skip, used_checkpoint) = match checkpoint {
        Some(c) => {
            if c.wal_frames as usize > scan.frames.len() {
                return Err(ResilienceError::Corrupt(format!(
                    "checkpoint covers {} frames but the WAL holds {}",
                    c.wal_frames,
                    scan.frames.len()
                )));
            }
            store.restore_entries(c.entries);
            (c.collector, c.queue, c.wal_frames, true)
        }
        None => (CollectorState::new(shards), QueueState::default(), 0, false),
    };

    let mut collector = Collector::resume(world, &store, shards, horizon, state);
    let mut frames_replayed = 0u64;
    for payload in scan.frames.iter().skip(skip as usize) {
        collector.ingest(&Bytes::from(payload.clone()));
        frames_replayed += 1;
    }
    if scan.end_of_stream {
        collector.finish();
    }
    let (state, _stats) = collector.into_parts();
    drop(span);
    funnel_obs::flush_thread();

    Ok(Recovered {
        store,
        state,
        queue,
        end_of_stream: scan.end_of_stream,
        torn_wal_tail: scan.torn_tail,
        frames_in_wal: scan.frames.len() as u64,
        frames_replayed,
        checkpoint_frames: skip,
        used_checkpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnel_sim::agent::{replay_durable, replay_with_faults};
    use funnel_sim::effect::ChangeEffect;
    use funnel_sim::faults::FaultPlan;
    use funnel_sim::kpi::KpiKind;
    use funnel_sim::world::{SimConfig, WorldBuilder};
    use funnel_sim::NoHooks;
    use funnel_topology::change::ChangeKind;
    use std::fs;

    fn test_world(seed: u64) -> World {
        let mut b = WorldBuilder::new(SimConfig {
            duration: 180,
            ..SimConfig::days(seed, 1)
        });
        let svc = b.add_service("prod.rec", 3).unwrap();
        b.deploy_change(
            ChangeKind::Upgrade,
            svc,
            1,
            90,
            ChangeEffect::none().with_level_shift(
                KpiKind::PageViewCount,
                funnel_sim::effect::EffectScope::TreatedInstances,
                -200.0,
            ),
            "t",
        )
        .unwrap();
        b.build()
    }

    fn tmp_base(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("funnel-rec-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn store_fingerprint(world: &World, store: &MetricStore) -> Vec<String> {
        let mut out = Vec::new();
        for key in world.all_keys() {
            let series = store.get(&key);
            let mask = store.mask(&key);
            out.push(format!("{key:?} {series:?} {mask:?}"));
        }
        out
    }

    #[test]
    fn durable_run_recovers_to_the_golden_store() {
        let world = test_world(7);
        let shards = 3;

        let golden = MetricStore::new();
        replay_with_faults(&world, &golden, shards, FaultPlan::none()).unwrap();

        for kill in [
            Kill::Frame { index: 5, keep: 6 },
            Kill::Frame {
                index: 200,
                keep: 0,
            },
            Kill::Checkpoint { index: 1, keep: 24 },
        ] {
            let base = tmp_base("golden");
            let mut options = DurableOptions::at(&base);
            options.cadence = 50;
            options.kill = kill;
            let crashed_store = MetricStore::new();
            let mut hooks = DurableHooks::create(&options).unwrap();
            let outcome = replay_durable(
                &world,
                &crashed_store,
                shards,
                FaultPlan::none(),
                180,
                None,
                &mut hooks,
            )
            .unwrap();
            assert!(outcome.aborted, "{kill:?} did not abort");
            assert!(hooks.error().is_none());

            // Recover, then resume ingestion to the end of the stream.
            options.kill = Kill::None;
            let recovered = recover(&world, shards, 0, &options).unwrap();
            assert!(!recovered.end_of_stream);
            let mut hooks = DurableHooks::resume(&options, recovered.frames_in_wal).unwrap();
            let resumed = replay_durable(
                &world,
                &recovered.store,
                shards,
                FaultPlan::none(),
                180,
                Some(recovered.state),
                &mut hooks,
            )
            .unwrap();
            assert!(!resumed.aborted);

            assert_eq!(
                store_fingerprint(&world, &golden),
                store_fingerprint(&world, &recovered.store),
                "diverged after {kill:?}"
            );
            let _ = fs::remove_dir_all(&base);
        }
    }

    #[test]
    fn clean_run_recovers_via_end_of_stream_marker() {
        let world = test_world(9);
        let shards = 3;
        let golden = MetricStore::new();
        replay_with_faults(&world, &golden, shards, FaultPlan::none()).unwrap();

        let base = tmp_base("eos");
        let options = DurableOptions::at(&base);
        let live = MetricStore::new();
        let mut hooks = DurableHooks::create(&options).unwrap();
        let outcome = replay_durable(
            &world,
            &live,
            shards,
            FaultPlan::none(),
            180,
            None,
            &mut hooks,
        )
        .unwrap();
        assert!(!outcome.aborted);

        // The process dies *after* a clean shutdown: recovery rebuilds the
        // final store from checkpoint + WAL alone (no live resume needed).
        let recovered = recover(&world, shards, 0, &options).unwrap();
        assert!(recovered.end_of_stream);
        assert!(recovered.used_checkpoint);
        assert!(recovered.frames_replayed < recovered.frames_in_wal);
        assert_eq!(
            store_fingerprint(&world, &golden),
            store_fingerprint(&world, &recovered.store),
        );
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn recovery_without_any_checkpoint_replays_the_whole_wal() {
        let world = test_world(11);
        let shards = 2;
        let golden = MetricStore::new();
        replay_with_faults(&world, &golden, shards, FaultPlan::none()).unwrap();

        let base = tmp_base("nockpt");
        let mut options = DurableOptions::at(&base);
        options.cadence = 0; // no periodic checkpoints at all
        let live = MetricStore::new();
        let mut hooks = DurableHooks::create(&options).unwrap();
        replay_durable(
            &world,
            &live,
            shards,
            FaultPlan::none(),
            180,
            None,
            &mut hooks,
        )
        .unwrap();

        let recovered = recover(&world, shards, 0, &options).unwrap();
        assert!(!recovered.used_checkpoint);
        assert_eq!(recovered.frames_replayed, recovered.frames_in_wal);
        assert_eq!(
            store_fingerprint(&world, &golden),
            store_fingerprint(&world, &recovered.store),
        );
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn suppressed_hooks_match_nohooks_semantics() {
        // A durable replay must not change what gets ingested: the store
        // from a hook-instrumented run equals the plain replay's store.
        let world = test_world(13);
        let golden = MetricStore::new();
        replay_durable(
            &world,
            &golden,
            3,
            FaultPlan::none(),
            180,
            None,
            &mut NoHooks,
        )
        .unwrap();

        let base = tmp_base("same");
        let options = DurableOptions::at(&base);
        let durable = MetricStore::new();
        let mut hooks = DurableHooks::create(&options).unwrap();
        replay_durable(
            &world,
            &durable,
            3,
            FaultPlan::none(),
            180,
            None,
            &mut hooks,
        )
        .unwrap();
        assert_eq!(
            store_fingerprint(&world, &golden),
            store_fingerprint(&world, &durable),
        );
        let _ = fs::remove_dir_all(&base);
    }
}
