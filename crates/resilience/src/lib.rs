//! Crash safety for the FUNNEL collector.
//!
//! The paper's deployment runs FUNNEL as a long-lived service beside the
//! metric collection substrate (§2.2, §5): agents ship measurement batches
//! every minute, the collector folds them into the metric store, and
//! assessments fire on every software change. A process crash anywhere in
//! that loop must not cost verdicts — the operations team treats a
//! delivered report as ground truth, so a recovered FUNNEL has to produce
//! the *byte-identical* report an uninterrupted run would have delivered.
//!
//! This crate supplies the durable half of that guarantee:
//!
//! * [`wal`] — a segmented, content-hashed ingest write-ahead log. Every
//!   frame the collector accepts is appended as a length-prefixed,
//!   FNV-hashed record *before* it is committed to the store, so a crash
//!   can lose at most the torn tail record the crash interrupted — which
//!   the agent-side replay protocol re-sends anyway. The format is
//!   fsync-free and deterministic: identical ingest runs produce
//!   byte-identical segments.
//! * [`checkpoint`] — periodic snapshots of the whole recovery point: the
//!   metric-store entries, the collector's in-flight state (watermarks,
//!   dedup memory, pending minutes, backfill stage), and the
//!   re-assessment queue. Recovery loads the newest valid checkpoint and
//!   replays only the WAL tail past it, instead of the whole log.
//! * [`mod@recover`] — the [`IngestHooks`](funnel_sim::IngestHooks)
//!   implementation that writes both during live ingestion
//!   ([`recover::DurableHooks`]), the seeded kill switch the chaos
//!   harness uses to tear either mid-write ([`recover::Kill`]), and
//!   [`recover::recover`] itself: checkpoint restore + WAL-tail replay
//!   under the `recover.replay` span.
//!
//! Every durability decision is observable through `funnel-obs` (WAL
//! segment sizes, the recovery span, and — downstream — the supervisor
//! counters), and every decode path treats corruption as data, not as a
//! panic: torn tails, bad hashes, and impossible counts all surface as
//! [`ResilienceError::Corrupt`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod recover;
pub mod wal;

pub use checkpoint::{Checkpoint, CheckpointStore};
pub use recover::{recover, DurableHooks, DurableOptions, Kill, Recovered};
pub use wal::{WalScan, WalWriter};

/// Errors from the durability layer.
#[derive(Debug)]
pub enum ResilienceError {
    /// A filesystem operation failed.
    Io(std::io::Error),
    /// Durable bytes failed validation (bad magic, hash mismatch, torn
    /// record in a sealed segment, impossible counts).
    Corrupt(String),
}

impl std::fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilienceError::Io(e) => write!(f, "durability I/O error: {e}"),
            ResilienceError::Corrupt(why) => write!(f, "corrupt durable state: {why}"),
        }
    }
}

impl std::error::Error for ResilienceError {}

impl From<std::io::Error> for ResilienceError {
    fn from(e: std::io::Error) -> Self {
        ResilienceError::Io(e)
    }
}

/// FNV-1a 64-bit — the workspace's standard content hash for durable
/// bytes: dependency-free, bit-identical everywhere, and fast enough to
/// hash every record on the ingest path.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}
