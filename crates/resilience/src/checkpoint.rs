//! Store checkpoints: the periodic snapshot half of crash recovery.
//!
//! A checkpoint captures one *recovery point* — everything the collector
//! and assessment loop would need to continue as if the process had never
//! died, taken at a single commit boundary:
//!
//! * the metric-store entries (per-KPI series + coverage masks),
//! * the collector's in-flight state ([`CollectorState`]: per-agent
//!   watermarks, dedup memory, pending minutes, backfill stage, partial
//!   aggregates),
//! * the re-assessment queue ([`QueueState`]), and
//! * the WAL frame count the snapshot covers, so recovery replays only
//!   the WAL tail past it.
//!
//! Files are written as `ckpt-<seq>.bin`: an 8-byte magic, a 64-bit
//! FNV-1a hash of the payload, then the payload — a hand-rolled
//! little-endian encoding (keys reuse the 6-byte wire layout via
//! [`key_to_bytes`]). The hash is validated *before* any parsing, and the
//! parser bounds-checks every read and caps every allocation by the bytes
//! actually remaining, so a torn or bit-flipped checkpoint is detected
//! cleanly, never a panic or an allocation bomb. The store keeps the two
//! newest files: a crash mid-checkpoint-write tears only the newest, and
//! [`CheckpointStore::latest_valid`] falls back to its predecessor.

use crate::{fnv1a, ResilienceError};
use funnel_core::reassess::{PendingItem, QueueState};
use funnel_sim::collector::{CollectorState, MinuteAccs};
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::wire::{key_from_bytes, key_to_bytes, WireRecord};
use funnel_timeseries::mask::CoverageMask;
use funnel_timeseries::series::TimeSeries;
use funnel_topology::change::ChangeId;
use funnel_topology::model::ServiceId;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// File magic: "FNLCKPT" + format version 1.
pub const MAGIC: [u8; 8] = *b"FNLCKPT1";

/// One complete recovery point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Checkpoint {
    /// How many WAL frames this snapshot covers: recovery replays the WAL
    /// from this index on.
    pub wal_frames: u64,
    /// The metric-store entries at the snapshot boundary.
    pub entries: Vec<(KpiKey, TimeSeries, CoverageMask)>,
    /// The collector's in-flight state at the same boundary.
    pub collector: CollectorState,
    /// The re-assessment queue (empty during pure ingestion).
    pub queue: QueueState,
}

// ---------------------------------------------------------------- encode --

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_key(out: &mut Vec<u8>, key: KpiKey) {
    out.extend_from_slice(&key_to_bytes(key));
}

fn put_accs(out: &mut Vec<u8>, accs: &MinuteAccs) {
    put_u64(out, accs.len() as u64);
    for (&(service, kind), cells) in accs {
        put_u32(out, service.0);
        out.push(kind.tag());
        put_u64(out, cells.len() as u64);
        for &(instance, value) in cells {
            put_u32(out, instance);
            put_f64(out, value);
        }
    }
}

/// Encodes a checkpoint's payload (everything after magic + hash).
fn encode_payload(checkpoint: &Checkpoint) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, checkpoint.wal_frames);

    put_u64(&mut out, checkpoint.entries.len() as u64);
    for (key, series, mask) in &checkpoint.entries {
        put_key(&mut out, *key);
        put_u64(&mut out, series.start());
        put_u64(&mut out, series.len() as u64);
        for &v in series.values() {
            put_f64(&mut out, v);
        }
        put_u64(&mut out, mask.start());
        let bits = mask.bits();
        put_u64(&mut out, bits.len() as u64);
        out.extend(bits.iter().map(|&b| u8::from(b)));
    }

    let state = &checkpoint.collector;
    put_u64(&mut out, state.watermarks.len() as u64);
    for wm in &state.watermarks {
        match wm {
            Some(minute) => {
                out.push(1);
                put_u64(&mut out, *minute);
            }
            None => out.push(0),
        }
    }
    put_u64(&mut out, state.seen.len() as u64);
    for seen in &state.seen {
        put_u64(&mut out, seen.len() as u64);
        for &minute in seen {
            put_u64(&mut out, minute);
        }
    }
    put_u64(&mut out, state.pending.len() as u64);
    for (&minute, (frames, accs)) in &state.pending {
        put_u64(&mut out, minute);
        put_u64(&mut out, *frames as u64);
        put_accs(&mut out, accs);
    }
    put_u64(&mut out, state.backfill_stage.len() as u64);
    for (&(agent, minute), records) in &state.backfill_stage {
        put_u32(&mut out, agent);
        put_u64(&mut out, minute);
        put_u64(&mut out, records.len() as u64);
        for record in records {
            put_key(&mut out, record.key);
            put_f64(&mut out, record.value);
        }
    }
    put_u64(&mut out, state.partial.len() as u64);
    for (&minute, accs) in &state.partial {
        put_u64(&mut out, minute);
        put_accs(&mut out, accs);
    }

    put_u64(&mut out, checkpoint.queue.pending.len() as u64);
    for item in &checkpoint.queue.pending {
        put_u32(&mut out, item.change.0);
        put_key(&mut out, item.key);
        put_u64(&mut out, item.window.0);
        put_u64(&mut out, item.window.1);
        put_f64(&mut out, item.required_coverage);
    }
    put_u64(&mut out, checkpoint.queue.applied.len() as u64);
    for (change, key) in &checkpoint.queue.applied {
        put_u32(&mut out, change.0);
        put_key(&mut out, *key);
    }
    out
}

/// Encodes a whole checkpoint file: magic, payload hash, payload.
pub fn encode_checkpoint(checkpoint: &Checkpoint) -> Vec<u8> {
    let payload = encode_payload(checkpoint);
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------- decode --

fn corrupt(why: impl Into<String>) -> ResilienceError {
    ResilienceError::Corrupt(why.into())
}

/// Little-endian value of up to 8 bytes — index-free, so the no-panic
/// guarantee is structural rather than argued from `take`'s bounds check.
fn le_bytes(b: &[u8]) -> u64 {
    b.iter()
        .rev()
        .fold(0u64, |acc, &x| (acc << 8) | u64::from(x))
}

/// Bounds-checked little-endian reader over a checkpoint payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ResilienceError> {
        let slice = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| corrupt("checkpoint payload truncated"))?;
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ResilienceError> {
        Ok(le_bytes(self.take(1)?) as u8)
    }

    fn u32(&mut self) -> Result<u32, ResilienceError> {
        Ok(le_bytes(self.take(4)?) as u32)
    }

    fn u64(&mut self) -> Result<u64, ResilienceError> {
        Ok(le_bytes(self.take(8)?))
    }

    fn f64(&mut self) -> Result<f64, ResilienceError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A declared element count, sanity-capped: `count * min_elem_size`
    /// must fit in the bytes remaining, so a corrupted count can neither
    /// drive a giant allocation nor a long parse loop.
    fn count(&mut self, min_elem_size: usize) -> Result<usize, ResilienceError> {
        let count = self.u64()? as usize;
        if count > self.remaining() / min_elem_size.max(1) {
            return Err(corrupt("checkpoint count exceeds remaining bytes"));
        }
        Ok(count)
    }

    fn key(&mut self) -> Result<KpiKey, ResilienceError> {
        let b = self.take(6)?;
        let mut arr = [0u8; 6];
        for (dst, &src) in arr.iter_mut().zip(b) {
            *dst = src;
        }
        key_from_bytes(arr).map_err(|e| corrupt(format!("checkpoint key: {e}")))
    }

    fn accs(&mut self) -> Result<MinuteAccs, ResilienceError> {
        let groups = self.count(13)?;
        let mut accs = MinuteAccs::new();
        for _ in 0..groups {
            let service = ServiceId(self.u32()?);
            let tag = self.u8()?;
            let kind =
                KpiKind::from_tag(tag).ok_or_else(|| corrupt(format!("bad KPI tag {tag}")))?;
            let cells = self.count(12)?;
            let mut vec = Vec::with_capacity(cells);
            for _ in 0..cells {
                let instance = self.u32()?;
                let value = self.f64()?;
                vec.push((instance, value));
            }
            accs.insert((service, kind), vec);
        }
        Ok(accs)
    }
}

/// Decodes a checkpoint file written by [`encode_checkpoint`].
///
/// # Errors
///
/// [`ResilienceError::Corrupt`] on bad magic, hash mismatch, truncation,
/// impossible counts, or unknown tags — never a panic.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, ResilienceError> {
    if bytes.len() < 16 {
        return Err(corrupt("checkpoint shorter than its header"));
    }
    let (header, payload) = bytes.split_at(16);
    let (magic, stored) = header.split_at(8);
    if magic != MAGIC {
        return Err(corrupt("bad checkpoint magic"));
    }
    let stored_hash = le_bytes(stored);
    if fnv1a(payload) != stored_hash {
        return Err(corrupt("checkpoint hash mismatch"));
    }

    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let wal_frames = r.u64()?;

    let entry_count = r.count(30)?;
    let mut entries = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        let key = r.key()?;
        let start = r.u64()?;
        let len = r.count(8)?;
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(r.f64()?);
        }
        let mask_start = r.u64()?;
        let bit_count = r.count(1)?;
        let mut bits = Vec::with_capacity(bit_count);
        for _ in 0..bit_count {
            bits.push(r.u8()? != 0);
        }
        entries.push((
            key,
            TimeSeries::new(start, values),
            CoverageMask::from_bits(mask_start, bits),
        ));
    }

    let mut collector = CollectorState::new(0);
    let wm_count = r.count(1)?;
    collector.watermarks = Vec::with_capacity(wm_count);
    for _ in 0..wm_count {
        let present = r.u8()? != 0;
        collector
            .watermarks
            .push(if present { Some(r.u64()?) } else { None });
    }
    let seen_count = r.count(8)?;
    collector.seen = Vec::with_capacity(seen_count);
    for _ in 0..seen_count {
        let minutes = r.count(8)?;
        let mut set = BTreeSet::new();
        for _ in 0..minutes {
            set.insert(r.u64()?);
        }
        collector.seen.push(set);
    }
    let pending_count = r.count(24)?;
    collector.pending = BTreeMap::new();
    for _ in 0..pending_count {
        let minute = r.u64()?;
        let frames = r.u64()? as usize;
        let accs = r.accs()?;
        collector.pending.insert(minute, (frames, accs));
    }
    let stage_count = r.count(20)?;
    collector.backfill_stage = BTreeMap::new();
    for _ in 0..stage_count {
        let agent = r.u32()?;
        let minute = r.u64()?;
        let records = r.count(14)?;
        let mut vec = Vec::with_capacity(records);
        for _ in 0..records {
            let key = r.key()?;
            let value = r.f64()?;
            vec.push(WireRecord { key, value });
        }
        collector.backfill_stage.insert((agent, minute), vec);
    }
    let partial_count = r.count(16)?;
    collector.partial = BTreeMap::new();
    for _ in 0..partial_count {
        let minute = r.u64()?;
        let accs = r.accs()?;
        collector.partial.insert(minute, accs);
    }

    let pending_items = r.count(34)?;
    let mut queue = QueueState {
        pending: Vec::with_capacity(pending_items),
        applied: Vec::new(),
    };
    for _ in 0..pending_items {
        let change = ChangeId(r.u32()?);
        let key = r.key()?;
        let from = r.u64()?;
        let to = r.u64()?;
        let required_coverage = r.f64()?;
        queue.pending.push(PendingItem {
            change,
            key,
            window: (from, to),
            required_coverage,
        });
    }
    let applied_count = r.count(10)?;
    queue.applied = Vec::with_capacity(applied_count);
    for _ in 0..applied_count {
        let change = ChangeId(r.u32()?);
        let key = r.key()?;
        queue.applied.push((change, key));
    }

    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after checkpoint payload"));
    }
    Ok(Checkpoint {
        wal_frames,
        entries,
        collector,
        queue,
    })
}

// ------------------------------------------------------------------ store --

/// Numbered checkpoint files on disk, newest-wins with torn-file
/// fallback. Keeps the two newest files: a crash mid-write can tear only
/// the newest, leaving its predecessor as a valid (older) recovery point.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    next_seq: u64,
}

fn checkpoint_name(seq: u64) -> String {
    format!("ckpt-{seq:08}.bin")
}

fn checkpoint_seqs(dir: &Path) -> Result<Vec<u64>, ResilienceError> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(".bin"))
        {
            if let Ok(seq) = num.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

impl CheckpointStore {
    /// Opens (creating if needed) the checkpoint directory, continuing
    /// the numbering after any existing files.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Io`] on filesystem failure.
    pub fn open(dir: &Path) -> Result<Self, ResilienceError> {
        fs::create_dir_all(dir)?;
        let next_seq = checkpoint_seqs(dir)?.last().map_or(0, |&s| s + 1);
        Ok(Self {
            dir: dir.to_path_buf(),
            next_seq,
        })
    }

    /// Writes `checkpoint` as the newest file and prunes to the two
    /// newest, returning the written path.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Io`] on filesystem failure.
    pub fn write(&mut self, checkpoint: &Checkpoint) -> Result<PathBuf, ResilienceError> {
        let path = self.dir.join(checkpoint_name(self.next_seq));
        fs::write(&path, encode_checkpoint(checkpoint))?;
        self.next_seq += 1;
        let seqs = checkpoint_seqs(&self.dir)?;
        for &old in seqs.iter().rev().skip(2) {
            fs::remove_file(self.dir.join(checkpoint_name(old)))?;
        }
        Ok(path)
    }

    /// Chaos-harness hook: writes only the first `keep` bytes of the
    /// encoded checkpoint — the on-disk image of a crash mid-write. Does
    /// not prune, so the previous valid checkpoint survives as fallback.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Io`] on filesystem failure.
    pub fn write_torn(
        &mut self,
        checkpoint: &Checkpoint,
        keep: usize,
    ) -> Result<(), ResilienceError> {
        let encoded = encode_checkpoint(checkpoint);
        let keep = keep.min(encoded.len());
        let path = self.dir.join(checkpoint_name(self.next_seq));
        fs::write(&path, &encoded[..keep])?;
        self.next_seq += 1;
        Ok(())
    }

    /// Loads the newest checkpoint that validates, skipping torn or
    /// corrupt files (newest first). `None` when no valid checkpoint
    /// exists — including when the directory itself is missing.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Io`] on filesystem failure.
    pub fn latest_valid(dir: &Path) -> Result<Option<Checkpoint>, ResilienceError> {
        if !dir.exists() {
            return Ok(None);
        }
        for &seq in checkpoint_seqs(dir)?.iter().rev() {
            let bytes = fs::read(dir.join(checkpoint_name(seq)))?;
            if let Ok(checkpoint) = decode_checkpoint(&bytes) {
                return Ok(Some(checkpoint));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnel_topology::impact::Entity;
    use funnel_topology::model::InstanceId;

    fn sample_checkpoint() -> Checkpoint {
        let key = KpiKey::new(Entity::Instance(InstanceId(7)), KpiKind::PageViewCount);
        let mut collector = CollectorState::new(2);
        collector.watermarks = vec![Some(41), None];
        collector.seen[0].extend([40, 41]);
        let mut accs = MinuteAccs::new();
        accs.insert((ServiceId(1), KpiKind::PageViewCount), vec![(7, 123.0)]);
        collector.pending.insert(41, (1, accs.clone()));
        collector.partial.insert(12, accs);
        collector
            .backfill_stage
            .insert((1, 30), vec![WireRecord { key, value: 9.5 }]);
        let queue = QueueState {
            pending: vec![PendingItem {
                change: ChangeId(3),
                key,
                window: (100, 200),
                required_coverage: 0.8,
            }],
            applied: vec![(ChangeId(2), key)],
        };
        Checkpoint {
            wal_frames: 42,
            entries: vec![(
                key,
                TimeSeries::new(40, vec![1.0, 2.0, 3.0]),
                CoverageMask::from_bits(40, vec![true, false, true]),
            )],
            collector,
            queue,
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let checkpoint = sample_checkpoint();
        let decoded = decode_checkpoint(&encode_checkpoint(&checkpoint)).unwrap();
        assert_eq!(checkpoint, decoded);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let checkpoint = Checkpoint::default();
        let decoded = decode_checkpoint(&encode_checkpoint(&checkpoint)).unwrap();
        assert_eq!(checkpoint, decoded);
    }

    #[test]
    fn any_flipped_header_bit_is_rejected() {
        let encoded = encode_checkpoint(&sample_checkpoint());
        for byte in 0..16 {
            let mut bad = encoded.clone();
            bad[byte] ^= 0x01;
            assert!(
                decode_checkpoint(&bad).is_err(),
                "flipped header byte {byte} accepted"
            );
        }
    }

    #[test]
    fn torn_write_falls_back_to_previous_checkpoint() {
        let dir = std::env::temp_dir().join(format!("funnel-ckpt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::open(&dir).unwrap();
        let good = sample_checkpoint();
        store.write(&good).unwrap();
        let mut newer = good.clone();
        newer.wal_frames = 99;
        store.write_torn(&newer, 40).unwrap();
        let recovered = CheckpointStore::latest_valid(&dir).unwrap().unwrap();
        assert_eq!(recovered, good, "torn newest must fall back");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruning_keeps_two_newest() {
        let dir = std::env::temp_dir().join(format!("funnel-ckpt-prune-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::open(&dir).unwrap();
        for wal_frames in 0..5 {
            let c = Checkpoint {
                wal_frames,
                ..Checkpoint::default()
            };
            store.write(&c).unwrap();
        }
        assert_eq!(checkpoint_seqs(&dir).unwrap().len(), 2);
        let latest = CheckpointStore::latest_valid(&dir).unwrap().unwrap();
        assert_eq!(latest.wal_frames, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_has_no_checkpoint() {
        assert!(
            CheckpointStore::latest_valid(Path::new("/nonexistent/funnel-ckpt"))
                .unwrap()
                .is_none()
        );
    }
}
