//! The durable ingest write-ahead log.
//!
//! Accepted frames are appended to numbered segment files
//! (`wal-00000000.seg`, `wal-00000001.seg`, …) as self-validating records:
//!
//! ```text
//! record  := u8 kind, u32 len, u64 fnv1a(payload), payload
//! kind    := 0 (frame: one encoded wire frame) | 1 (end-of-stream, len 0)
//! ```
//!
//! All integers little-endian. The format is **fsync-free**: records are
//! plain appends, and recovery never trusts position alone — a record
//! counts only if its declared length fits the file *and* its payload
//! hashes to the stored FNV-1a value. A crash mid-append therefore leaves
//! a *torn tail* that scanning detects and discards cleanly; the agent
//! replay protocol re-sends the lost frame on resume. Segments roll over
//! at a byte threshold, and every sealed segment's size is recorded into
//! the `wal.segment_bytes` histogram.
//!
//! [`encode_record`] / [`decode_records`] are pure functions over byte
//! slices — the property tests drive them with arbitrary frame sequences
//! and arbitrary truncation points.

use crate::{fnv1a, ResilienceError};
use bytes::Bytes;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Record kind tag: the payload is one encoded wire frame.
pub const FRAME_RECORD: u8 = 0;
/// Record kind tag: the ingest stream ended cleanly (empty payload).
pub const EOS_RECORD: u8 = 1;

/// Bytes before the payload: kind (1) + len (4) + hash (8).
pub const RECORD_HEADER: usize = 13;

/// Encodes one WAL record: header + payload, self-validating.
pub fn encode_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// [`FRAME_RECORD`] or [`EOS_RECORD`].
    pub kind: u8,
    /// The record payload (an encoded wire frame for frame records).
    pub payload: Vec<u8>,
}

/// The result of decoding one segment's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedSegment {
    /// Every record that validated, in append order.
    pub records: Vec<WalRecord>,
    /// Whether trailing bytes failed validation (torn append).
    pub torn: bool,
    /// Length of the valid prefix — the truncation point that heals a
    /// torn segment.
    pub valid_len: usize,
}

/// Decodes a segment's bytes into its valid record prefix. Never panics:
/// a truncated header, an impossible length, an unknown kind tag, or a
/// hash mismatch all simply end the valid prefix and mark the segment
/// torn.
pub fn decode_records(buf: &[u8]) -> DecodedSegment {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let Some(rest) = buf.get(pos..) else { break };
        if rest.len() < RECORD_HEADER {
            break;
        }
        let kind = rest.first().copied().unwrap_or(0);
        if kind != FRAME_RECORD && kind != EOS_RECORD {
            break;
        }
        let le = |b: &[u8]| {
            b.iter()
                .rev()
                .fold(0u64, |acc, &x| (acc << 8) | u64::from(x))
        };
        let len = rest.get(1..5).map_or(0, &le) as usize;
        let stored_hash = rest.get(5..RECORD_HEADER).map_or(0, &le);
        let Some(payload) = rest.get(RECORD_HEADER..RECORD_HEADER + len) else {
            break;
        };
        if fnv1a(payload) != stored_hash {
            break;
        }
        records.push(WalRecord {
            kind,
            payload: payload.to_vec(),
        });
        pos += RECORD_HEADER + len;
    }
    DecodedSegment {
        records,
        torn: pos < buf.len(),
        valid_len: pos,
    }
}

fn segment_name(seq: u64) -> String {
    format!("wal-{seq:08}.seg")
}

/// The sorted sequence numbers of the segments present in `dir`.
fn segment_seqs(dir: &Path) -> Result<Vec<u64>, ResilienceError> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
        {
            if let Ok(seq) = num.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// Appends records to the WAL, rolling segments at a byte threshold.
///
/// Opening is **self-healing**: if the newest segment ends in a torn
/// record (the signature of a crash mid-append), the torn tail is
/// truncated away before any new append, so resumed ingestion continues
/// from the last valid record.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    segment_limit: u64,
    seq: u64,
    written: u64,
    /// Data minute of the most recent frame appended, peeked from the wire
    /// header — attributes segment-seal events to a timeline window. At
    /// more than one agent shard the frame→segment assignment depends on
    /// channel interleaving, so `wal.*` timeline windows are only
    /// run-to-run stable at shards=1 (aggregate totals are always stable).
    last_minute: u64,
}

impl WalWriter {
    /// Opens (creating the directory if needed) the WAL at `dir`,
    /// continuing the newest existing segment after healing any torn
    /// tail. `segment_limit` is the byte threshold past which a segment
    /// is sealed and the next one started.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Io`] on filesystem failure.
    pub fn open(dir: &Path, segment_limit: u64) -> Result<Self, ResilienceError> {
        fs::create_dir_all(dir)?;
        let seqs = segment_seqs(dir)?;
        let (seq, written) = match seqs.last() {
            Some(&seq) => {
                let path = dir.join(segment_name(seq));
                let bytes = fs::read(&path)?;
                let decoded = decode_records(&bytes);
                if decoded.torn {
                    // Crash artifact: truncate to the valid prefix.
                    let file = fs::OpenOptions::new().write(true).open(&path)?;
                    file.set_len(decoded.valid_len as u64)?;
                }
                (seq, decoded.valid_len as u64)
            }
            None => (0, 0),
        };
        Ok(Self {
            dir: dir.to_path_buf(),
            segment_limit: segment_limit.max(1),
            seq,
            written,
            last_minute: 0,
        })
    }

    fn current_path(&self) -> PathBuf {
        self.dir.join(segment_name(self.seq))
    }

    fn append_bytes(&mut self, bytes: &[u8]) -> Result<(), ResilienceError> {
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.current_path())?;
        file.write_all(bytes)?;
        self.written += bytes.len() as u64;
        if self.written >= self.segment_limit {
            funnel_obs::timeline_histogram_record(
                funnel_obs::names::WAL_SEGMENT_BYTES,
                self.last_minute,
                self.written,
            );
            self.seq += 1;
            self.written = 0;
        }
        Ok(())
    }

    /// Appends one accepted frame's raw bytes as a frame record.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Io`] on filesystem failure.
    pub fn append_frame(&mut self, raw: &Bytes) -> Result<(), ResilienceError> {
        if let Some(minute) = funnel_sim::wire::peek_minute(raw) {
            self.last_minute = minute;
        }
        self.append_bytes(&encode_record(FRAME_RECORD, raw.as_ref()))
    }

    /// Appends the end-of-stream marker: recovery runs `finish()` (final
    /// minute flush + backfill) only when this record is present.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Io`] on filesystem failure.
    pub fn append_end_of_stream(&mut self) -> Result<(), ResilienceError> {
        self.append_bytes(&encode_record(EOS_RECORD, &[]))
    }

    /// Chaos-harness hook: appends only the first `keep` bytes of the
    /// frame's record — the on-disk image of a crash mid-append. Never
    /// rotates; the torn tail is expected to be healed by the next
    /// [`WalWriter::open`].
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Io`] on filesystem failure.
    pub fn append_torn_frame(&mut self, raw: &Bytes, keep: usize) -> Result<(), ResilienceError> {
        let record = encode_record(FRAME_RECORD, raw.as_ref());
        let keep = keep.min(record.len());
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.current_path())?;
        file.write_all(&record[..keep])?;
        Ok(())
    }

    /// Frames-per-segment bookkeeping for tests: the current segment
    /// sequence number.
    pub fn segment_seq(&self) -> u64 {
        self.seq
    }
}

/// Everything a recovery scan learned from the WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Every validated frame payload, in append order across segments.
    pub frames: Vec<Vec<u8>>,
    /// Whether the end-of-stream marker is present (it is always last).
    pub end_of_stream: bool,
    /// Whether the newest segment ended in a torn record (crash artifact,
    /// discarded).
    pub torn_tail: bool,
    /// How many segment files were scanned.
    pub segments: u64,
}

/// Scans the whole WAL at `dir`, validating every record.
///
/// A torn tail is tolerated only on the *newest* segment — that is the
/// crash signature. A torn record in any sealed (non-final) segment, or
/// any record after the end-of-stream marker, means the log was damaged
/// beyond what a crash can produce and is reported as corruption.
///
/// # Errors
///
/// [`ResilienceError::Io`] on filesystem failure,
/// [`ResilienceError::Corrupt`] on mid-log damage. A missing directory is
/// an empty WAL, not an error.
pub fn scan(dir: &Path) -> Result<WalScan, ResilienceError> {
    if !dir.exists() {
        return Ok(WalScan {
            frames: Vec::new(),
            end_of_stream: false,
            torn_tail: false,
            segments: 0,
        });
    }
    let seqs = segment_seqs(dir)?;
    let mut frames = Vec::new();
    let mut end_of_stream = false;
    let mut torn_tail = false;
    for (i, &seq) in seqs.iter().enumerate() {
        let bytes = fs::read(dir.join(segment_name(seq)))?;
        funnel_obs::histogram_record(funnel_obs::names::WAL_SEGMENT_BYTES, bytes.len() as u64);
        let decoded = decode_records(&bytes);
        let is_last = i + 1 == seqs.len();
        if decoded.torn {
            if !is_last {
                return Err(ResilienceError::Corrupt(format!(
                    "torn record inside sealed WAL segment {seq}"
                )));
            }
            torn_tail = true;
        }
        for record in decoded.records {
            if end_of_stream {
                return Err(ResilienceError::Corrupt(
                    "WAL record after end-of-stream marker".into(),
                ));
            }
            match record.kind {
                EOS_RECORD => end_of_stream = true,
                _ => frames.push(record.payload),
            }
        }
    }
    Ok(WalScan {
        frames,
        end_of_stream,
        torn_tail,
        segments: seqs.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("funnel-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_scan_roundtrip_across_segments() {
        let dir = tmp_dir("roundtrip");
        // Tiny limit: every frame seals a segment.
        let mut wal = WalWriter::open(&dir, 32).unwrap();
        let frames: Vec<Bytes> = (0u8..5).map(|i| Bytes::from(vec![i; 20])).collect();
        for f in &frames {
            wal.append_frame(f).unwrap();
        }
        wal.append_end_of_stream().unwrap();
        let scan = scan(&dir).unwrap();
        assert!(scan.end_of_stream);
        assert!(!scan.torn_tail);
        assert!(scan.segments > 1, "tiny limit must rotate");
        let got: Vec<Vec<u8>> = frames.iter().map(|b| b.to_vec()).collect();
        assert_eq!(scan.frames, got);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_detected_and_healed_on_reopen() {
        let dir = tmp_dir("torn");
        let mut wal = WalWriter::open(&dir, 1 << 20).unwrap();
        wal.append_frame(&Bytes::from(vec![1u8; 40])).unwrap();
        wal.append_torn_frame(&Bytes::from(vec![2u8; 40]), 17)
            .unwrap();
        let scan1 = scan(&dir).unwrap();
        assert!(scan1.torn_tail);
        assert_eq!(scan1.frames.len(), 1);
        // Reopen heals; the next append lands cleanly after the survivor.
        let mut wal = WalWriter::open(&dir, 1 << 20).unwrap();
        wal.append_frame(&Bytes::from(vec![3u8; 40])).unwrap();
        let scan2 = scan(&dir).unwrap();
        assert!(!scan2.torn_tail);
        assert_eq!(scan2.frames.len(), 2);
        assert_eq!(scan2.frames[1], vec![3u8; 40]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_an_empty_wal() {
        let scan = scan(Path::new("/nonexistent/funnel-wal")).unwrap();
        assert!(scan.frames.is_empty());
        assert_eq!(scan.segments, 0);
    }

    #[test]
    fn flipped_byte_ends_the_valid_prefix() {
        let mut buf = encode_record(FRAME_RECORD, &[1, 2, 3, 4]);
        let good = decode_records(&buf);
        assert_eq!(good.records.len(), 1);
        assert!(!good.torn);
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let bad = decode_records(&buf);
        assert!(bad.records.is_empty());
        assert!(bad.torn);
        assert_eq!(bad.valid_len, 0);
    }
}
