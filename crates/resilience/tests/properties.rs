//! Property tests for the durable formats.
//!
//! Both on-disk formats are trust boundaries crossed on every recovery:
//! whatever a crash (or bit rot) left behind, decoding must be *total* —
//! return the valid data or a clean error, never panic, never fabricate
//! records, never allocate from a corrupted count. And for clean bytes
//! the round trip must be lossless: recovery's correctness proof leans on
//! `decode(encode(x)) == x` for the WAL and the checkpoint alike.
//!
//! The vendored proptest shim drives scalars and `Vec`s of scalars, so
//! structured inputs (checkpoint entries, collector state, queue items)
//! are derived deterministically from flat fuzz vectors.

use funnel_core::reassess::{PendingItem, QueueState};
use funnel_resilience::checkpoint::{decode_checkpoint, encode_checkpoint, Checkpoint};
use funnel_resilience::wal::{decode_records, encode_record, EOS_RECORD, FRAME_RECORD};
use funnel_sim::collector::{CollectorState, MinuteAccs};
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::wire::WireRecord;
use funnel_timeseries::mask::CoverageMask;
use funnel_timeseries::series::TimeSeries;
use funnel_topology::change::ChangeId;
use funnel_topology::impact::Entity;
use funnel_topology::model::{InstanceId, ServerId, ServiceId};
use proptest::prelude::*;
use std::collections::BTreeSet;

const KINDS: [KpiKind; 8] = [
    KpiKind::CpuUtilization,
    KpiKind::MemoryUtilization,
    KpiKind::NicThroughput,
    KpiKind::CpuContextSwitch,
    KpiKind::PageViewCount,
    KpiKind::PageViewResponseDelay,
    KpiKind::AccessFailureCount,
    KpiKind::EffectiveClickCount,
];

fn key(entity_sel: u8, id: u32, kind_sel: usize) -> KpiKey {
    let entity = match entity_sel % 3 {
        0 => Entity::Server(ServerId(id)),
        1 => Entity::Instance(InstanceId(id)),
        _ => Entity::Service(ServiceId(id)),
    };
    KpiKey::new(entity, KINDS[kind_sel % KINDS.len()])
}

/// Builds a structurally valid checkpoint from flat fuzz vectors.
fn checkpoint_from(
    wal_frames: u64,
    entry_sels: &[u8],
    watermarks: &[u64],
    seen: &[u64],
    pend: &[u64],
    queue_items: &[u32],
) -> Checkpoint {
    let entries = entry_sels
        .iter()
        .enumerate()
        .map(|(i, &sel)| {
            let len = usize::from(sel % 16);
            let values: Vec<f64> = (0..len).map(|j| (i * 31 + j) as f64 * 0.5 - 3.0).collect();
            let bits: Vec<bool> = (0..len).map(|j| (i + j) % 3 != 0).collect();
            (
                key(sel, u32::from(sel) * 37 + i as u32, i),
                TimeSeries::new(i as u64 * 7, values),
                CoverageMask::from_bits(i as u64 * 7, bits),
            )
        })
        .collect();
    let mut collector = CollectorState::new(watermarks.len());
    collector.watermarks = watermarks
        .iter()
        .map(|&w| (w % 3 != 0).then_some(w))
        .collect();
    collector.seen = watermarks
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            seen.iter()
                .map(|&m| m.wrapping_add(w).wrapping_mul(i as u64 + 1) % 10_000)
                .collect::<BTreeSet<u64>>()
        })
        .collect();
    for (i, &raw) in pend.iter().enumerate() {
        let minute = raw % 10_000;
        let id = (raw / 7) as u32 % 64;
        let value = raw as f64 * 0.37 - 100.0;
        let mut accs = MinuteAccs::new();
        accs.insert(
            (ServiceId(id % 5), KINDS[i % KINDS.len()]),
            vec![(id, value), (id.wrapping_add(1), -value)],
        );
        if i % 2 == 0 {
            collector.pending.insert(minute, (i, accs));
        } else {
            collector.partial.insert(minute, accs);
        }
        collector.backfill_stage.insert(
            (id % 7, minute),
            vec![WireRecord {
                key: key(id as u8, id, i),
                value,
            }],
        );
    }
    let queue = QueueState {
        pending: queue_items
            .iter()
            .map(|&item| PendingItem {
                change: ChangeId(item % 32),
                key: key(item as u8, item, item as usize),
                window: (u64::from(item) * 3, u64::from(item) * 3 + 60),
                required_coverage: 0.8,
            })
            .collect(),
        applied: queue_items
            .iter()
            .map(|&item| {
                (
                    ChangeId(item % 32),
                    key(
                        item.wrapping_add(1) as u8,
                        item.wrapping_add(9),
                        item as usize,
                    ),
                )
            })
            .collect(),
    };
    Checkpoint {
        wal_frames,
        entries,
        collector,
        queue,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wal_roundtrip_is_lossless(
        payload_lens in prop::collection::vec(0usize..80, 0..20),
        with_eos in any::<bool>(),
    ) {
        let mut log = Vec::new();
        let payloads: Vec<Vec<u8>> = payload_lens
            .iter()
            .enumerate()
            .map(|(i, &len)| (0..len).map(|j| ((i * 17 + j * 3) % 251) as u8).collect())
            .collect();
        for p in &payloads {
            log.extend_from_slice(&encode_record(FRAME_RECORD, p));
        }
        if with_eos {
            log.extend_from_slice(&encode_record(EOS_RECORD, &[]));
        }
        let decoded = decode_records(&log);
        prop_assert!(!decoded.torn);
        prop_assert_eq!(decoded.valid_len, log.len());
        let frames: Vec<&Vec<u8>> = decoded
            .records
            .iter()
            .filter(|r| r.kind == FRAME_RECORD)
            .map(|r| &r.payload)
            .collect();
        prop_assert_eq!(frames.len(), payloads.len());
        for (got, want) in frames.iter().zip(&payloads) {
            prop_assert_eq!(*got, want);
        }
        prop_assert_eq!(
            decoded.records.iter().any(|r| r.kind == EOS_RECORD),
            with_eos
        );
    }

    #[test]
    fn truncated_wal_tail_is_detected_never_panics(
        payload_lens in prop::collection::vec(0usize..60, 1..12),
        cut_frac in 0.0..1.0f64,
    ) {
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for (i, &len) in payload_lens.iter().enumerate() {
            let payload: Vec<u8> = (0..len).map(|j| ((i + j) % 256) as u8).collect();
            log.extend_from_slice(&encode_record(FRAME_RECORD, &payload));
            boundaries.push(log.len());
        }
        let cut = ((cut_frac * log.len() as f64) as usize).min(log.len());
        let truncated = &log[..cut];
        let decoded = decode_records(truncated);
        // The valid prefix always ends on a record boundary at or before
        // the cut, and the tail past it is flagged torn.
        prop_assert!(boundaries.contains(&decoded.valid_len));
        prop_assert!(decoded.valid_len <= cut);
        prop_assert_eq!(decoded.torn, decoded.valid_len < cut);
        // Every surviving record is one of the originals, in order.
        let whole = decode_records(&log);
        prop_assert_eq!(&whole.records[..decoded.records.len()], &decoded.records[..]);
    }

    #[test]
    fn arbitrary_wal_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let decoded = decode_records(&bytes);
        prop_assert!(decoded.valid_len <= bytes.len());
    }

    #[test]
    fn checkpoint_roundtrip_is_lossless(
        wal_frames in 0u64..1_000_000,
        entry_sels in prop::collection::vec(any::<u8>(), 0..8),
        watermarks in prop::collection::vec(0u64..10_000, 0..6),
        seen in prop::collection::vec(0u64..10_000, 0..10),
        pend in prop::collection::vec(any::<u64>(), 0..6),
        queue_items in prop::collection::vec(any::<u32>(), 0..6),
    ) {
        let checkpoint =
            checkpoint_from(wal_frames, &entry_sels, &watermarks, &seen, &pend, &queue_items);
        let encoded = encode_checkpoint(&checkpoint);
        let decoded = decode_checkpoint(&encoded);
        prop_assert!(decoded.is_ok());
        prop_assert_eq!(decoded.unwrap(), checkpoint);
    }

    #[test]
    fn truncated_checkpoint_is_rejected_never_panics(
        entry_sels in prop::collection::vec(any::<u8>(), 1..6),
        pend in prop::collection::vec(any::<u64>(), 0..4),
        cut_frac in 0.0..1.0f64,
    ) {
        let checkpoint = checkpoint_from(7, &entry_sels, &[3, 4], &[1, 2], &pend, &[]);
        let encoded = encode_checkpoint(&checkpoint);
        let cut = ((cut_frac * encoded.len() as f64) as usize).min(encoded.len() - 1);
        // Strictly shorter than the original: must be cleanly rejected
        // (the payload hash no longer covers what the header promised).
        prop_assert!(decode_checkpoint(&encoded[..cut]).is_err());
    }

    #[test]
    fn mutated_checkpoint_never_panics(
        entry_sels in prop::collection::vec(any::<u8>(), 0..5),
        flip_frac in 0.0..1.0f64,
        mask in 1u8..255,
    ) {
        let checkpoint = checkpoint_from(3, &entry_sels, &[1], &[4], &[], &[]);
        let mut bytes = encode_checkpoint(&checkpoint);
        let idx = ((flip_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[idx] ^= mask;
        // Totality is the property; the hash makes rejection overwhelmingly
        // likely, but either way decoding must return, not panic.
        let _ = decode_checkpoint(&bytes);
    }

    #[test]
    fn arbitrary_checkpoint_bytes_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        let _ = decode_checkpoint(&bytes);
    }
}
