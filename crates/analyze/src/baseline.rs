//! The grandfathering baseline: `lint-baseline.toml`.
//!
//! Pre-existing findings are recorded as `key = count` pairs so CI can
//! fail on *new* violations only. The ratchet goes one way: when code
//! improves, `--deny-new` also fails on a now-stale (too large) baseline,
//! forcing the shrunk file to be committed — the count may only go down.
//!
//! The file is a tiny TOML subset (comments, `key = int`, one `[counts]`
//! table) read and written by hand because every dependency in this
//! workspace is a vendored shim; pulling in a TOML crate is not an option.

use crate::lints::Diagnostic;
use std::collections::BTreeMap;

/// Parsed baseline: finding-key → grandfathered count, plus the
/// call-graph resolution ratchet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Counts per [`Diagnostic::baseline_key`].
    pub counts: BTreeMap<String, u32>,
    /// Recorded ceiling for the call graph's unresolved-call ratio in
    /// basis points ([`crate::graph::GraphStats::unresolved_ratio_bp`]).
    /// `--deny-new` fails when the current ratio exceeds it — resolver
    /// regressions (new call shapes the resolver cannot place) must be
    /// either fixed or consciously re-baselined.
    pub max_unresolved_bp: Option<u32>,
}

/// One reason the gate failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateViolation {
    /// More findings than the baseline allows for this key.
    New {
        /// The baseline key.
        key: String,
        /// Grandfathered count.
        baselined: u32,
        /// Current count.
        current: u32,
    },
    /// Fewer findings than baselined: the code improved, so the baseline
    /// must be shrunk (run `--write-baseline`) to keep the ratchet honest.
    Stale {
        /// The baseline key.
        key: String,
        /// Grandfathered count.
        baselined: u32,
        /// Current count.
        current: u32,
    },
}

impl Baseline {
    /// Builds a baseline that grandfathers exactly `findings`.
    pub fn from_findings(findings: &[Diagnostic]) -> Self {
        let mut counts = BTreeMap::new();
        for d in findings {
            *counts.entry(d.baseline_key()).or_insert(0) += 1;
        }
        Self {
            counts,
            max_unresolved_bp: None,
        }
    }

    /// Total grandfathered findings.
    pub fn total(&self) -> u32 {
        self.counts.values().sum()
    }

    /// Parses the baseline file format. Unknown lines are errors — a
    /// malformed baseline must fail loudly, not silently admit findings.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut counts = BTreeMap::new();
        let mut in_counts = false;
        let mut declared_total: Option<u32> = None;
        let mut max_unresolved_bp: Option<u32> = None;
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[counts]" {
                in_counts = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {}: unknown table {line}", no + 1));
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", no + 1));
            };
            let key = k.trim().trim_matches('"').to_string();
            let value = v.trim();
            if !in_counts {
                match key.as_str() {
                    "version" => {
                        if value != "1" {
                            return Err(format!("unsupported baseline version {value}"));
                        }
                    }
                    "total" => {
                        declared_total = Some(
                            value
                                .parse()
                                .map_err(|_| format!("line {}: bad total", no + 1))?,
                        )
                    }
                    "max_unresolved_bp" => {
                        max_unresolved_bp = Some(
                            value
                                .parse()
                                .map_err(|_| format!("line {}: bad max_unresolved_bp", no + 1))?,
                        )
                    }
                    other => return Err(format!("line {}: unknown field {other}", no + 1)),
                }
                continue;
            }
            let n: u32 = value
                .parse()
                .map_err(|_| format!("line {}: bad count for {key}", no + 1))?;
            if counts.insert(key.clone(), n).is_some() {
                return Err(format!("line {}: duplicate key {key}", no + 1));
            }
        }
        let parsed = Self {
            counts,
            max_unresolved_bp,
        };
        if let Some(t) = declared_total {
            if t != parsed.total() {
                return Err(format!(
                    "declared total {t} does not match sum of counts {}",
                    parsed.total()
                ));
            }
        }
        Ok(parsed)
    }

    /// Renders the canonical file form (sorted, so diffs are minimal).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# funnel-lint baseline — grandfathered findings, one `lint:file:fn` key per\n\
             # site. The total may only go DOWN: `--deny-new` fails on new findings AND\n\
             # on a stale (too large) baseline. Regenerate with:\n\
             #   cargo run -p funnel-analyze -- --write-baseline\n",
        );
        out.push_str("version = 1\n");
        out.push_str(&format!("total = {}\n", self.total()));
        if let Some(bp) = self.max_unresolved_bp {
            out.push_str(&format!("max_unresolved_bp = {bp}\n"));
        }
        out.push_str("\n[counts]\n");
        for (k, n) in &self.counts {
            out.push_str(&format!("\"{k}\" = {n}\n"));
        }
        out
    }

    /// A copy keeping only entries whose lint id satisfies `pred`. The
    /// gate uses this to ignore baseline entries for lints not active in
    /// the current run (e.g. warn-severity lints under plain
    /// `--deny-new`), so a richer baseline never reads as stale.
    pub fn restricted_to(&self, pred: impl Fn(&str) -> bool) -> Self {
        Self {
            counts: self
                .counts
                .iter()
                .filter(|(k, _)| pred(k.split(':').next().unwrap_or(k)))
                .map(|(k, n)| (k.clone(), *n))
                .collect(),
            max_unresolved_bp: self.max_unresolved_bp,
        }
    }

    /// Gates `findings` against this baseline. Empty result = pass.
    pub fn check(&self, findings: &[Diagnostic]) -> Vec<GateViolation> {
        let current = Baseline::from_findings(findings);
        let mut violations = Vec::new();
        let keys: std::collections::BTreeSet<&String> =
            self.counts.keys().chain(current.counts.keys()).collect();
        for key in keys {
            let base = self.counts.get(key).copied().unwrap_or(0);
            let cur = current.counts.get(key).copied().unwrap_or(0);
            if cur > base {
                violations.push(GateViolation::New {
                    key: key.clone(),
                    baselined: base,
                    current: cur,
                });
            } else if cur < base {
                violations.push(GateViolation::Stale {
                    key: key.clone(),
                    baselined: base,
                    current: cur,
                });
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Severity;

    fn diag(lint: &'static str, file: &str, context: &str) -> Diagnostic {
        Diagnostic {
            lint,
            severity: Severity::Deny,
            file: file.into(),
            line: 1,
            context: context.into(),
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip() {
        let findings = vec![
            diag("panic-in-hot-path", "a.rs", "f"),
            diag("panic-in-hot-path", "a.rs", "f"),
            diag("unordered-iteration", "b.rs", "g"),
        ];
        let b = Baseline::from_findings(&findings);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(b, parsed);
        assert_eq!(parsed.total(), 3);
    }

    #[test]
    fn new_finding_fails_gate() {
        let b = Baseline::from_findings(&[diag("panic-in-hot-path", "a.rs", "f")]);
        let now = vec![
            diag("panic-in-hot-path", "a.rs", "f"),
            diag("panic-in-hot-path", "a.rs", "g"),
        ];
        let v = b.check(&now);
        assert_eq!(v.len(), 1);
        assert!(matches!(&v[0], GateViolation::New { key, current: 1, .. }
            if key == "panic-in-hot-path:a.rs:g"));
    }

    #[test]
    fn stale_baseline_fails_gate() {
        let b = Baseline::from_findings(&[
            diag("panic-in-hot-path", "a.rs", "f"),
            diag("panic-in-hot-path", "a.rs", "f"),
        ]);
        let v = b.check(&[diag("panic-in-hot-path", "a.rs", "f")]);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            &v[0],
            GateViolation::Stale {
                baselined: 2,
                current: 1,
                ..
            }
        ));
    }

    #[test]
    fn matching_counts_pass() {
        let findings = vec![diag("float-accumulation-order", "x.rs", "h")];
        let b = Baseline::from_findings(&findings);
        assert!(b.check(&findings).is_empty());
    }

    #[test]
    fn max_unresolved_bp_roundtrips() {
        let mut b = Baseline::from_findings(&[diag("x", "a.rs", "f")]);
        b.max_unresolved_bp = Some(321);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed.max_unresolved_bp, Some(321));
        assert_eq!(parsed, b);
        // Absent field stays absent (older baselines parse unchanged).
        b.max_unresolved_bp = None;
        assert_eq!(
            Baseline::parse(&b.render()).unwrap().max_unresolved_bp,
            None
        );
    }

    #[test]
    fn bad_total_rejected() {
        let mut text = Baseline::from_findings(&[diag("x", "a.rs", "f")]).render();
        text = text.replace("total = 1", "total = 7");
        assert!(Baseline::parse(&text).is_err());
    }
}
