//! `funnel-lint`: workspace-native static analysis for FUNNEL.
//!
//! PR 1 made verdicts bit-for-bit replayable under injected faults; this
//! crate makes the invariants behind that claim mechanical instead of
//! tribal. Six lints cover the ways the pipeline could silently drift or
//! die — wall-clock reads, hasher-ordered iteration, panics on the
//! ingestion path, missing `#![forbid(unsafe_code)]`, order-sensitive f64
//! folds, and unwrapped filesystem I/O on the crash-recovery paths — with
//! a checked-in baseline that grandfathers pre-existing
//! findings and may only shrink. Everything is hand-rolled over a small
//! Rust lexer: no `syn`, no rustc plugin, no registry access required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod lints;
pub mod scan;
pub mod taint;

use lints::{Diagnostic, Severity};
use scan::FileScan;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A workspace to analyze: a root directory plus content overlays.
///
/// Overlays replace (or add) a file's contents without touching disk —
/// integration tests use them to prove that an injected violation trips
/// the gate against the *real* checked-in workspace and baseline.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Filesystem root (the directory holding the top-level `Cargo.toml`).
    pub root: PathBuf,
    /// Relative path (forward slashes) → replacement contents.
    pub overlays: BTreeMap<String, String>,
}

impl Workspace {
    /// A workspace rooted at `root` with no overlays.
    pub fn at(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            overlays: BTreeMap::new(),
        }
    }

    /// Adds or replaces a file's contents for this analysis only.
    pub fn overlay(mut self, rel_path: &str, contents: &str) -> Self {
        self.overlays.insert(rel_path.into(), contents.into());
        self
    }

    /// Collects every analyzable `.rs` file: `(relative path, contents)`
    /// in sorted order. Skips vendored shims, build output, and whole-file
    /// test/bench/example-fixture trees (in-source `#[cfg(test)]` modules
    /// are handled by the scanner instead).
    pub fn collect_files(&self) -> std::io::Result<Vec<(String, String)>> {
        let mut files: BTreeMap<String, String> = BTreeMap::new();
        for top in ["src", "crates", "examples"] {
            let dir = self.root.join(top);
            if dir.is_dir() {
                walk(&self.root, &dir, &mut files)?;
            }
        }
        for (rel, contents) in &self.overlays {
            files.insert(rel.clone(), contents.clone());
        }
        Ok(files.into_iter().collect())
    }
}

/// Directories never descended into: build output, vendored shims, and
/// whole-file test/bench/fixture trees (in-source `#[cfg(test)]` modules
/// are scoped by the scanner, not skipped).
const SKIP_DIRS: [&str; 5] = ["target", "tests", "benches", "fixtures", "shims"];

/// Whether a workspace-relative path is in scope for analysis at all.
fn analyzable(rel: &str) -> bool {
    rel.ends_with(".rs") && !rel.split('/').any(|seg| SKIP_DIRS.contains(&seg))
}

fn walk(root: &Path, dir: &Path, files: &mut BTreeMap<String, String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            let name = entry.file_name().to_string_lossy().to_string();
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk(root, &path, files)?;
            }
        } else if analyzable(&rel) {
            files.insert(rel, std::fs::read_to_string(&path)?);
        }
    }
    Ok(())
}

/// Effective severity configuration from CLI `--allow` / `--deny` flags.
#[derive(Debug, Clone, Default)]
pub struct SeverityOverrides {
    /// Lints silenced entirely.
    pub allow: Vec<String>,
    /// Lints promoted to [`Severity::Deny`].
    pub deny: Vec<String>,
}

impl SeverityOverrides {
    fn apply(&self, d: &mut Diagnostic) -> bool {
        if self.allow.iter().any(|l| l == d.lint) {
            return false;
        }
        if self.deny.iter().any(|l| l == d.lint) {
            d.severity = Severity::Deny;
        }
        true
    }
}

/// Applies the `--deny-new` gate: current deny-severity findings are
/// compared against the baseline entries of gate-active lints (deny by
/// default, or promoted via [`SeverityOverrides::deny`]; allowed lints
/// never gate). Baseline entries for non-gated lints are ignored rather
/// than read as stale, so one committed baseline serves both default and
/// strict runs. Empty result = gate passes.
pub fn gate(
    findings: &[Diagnostic],
    baseline: &baseline::Baseline,
    overrides: &SeverityOverrides,
) -> Vec<baseline::GateViolation> {
    let gated: Vec<Diagnostic> = findings
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .cloned()
        .collect();
    let gate_active = |lint: &str| {
        lints::lint_info(lint).is_some_and(|info| {
            !overrides.allow.iter().any(|l| l == lint)
                && (info.default_severity == Severity::Deny
                    || overrides.deny.iter().any(|l| l == lint))
        })
    };
    baseline.restricted_to(gate_active).check(&gated)
}

/// A full workspace analysis: findings plus the call graph they were
/// computed over (kept for `--dump-graph` and the stats/ratchet plumbing).
#[derive(Debug)]
pub struct Analysis {
    /// All findings, sorted by `(file, line, lint)`.
    pub diagnostics: Vec<Diagnostic>,
    /// The workspace call graph.
    pub graph: graph::CallGraph,
}

/// Runs every lint over every file of `ws`.
pub fn analyze(ws: &Workspace, overrides: &SeverityOverrides) -> std::io::Result<Analysis> {
    Ok(analyze_sources(&ws.collect_files()?, overrides))
}

/// Runs the full analysis — per-file lints, the workspace call graph, and
/// the interprocedural passes — over an explicit `(path, contents)` set.
/// Files are sorted (and deduped, last wins) internally, so the result is
/// byte-identical for any input ordering; the determinism tests feed this
/// shuffled inputs to prove it.
pub fn analyze_sources(files: &[(String, String)], overrides: &SeverityOverrides) -> Analysis {
    let sorted: BTreeMap<&str, &str> = files
        .iter()
        .map(|(p, c)| (p.as_str(), c.as_str()))
        .collect();
    let scans: Vec<(String, FileScan)> = sorted
        .iter()
        .map(|(p, c)| (p.to_string(), FileScan::of(c)))
        .collect();
    let mut out = Vec::new();
    for (rel, scan) in &scans {
        out.extend(lints::run_lints(rel, scan));
    }
    out.extend(lints::lint_obs_names(&scans));
    let graph = graph::build(&scans);
    out.extend(taint::run_graph_lints(&graph, &scans));
    out.retain_mut(|d| overrides.apply(d));
    out.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Analysis {
        diagnostics: out,
        graph,
    }
}

/// Runs every lint over one file given as `(relative path, contents)` —
/// the path decides which lints are in scope, so golden tests can analyze
/// fixture snippets *as if* they lived anywhere in the workspace.
pub fn analyze_file(
    rel_path: &str,
    contents: &str,
    overrides: &SeverityOverrides,
) -> Vec<Diagnostic> {
    let scan = FileScan::of(contents);
    let mut diags = lints::run_lints(rel_path, &scan);
    diags.retain_mut(|d| overrides.apply(d));
    diags
}

/// Renders findings as a JSON array (stable field order, sorted input).
/// Hand-rolled for the same no-external-deps reason as everything else.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"lint\":{},\"severity\":{},\"file\":{},\"line\":{},\"context\":{},\"message\":{}}}{}\n",
            json_str(d.lint),
            json_str(d.severity.as_str()),
            json_str(&d.file),
            d.line,
            json_str(&d.context),
            json_str(&d.message),
            if i + 1 == diags.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders findings as human-readable `file:line` diagnostics.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}: [{}] {}:{} (in {}) — {}\n",
            d.severity.as_str(),
            d.lint,
            d.file,
            d.line,
            d.context,
            d.message
        ));
    }
    out
}

/// Per-lint, per-crate violation counts plus call-graph resolution
/// figures (`--stats`). Deterministic order.
pub fn render_stats(diags: &[Diagnostic], gstats: &graph::GraphStats) -> String {
    let mut per: BTreeMap<(&'static str, String), u32> = BTreeMap::new();
    for d in diags {
        *per.entry((d.lint, crate_of(&d.file))).or_insert(0) += 1;
    }
    let mut out = String::from("# funnel-lint --stats: violations per lint per crate\n");
    let mut total = 0u32;
    for info in &lints::REGISTRY {
        let rows: Vec<_> = per.iter().filter(|((l, _), _)| *l == info.id).collect();
        let lint_total: u32 = rows.iter().map(|(_, n)| **n).sum();
        total += lint_total;
        out.push_str(&format!("{:<26} {:>5}\n", info.id, lint_total));
        for ((_, krate), n) in rows {
            out.push_str(&format!("    {krate:<22} {n:>5}\n"));
        }
    }
    out.push_str(&format!("{:<26} {:>5}\n", "total", total));
    out.push_str("# call graph\n");
    out.push_str(&format!("{:<26} {:>5}\n", "graph.nodes", gstats.nodes));
    out.push_str(&format!("{:<26} {:>5}\n", "graph.calls", gstats.calls));
    out.push_str(&format!(
        "{:<26} {:>5}\n",
        "graph.resolved", gstats.resolved
    ));
    out.push_str(&format!(
        "{:<26} {:>5}\n",
        "graph.unresolved", gstats.unresolved
    ));
    out.push_str(&format!(
        "{:<26} {:>5}\n",
        "graph.external", gstats.external
    ));
    out.push_str(&format!(
        "{:<26} {:>5}\n",
        "graph.unresolved_bp",
        gstats.unresolved_ratio_bp()
    ));
    out
}

fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("?").to_string(),
        Some(top) => format!("<{top}>"),
        None => "?".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_filter_skips_tests_and_shims() {
        assert!(analyzable("crates/core/src/online.rs"));
        assert!(analyzable("src/lib.rs"));
        assert!(!analyzable("crates/core/tests/properties.rs"));
        assert!(!analyzable("crates/shims/rand/src/lib.rs"));
        assert!(!analyzable("crates/analyze/tests/fixtures/l1.rs"));
        assert!(!analyzable("crates/bench/benches/sweep.rs"));
        assert!(!analyzable("crates/core/src/data.txt"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn overlay_replaces_contents() {
        let ws = Workspace::at(env!("CARGO_MANIFEST_DIR"))
            .overlay("src/zzz_test_overlay.rs", "fn f() {}\n");
        let files = ws.collect_files().unwrap();
        assert!(files
            .iter()
            .any(|(p, c)| p == "src/zzz_test_overlay.rs" && c == "fn f() {}\n"));
    }
}
