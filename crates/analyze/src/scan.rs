//! Item/block scanning on top of the token stream.
//!
//! Lints need just enough structure to be precise: which lines belong to
//! `#[cfg(test)]` items or `#[test]` functions (panics there are fine),
//! which function encloses a finding (baseline keys are stable across line
//! drift because they use the function name, not the line), whether the
//! crate root carries `#![forbid(unsafe_code)]`, and which lines carry an
//! inline `funnel-lint: allow(...)` suppression. The call-graph builder
//! ([`crate::graph`]) additionally needs token-index spans per `fn`, the
//! `impl`/`trait` block each method belongs to, and the token ranges
//! covered by attributes (so `#[cfg(feature = "x")]` never reads as a call
//! to `cfg`).

use crate::lexer::{lex, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One `fn` item: name, line span, token-index span, and owning
/// `impl`/`trait` block if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// The `impl` type or `trait` name this fn is defined under, if any —
    /// `Collector` for `impl<'a> Collector<'a> { fn commit … }`,
    /// `IngestHooks` for a trait's default method body.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub start_line: u32,
    /// 1-based line of the closing brace.
    pub end_line: u32,
    /// Index of the `fn` keyword in [`FileScan::code`].
    pub fn_tok: usize,
    /// Index of the body's opening `{` in [`FileScan::code`].
    pub body_open: usize,
    /// Index of the body's closing `}` (or `code.len()` when unbalanced).
    pub body_close: usize,
}

/// One inline `funnel-lint: allow(...)` comment, with whatever explanatory
/// note follows the closing paren — the raw material of the
/// suppression-hygiene lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressionSite {
    /// 1-based line of the comment.
    pub line: u32,
    /// The lint ids listed inside `allow(...)`.
    pub lints: Vec<String>,
    /// Whether a non-empty note follows the `allow(...)` — either
    /// `allow(x): why it is safe` or `allow(x) note: why`.
    pub has_note: bool,
}

/// Everything the lint passes need to know about one file.
#[derive(Debug)]
pub struct FileScan {
    /// Code tokens only — comments stripped, strings/chars opaque.
    pub code: Vec<Token>,
    /// All `fn` items, in source order (nested fns included).
    pub fns: Vec<FnSpan>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items or
    /// `#[test]`-attributed functions.
    pub test_regions: Vec<(u32, u32)>,
    /// Lines on which findings of the named lints are suppressed.
    pub suppressions: BTreeMap<u32, BTreeSet<String>>,
    /// Every `funnel-lint: allow` comment with its note status, in source
    /// order.
    pub suppression_sites: Vec<SuppressionSite>,
    /// Whether the file carries an inner `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
    /// Inclusive token-index ranges covered by `#[…]` / `#![…]` attributes
    /// (from the `#` to the closing `]`).
    pub attr_ranges: Vec<(usize, usize)>,
}

impl FileScan {
    /// Lexes and scans `source`.
    pub fn of(source: &str) -> Self {
        build(lex(source))
    }

    /// Whether `line` falls inside test-only code.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Whether a `funnel-lint: allow(lint)` comment covers `line`.
    pub fn suppressed(&self, line: u32, lint: &str) -> bool {
        self.suppressions
            .get(&line)
            .is_some_and(|set| set.contains(lint))
    }

    /// The innermost function containing `line`, if any.
    pub fn enclosing_fn(&self, line: u32) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| (f.start_line..=f.end_line).contains(&line))
            .min_by_key(|f| f.end_line - f.start_line)
    }

    /// Whether token index `idx` falls inside an attribute (`#[…]`).
    pub fn in_attr(&self, idx: usize) -> bool {
        self.attr_ranges
            .iter()
            .any(|&(a, b)| (a..=b).contains(&idx))
    }
}

fn build(all: Vec<Token>) -> FileScan {
    let mut suppressions: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    let mut suppression_sites = Vec::new();
    for t in &all {
        if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            let Some(site) = parse_suppression(t.line, &t.text) else {
                continue;
            };
            for lint in &site.lints {
                // A suppression covers its own line and the next one, so it
                // works both inline and as a standalone comment above.
                suppressions.entry(t.line).or_default().insert(lint.clone());
                suppressions
                    .entry(t.line + 1)
                    .or_default()
                    .insert(lint.clone());
            }
            suppression_sites.push(site);
        }
    }

    let code: Vec<Token> = all
        .into_iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();

    let has_forbid_unsafe = find_inner_forbid(&code);
    let attr_ranges = scan_attr_ranges(&code);
    let fns = scan_fns(&code);
    let test_regions = scan_test_regions(&code);

    FileScan {
        code,
        fns,
        test_regions,
        suppressions,
        suppression_sites,
        has_forbid_unsafe,
        attr_ranges,
    }
}

/// `funnel-lint: allow(a, b)` anywhere inside a comment, plus whether a
/// note follows the closing paren.
fn parse_suppression(line: u32, comment: &str) -> Option<SuppressionSite> {
    let idx = comment.find("funnel-lint:")?;
    let rest = &comment[idx + "funnel-lint:".len()..];
    let rest = rest.trim_start();
    let args = rest.strip_prefix("allow(")?;
    let close = args.find(')')?;
    let lints: Vec<String> = args[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    // `allow(x): why` or `allow(x) note: why` — anything non-empty after
    // the paren (modulo leading punctuation) counts as the note.
    let tail = args[close + 1..]
        .trim_start()
        .trim_start_matches([':', '-', '—'])
        .trim();
    let has_note = !tail.is_empty();
    Some(SuppressionSite {
        line,
        lints,
        has_note,
    })
}

/// Inclusive token ranges of `#[…]` / `#![…]` attributes.
fn scan_attr_ranges(code: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_punct('#') {
            let open = if code.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                i + 1
            } else if code.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && code.get(i + 2).is_some_and(|t| t.is_punct('['))
            {
                i + 2
            } else {
                i += 1;
                continue;
            };
            let close = matching_bracket(code, open);
            ranges.push((i, close.min(code.len().saturating_sub(1))));
            i = close + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

/// Looks for `#![forbid(unsafe_code)]` among the file's inner attributes.
fn find_inner_forbid(code: &[Token]) -> bool {
    let mut i = 0;
    while i + 2 < code.len() {
        if code[i].is_punct('#') && code[i + 1].is_punct('!') && code[i + 2].is_punct('[') {
            let end = matching_bracket(code, i + 2);
            let body = &code[i + 3..end.min(code.len())];
            if body.iter().any(|t| t.is_ident("forbid"))
                && body.iter().any(|t| t.is_ident("unsafe_code"))
            {
                return true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    false
}

/// Index of the `]` matching the `[` at `open` (or `code.len()` if
/// unbalanced — the scanner stays total on malformed input).
fn matching_bracket(code: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len()
}

/// Index of the `}` matching the `{` at `open` (or `code.len()`).
fn matching_brace(code: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len()
}

/// One `impl Type { … }`, `impl Trait for Type { … }`, or
/// `trait Name { … }` block: the owner name lints and the call graph
/// attribute contained fns to.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OwnerBlock {
    name: String,
    open: usize,
    close: usize,
}

/// Finds every `impl`/`trait` block and the self-type (or trait) name it
/// owns. For `impl Trait for Type` the owner is `Type`; generics and
/// lifetimes are skipped; a malformed header is simply not an owner block.
fn scan_owner_blocks(code: &[Token]) -> Vec<OwnerBlock> {
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let kw_impl = code[i].is_ident("impl");
        let kw_trait = code[i].is_ident("trait");
        if !kw_impl && !kw_trait {
            i += 1;
            continue;
        }
        // Collect the last path-segment ident seen before the body `{`,
        // restarting after `for` so `impl Trait for Type` yields `Type`.
        // Generic argument lists are skipped wholesale (their type names
        // are parameters, not the self type).
        let mut j = i + 1;
        let mut name: Option<String> = None;
        let mut open = None;
        let mut angle = 0usize;
        while j < code.len() {
            let t = &code[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = angle.saturating_sub(1);
            } else if angle == 0 {
                if t.is_punct('{') {
                    open = Some(j);
                    break;
                }
                if t.is_punct(';') {
                    break;
                }
                if t.is_ident("for") {
                    name = None;
                } else if t.kind == TokenKind::Ident
                    && !matches!(
                        t.text.as_str(),
                        "dyn" | "where" | "pub" | "unsafe" | "Send" | "Sync"
                    )
                    && !t.text.is_empty()
                {
                    // `where` clauses end name collection: bounds name
                    // other types.
                    name = Some(t.text.clone());
                }
                if t.is_ident("where") {
                    // Freeze whatever we have; skip to the `{`.
                    while j < code.len() && !code[j].is_punct('{') && !code[j].is_punct(';') {
                        j += 1;
                    }
                    if code.get(j).is_some_and(|t| t.is_punct('{')) {
                        open = Some(j);
                    }
                    break;
                }
            }
            j += 1;
        }
        let (Some(name), Some(open)) = (name, open) else {
            i += 1;
            continue;
        };
        let close = matching_brace(code, open);
        blocks.push(OwnerBlock { name, open, close });
        // Continue scanning *inside* the block too (nested impls are rare
        // but legal); the innermost block wins at lookup time.
        i = open + 1;
    }
    blocks
}

/// All `fn name … { … }` items. `fn` pointer types (`fn(u32) -> u32`) are
/// skipped because no identifier follows the keyword; trait method
/// declarations are skipped because `;` arrives before `{`.
fn scan_fns(code: &[Token]) -> Vec<FnSpan> {
    let owners = scan_owner_blocks(code);
    let mut fns = Vec::new();
    for i in 0..code.len() {
        if !code[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = code.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // Find the body's opening brace, bailing at `;` (a bodyless trait
        // method). Braces cannot appear in a signature before the body.
        let mut j = i + 2;
        let mut open = None;
        while j < code.len() {
            if code[j].is_punct('{') {
                open = Some(j);
                break;
            }
            if code[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = matching_brace(code, open);
        let owner = owners
            .iter()
            .filter(|b| (b.open..=b.close).contains(&i))
            .min_by_key(|b| b.close - b.open)
            .map(|b| b.name.clone());
        fns.push(FnSpan {
            name: name_tok.text.clone(),
            owner,
            start_line: code[i].line,
            end_line: code.get(close).map_or(code[i].line, |t| t.line),
            fn_tok: i,
            body_open: open,
            body_close: close,
        });
    }
    fns
}

/// Line ranges of items marked `#[cfg(test)]` / `#[cfg(all(test, …))]` /
/// `#[test]`. The attribute marks the next braced item; a `;` first means
/// the attribute decorated a bodyless item (e.g. a `use`), which has no
/// region to record.
fn scan_test_regions(code: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        let is_outer_attr = code[i].is_punct('#') && code[i + 1].is_punct('[');
        if !is_outer_attr {
            i += 1;
            continue;
        }
        let attr_line = code[i].line;
        let end = matching_bracket(code, i + 1);
        let body = &code[i + 2..end.min(code.len())];
        let is_test_attr = match body.first() {
            Some(t) if t.is_ident("test") => true,
            Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
            _ => false,
        };
        i = end + 1;
        if !is_test_attr {
            continue;
        }
        // Attach to the next braced item.
        let mut j = i;
        while j < code.len() {
            if code[j].is_punct('{') {
                let close = matching_brace(code, j);
                let end_line = code.get(close).map_or(code[j].line, |t| t.line);
                regions.push((attr_line, end_line));
                i = close + 1;
                break;
            }
            if code[j].is_punct(';') {
                break;
            }
            j += 1;
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_fns_and_spans() {
        let s = FileScan::of("fn a() {\n  1\n}\n\nfn b(x: u8) -> u8 {\n  x\n}\n");
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].name, "a");
        assert_eq!((s.fns[0].start_line, s.fns[0].end_line), (1, 3));
        assert_eq!(s.fns[1].name, "b");
        assert_eq!(s.enclosing_fn(6).map(|f| f.name.as_str()), Some("b"));
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { panic!() }\n}\n";
        let s = FileScan::of(src);
        assert!(!s.in_test(1));
        assert!(s.in_test(3));
        assert!(s.in_test(5));
    }

    #[test]
    fn test_attr_fn_only_covers_that_fn() {
        let src = "#[test]\nfn t() {\n  x\n}\nfn prod() {}\n";
        let s = FileScan::of(src);
        assert!(s.in_test(2));
        assert!(s.in_test(3));
        assert!(!s.in_test(5));
    }

    #[test]
    fn forbid_unsafe_detected() {
        assert!(FileScan::of("#![forbid(unsafe_code)]\nfn x() {}").has_forbid_unsafe);
        assert!(
            FileScan::of("//! docs\n#![warn(missing_docs)]\n#![forbid(unsafe_code)]")
                .has_forbid_unsafe
        );
        assert!(!FileScan::of("#![warn(missing_docs)]\nfn x() {}").has_forbid_unsafe);
        // An *outer* attribute on an item must not count.
        assert!(!FileScan::of("#[forbid(unsafe_code)]\nfn x() {}").has_forbid_unsafe);
    }

    #[test]
    fn suppression_comment_covers_its_line_and_the_next() {
        let src = "// funnel-lint: allow(panic-in-hot-path, unordered-iteration)\nlet x = m.unwrap();\nlet y = 2;\n";
        let s = FileScan::of(src);
        assert!(s.suppressed(1, "panic-in-hot-path"));
        assert!(s.suppressed(2, "panic-in-hot-path"));
        assert!(s.suppressed(2, "unordered-iteration"));
        assert!(!s.suppressed(3, "panic-in-hot-path"));
        assert!(!s.suppressed(2, "nondeterministic-time"));
    }

    #[test]
    fn attr_before_use_does_not_eat_following_block() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() {\n  body\n}\n";
        let s = FileScan::of(src);
        assert!(!s.in_test(4), "regions: {:?}", s.test_regions);
    }

    #[test]
    fn impl_and_trait_owners_attach_to_methods() {
        let src = "\
impl<'a> Collector<'a> {\n  fn commit(&mut self) {}\n}\n\
impl IngestHooks for DurableHooks {\n  fn on_accepted_frame(&mut self) {}\n}\n\
trait IngestHooks {\n  fn hook(&self) { default() }\n}\n\
fn free() {}\n";
        let s = FileScan::of(src);
        let owner_of = |name: &str| {
            s.fns
                .iter()
                .find(|f| f.name == name)
                .and_then(|f| f.owner.clone())
        };
        assert_eq!(owner_of("commit").as_deref(), Some("Collector"));
        assert_eq!(
            owner_of("on_accepted_frame").as_deref(),
            Some("DurableHooks")
        );
        assert_eq!(owner_of("hook").as_deref(), Some("IngestHooks"));
        assert_eq!(owner_of("free"), None);
    }

    #[test]
    fn fn_token_spans_cover_the_body() {
        let s = FileScan::of("fn a() { inner(1) }\n");
        let f = &s.fns[0];
        assert!(s.code[f.fn_tok].is_ident("fn"));
        assert!(s.code[f.body_open].is_punct('{'));
        assert!(s.code[f.body_close].is_punct('}'));
    }

    #[test]
    fn suppression_notes_are_detected() {
        let src = "\
// funnel-lint: allow(panic-in-hot-path): bound checked above\n\
// funnel-lint: allow(unordered-iteration)\n\
// funnel-lint: allow(fs-io-unwrap) note: scratch dir always exists\n";
        let s = FileScan::of(src);
        assert_eq!(s.suppression_sites.len(), 3);
        assert!(s.suppression_sites[0].has_note);
        assert!(!s.suppression_sites[1].has_note);
        assert!(s.suppression_sites[2].has_note);
        assert_eq!(s.suppression_sites[1].line, 2);
    }

    #[test]
    fn attr_ranges_cover_attribute_tokens() {
        let s = FileScan::of("#[cfg(feature = \"x\")]\nfn a() { real(1) }\n");
        let cfg_idx = s
            .code
            .iter()
            .position(|t| t.is_ident("cfg"))
            .expect("cfg token");
        let real_idx = s
            .code
            .iter()
            .position(|t| t.is_ident("real"))
            .expect("real token");
        assert!(s.in_attr(cfg_idx));
        assert!(!s.in_attr(real_idx));
    }
}
