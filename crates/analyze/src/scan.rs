//! Item/block scanning on top of the token stream.
//!
//! Lints need just enough structure to be precise: which lines belong to
//! `#[cfg(test)]` items or `#[test]` functions (panics there are fine),
//! which function encloses a finding (baseline keys are stable across line
//! drift because they use the function name, not the line), whether the
//! crate root carries `#![forbid(unsafe_code)]`, and which lines carry an
//! inline `funnel-lint: allow(...)` suppression.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One `fn` item: name and the line span of signature + body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: u32,
    /// 1-based line of the closing brace.
    pub end_line: u32,
}

/// Everything the lint passes need to know about one file.
#[derive(Debug)]
pub struct FileScan {
    /// Code tokens only — comments stripped, strings/chars opaque.
    pub code: Vec<Token>,
    /// All `fn` items, in source order (nested fns included).
    pub fns: Vec<FnSpan>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items or
    /// `#[test]`-attributed functions.
    pub test_regions: Vec<(u32, u32)>,
    /// Lines on which findings of the named lints are suppressed.
    pub suppressions: BTreeMap<u32, BTreeSet<String>>,
    /// Whether the file carries an inner `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
}

impl FileScan {
    /// Lexes and scans `source`.
    pub fn of(source: &str) -> Self {
        build(lex(source))
    }

    /// Whether `line` falls inside test-only code.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Whether a `funnel-lint: allow(lint)` comment covers `line`.
    pub fn suppressed(&self, line: u32, lint: &str) -> bool {
        self.suppressions
            .get(&line)
            .is_some_and(|set| set.contains(lint))
    }

    /// The innermost function containing `line`, if any.
    pub fn enclosing_fn(&self, line: u32) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| (f.start_line..=f.end_line).contains(&line))
            .min_by_key(|f| f.end_line - f.start_line)
    }
}

fn build(all: Vec<Token>) -> FileScan {
    let mut suppressions: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for t in &all {
        if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            for lint in parse_suppression(&t.text) {
                // A suppression covers its own line and the next one, so it
                // works both inline and as a standalone comment above.
                suppressions.entry(t.line).or_default().insert(lint.clone());
                suppressions.entry(t.line + 1).or_default().insert(lint);
            }
        }
    }

    let code: Vec<Token> = all
        .into_iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();

    let has_forbid_unsafe = find_inner_forbid(&code);
    let fns = scan_fns(&code);
    let test_regions = scan_test_regions(&code);

    FileScan {
        code,
        fns,
        test_regions,
        suppressions,
        has_forbid_unsafe,
    }
}

/// `funnel-lint: allow(a, b)` anywhere inside a comment.
fn parse_suppression(comment: &str) -> Vec<String> {
    let Some(idx) = comment.find("funnel-lint:") else {
        return Vec::new();
    };
    let rest = &comment[idx + "funnel-lint:".len()..];
    let rest = rest.trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Vec::new();
    };
    let Some(close) = args.find(')') else {
        return Vec::new();
    };
    args[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Looks for `#![forbid(unsafe_code)]` among the file's inner attributes.
fn find_inner_forbid(code: &[Token]) -> bool {
    let mut i = 0;
    while i + 2 < code.len() {
        if code[i].is_punct('#') && code[i + 1].is_punct('!') && code[i + 2].is_punct('[') {
            let end = matching_bracket(code, i + 2);
            let body = &code[i + 3..end.min(code.len())];
            if body.iter().any(|t| t.is_ident("forbid"))
                && body.iter().any(|t| t.is_ident("unsafe_code"))
            {
                return true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    false
}

/// Index of the `]` matching the `[` at `open` (or `code.len()` if
/// unbalanced — the scanner stays total on malformed input).
fn matching_bracket(code: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len()
}

/// Index of the `}` matching the `{` at `open` (or `code.len()`).
fn matching_brace(code: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len()
}

/// All `fn name … { … }` items. `fn` pointer types (`fn(u32) -> u32`) are
/// skipped because no identifier follows the keyword; trait method
/// declarations are skipped because `;` arrives before `{`.
fn scan_fns(code: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for i in 0..code.len() {
        if !code[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = code.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // Find the body's opening brace, bailing at `;` (a bodyless trait
        // method). Braces cannot appear in a signature before the body.
        let mut j = i + 2;
        let mut open = None;
        while j < code.len() {
            if code[j].is_punct('{') {
                open = Some(j);
                break;
            }
            if code[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = matching_brace(code, open);
        fns.push(FnSpan {
            name: name_tok.text.clone(),
            start_line: code[i].line,
            end_line: code.get(close).map_or(code[i].line, |t| t.line),
        });
    }
    fns
}

/// Line ranges of items marked `#[cfg(test)]` / `#[cfg(all(test, …))]` /
/// `#[test]`. The attribute marks the next braced item; a `;` first means
/// the attribute decorated a bodyless item (e.g. a `use`), which has no
/// region to record.
fn scan_test_regions(code: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        let is_outer_attr = code[i].is_punct('#') && code[i + 1].is_punct('[');
        if !is_outer_attr {
            i += 1;
            continue;
        }
        let attr_line = code[i].line;
        let end = matching_bracket(code, i + 1);
        let body = &code[i + 2..end.min(code.len())];
        let is_test_attr = match body.first() {
            Some(t) if t.is_ident("test") => true,
            Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
            _ => false,
        };
        i = end + 1;
        if !is_test_attr {
            continue;
        }
        // Attach to the next braced item.
        let mut j = i;
        while j < code.len() {
            if code[j].is_punct('{') {
                let close = matching_brace(code, j);
                let end_line = code.get(close).map_or(code[j].line, |t| t.line);
                regions.push((attr_line, end_line));
                i = close + 1;
                break;
            }
            if code[j].is_punct(';') {
                break;
            }
            j += 1;
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_fns_and_spans() {
        let s = FileScan::of("fn a() {\n  1\n}\n\nfn b(x: u8) -> u8 {\n  x\n}\n");
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].name, "a");
        assert_eq!((s.fns[0].start_line, s.fns[0].end_line), (1, 3));
        assert_eq!(s.fns[1].name, "b");
        assert_eq!(s.enclosing_fn(6).map(|f| f.name.as_str()), Some("b"));
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { panic!() }\n}\n";
        let s = FileScan::of(src);
        assert!(!s.in_test(1));
        assert!(s.in_test(3));
        assert!(s.in_test(5));
    }

    #[test]
    fn test_attr_fn_only_covers_that_fn() {
        let src = "#[test]\nfn t() {\n  x\n}\nfn prod() {}\n";
        let s = FileScan::of(src);
        assert!(s.in_test(2));
        assert!(s.in_test(3));
        assert!(!s.in_test(5));
    }

    #[test]
    fn forbid_unsafe_detected() {
        assert!(FileScan::of("#![forbid(unsafe_code)]\nfn x() {}").has_forbid_unsafe);
        assert!(
            FileScan::of("//! docs\n#![warn(missing_docs)]\n#![forbid(unsafe_code)]")
                .has_forbid_unsafe
        );
        assert!(!FileScan::of("#![warn(missing_docs)]\nfn x() {}").has_forbid_unsafe);
        // An *outer* attribute on an item must not count.
        assert!(!FileScan::of("#[forbid(unsafe_code)]\nfn x() {}").has_forbid_unsafe);
    }

    #[test]
    fn suppression_comment_covers_its_line_and_the_next() {
        let src = "// funnel-lint: allow(panic-in-hot-path, unordered-iteration)\nlet x = m.unwrap();\nlet y = 2;\n";
        let s = FileScan::of(src);
        assert!(s.suppressed(1, "panic-in-hot-path"));
        assert!(s.suppressed(2, "panic-in-hot-path"));
        assert!(s.suppressed(2, "unordered-iteration"));
        assert!(!s.suppressed(3, "panic-in-hot-path"));
        assert!(!s.suppressed(2, "nondeterministic-time"));
    }

    #[test]
    fn attr_before_use_does_not_eat_following_block() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() {\n  body\n}\n";
        let s = FileScan::of(src);
        assert!(!s.in_test(4), "regions: {:?}", s.test_regions);
    }
}
