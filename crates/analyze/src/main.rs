//! The `funnel-lint` CLI.
//!
//! ```text
//! cargo run -p funnel-analyze -- [--root DIR] [--format human|json]
//!     [--deny-new] [--write-baseline] [--stats] [--dump-graph]
//!     [--allow LINT]... [--deny LINT]...
//! ```
//!
//! Exit codes: 0 = clean (or informational run), 1 = usage or I/O error,
//! 2 = `--deny-new` gate failure (new deny-severity findings, or a stale
//! baseline that must be shrunk).

#![forbid(unsafe_code)]

use funnel_analyze::baseline::{Baseline, GateViolation};
use funnel_analyze::lints::{Severity, REGISTRY};
use funnel_analyze::{
    analyze, render_human, render_json, render_stats, SeverityOverrides, Workspace,
};
use std::path::PathBuf;
use std::process::ExitCode;

const BASELINE_FILE: &str = "lint-baseline.toml";

struct Args {
    root: PathBuf,
    json: bool,
    deny_new: bool,
    write_baseline: bool,
    stats: bool,
    dump_graph: bool,
    overrides: SeverityOverrides,
}

fn usage() -> String {
    let mut s = String::from(
        "funnel-lint — FUNNEL's determinism/no-panic static analysis\n\n\
         USAGE: funnel-lint [--root DIR] [--format human|json] [--deny-new]\n\
                [--write-baseline] [--stats] [--dump-graph]\n\
                [--allow LINT]... [--deny LINT]...\n\n\
         LINTS:\n",
    );
    for l in &REGISTRY {
        s.push_str(&format!(
            "  {:<26} [{}] {}\n",
            l.id,
            l.default_severity.as_str(),
            l.description
        ));
    }
    s
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        deny_new: false,
        write_baseline: false,
        stats: false,
        dump_graph: false,
        overrides: SeverityOverrides::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--format" => match it.next().as_deref() {
                Some("human") => args.json = false,
                Some("json") => args.json = true,
                other => return Err(format!("--format human|json, got {other:?}")),
            },
            "--deny-new" => args.deny_new = true,
            "--write-baseline" => args.write_baseline = true,
            "--stats" => args.stats = true,
            "--dump-graph" => args.dump_graph = true,
            "--allow" => {
                args.overrides
                    .allow
                    .push(known_lint(it.next().ok_or("--allow needs a lint id")?)?);
            }
            "--deny" => {
                args.overrides
                    .deny
                    .push(known_lint(it.next().ok_or("--deny needs a lint id")?)?);
            }
            "--help" | "-h" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}\n\n{}", usage())),
        }
    }
    Ok(args)
}

fn known_lint(id: String) -> Result<String, String> {
    if REGISTRY.iter().any(|l| l.id == id) {
        Ok(id)
    } else {
        Err(format!("unknown lint {id} (see --help for the registry)"))
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };

    let ws = Workspace::at(&args.root);
    let analysis = match analyze(&ws, &args.overrides) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "error: failed to read workspace at {}: {e}",
                args.root.display()
            );
            return ExitCode::from(1);
        }
    };
    let findings = &analysis.diagnostics;

    if args.dump_graph {
        print!("{}", analysis.graph.dump());
        return ExitCode::SUCCESS;
    }

    let baseline_path = args.root.join(BASELINE_FILE);
    if args.write_baseline {
        let mut baseline = Baseline::from_findings(findings);
        baseline.max_unresolved_bp = Some(analysis.graph.stats.unresolved_ratio_bp());
        if let Err(e) = std::fs::write(&baseline_path, baseline.render()) {
            eprintln!("error: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(1);
        }
        println!(
            "wrote {} ({} grandfathered finding(s), max_unresolved_bp {})",
            baseline_path.display(),
            baseline.total(),
            analysis.graph.stats.unresolved_ratio_bp()
        );
        return ExitCode::SUCCESS;
    }

    if args.stats {
        print!("{}", render_stats(findings, &analysis.graph.stats));
        return ExitCode::SUCCESS;
    }

    if args.json {
        println!("{}", render_json(findings));
    } else if !findings.is_empty() {
        print!("{}", render_human(findings));
    }

    if !args.deny_new {
        if !args.json {
            println!(
                "{} finding(s) (informational; gate with --deny-new)",
                findings.len()
            );
        }
        return ExitCode::SUCCESS;
    }

    // Gate mode: only deny-severity findings participate (warn-severity
    // lints still appear in reports, the baseline, and --stats, but
    // cannot fail CI unless promoted with --deny). Baseline entries for
    // lints outside the gated set are ignored, not treated as stale, so
    // the same committed baseline serves both strict and default runs.
    let deny_count = findings
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: malformed {}: {e}", baseline_path.display());
                return ExitCode::from(1);
            }
        },
        Err(_) => {
            eprintln!(
                "note: no {} found — gating against an empty baseline",
                baseline_path.display()
            );
            Baseline::default()
        }
    };
    let violations = funnel_analyze::gate(findings, &baseline, &args.overrides);
    let current_bp = analysis.graph.stats.unresolved_ratio_bp();
    let ratio_regressed = baseline
        .max_unresolved_bp
        .is_some_and(|ceiling| current_bp > ceiling);
    if violations.is_empty() && !ratio_regressed {
        println!(
            "funnel-lint: gate clean — {} deny finding(s), all grandfathered ({} baselined), \
             unresolved-call ratio {current_bp}‱ within ceiling",
            deny_count,
            baseline.total()
        );
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        match v {
            GateViolation::New {
                key,
                baselined,
                current,
            } => eprintln!(
                "DENY new finding(s): {key} — baseline allows {baselined}, found {current}"
            ),
            GateViolation::Stale {
                key,
                baselined,
                current,
            } => eprintln!(
                "STALE baseline: {key} — baseline says {baselined}, found {current}; the \
                 ratchet only goes down: run --write-baseline and commit the shrunk file"
            ),
        }
    }
    if ratio_regressed {
        eprintln!(
            "RESOLVER regression: unresolved-call ratio {current_bp}\u{2031} exceeds the recorded \
             ceiling {}\u{2031}; fix the new unresolvable call shapes or consciously re-baseline \
             with --write-baseline",
            baseline.max_unresolved_bp.unwrap_or(0)
        );
    }
    eprintln!(
        "funnel-lint: gate FAILED with {} violation(s)",
        violations.len() + usize::from(ratio_regressed)
    );
    ExitCode::from(2)
}
