//! A hand-rolled Rust lexer, sufficient for lint-grade analysis.
//!
//! The workspace vendors every dependency as an offline shim, so pulling in
//! `syn` or a rustc plugin is off the table — instead this lexer produces a
//! flat token stream with line numbers and lets the lint passes do shallow
//! pattern matching over it. The hard part of lexing Rust at this level is
//! not the grammar but the literals: nested block comments, raw strings
//! with arbitrary hash fences, byte strings, and the `'a` lifetime vs `'a'`
//! char ambiguity. All of those are handled here so that a lint never
//! mistakes the *contents* of a string or comment for code.

/// What a token is, at the granularity lints care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, ...).
    Ident,
    /// A lifetime such as `'a` (the tick is included in the text).
    Lifetime,
    /// String literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Character or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Numeric literal (integer or float, any base, with suffixes).
    Num,
    /// A single punctuation character (`.`, `:`, `[`, `!`, ...).
    Punct,
    /// `// …` comment, doc or plain. Text excludes the newline.
    LineComment,
    /// `/* … */` comment, nesting already balanced.
    BlockComment,
}

/// One lexed token: kind, verbatim text, and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification of the token.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Lexes `source` into tokens. Unknown bytes become single-char `Punct`
/// tokens, so lexing never fails: a lint pass must stay total even on code
/// that rustc would reject.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, String::new()),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line, "b".into());
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_lit(line, "b".into());
                }
                'r' if matches!(self.peek(1), Some('"' | '#')) && self.is_raw_string_start(1) => {
                    self.bump();
                    self.raw_string(line, "r".into());
                }
                'b' if self.peek(1) == Some('r') && self.is_raw_string_start(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string(line, "br".into());
                }
                '\'' => self.tick(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    /// Whether position `pos + off` starts `#*"` (the fence of a raw
    /// string). Distinguishes `r"…"` / `r#"…"#` from the raw identifier
    /// `r#try` and from a plain ident starting with `r`.
    fn is_raw_string_start(&self, off: usize) -> bool {
        let mut i = off;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text, line);
    }

    fn string(&mut self, line: u32, mut text: String) {
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// Raw string bodies end only at `"` followed by the same number of
    /// hashes as the opener — quotes and backslashes inside are inert.
    fn raw_string(&mut self, line: u32, mut text: String) {
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                let mut matched = 0usize;
                while matched < fence && self.peek(0) == Some('#') {
                    matched += 1;
                    text.push('#');
                    self.bump();
                }
                if matched == fence {
                    break;
                }
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    fn char_lit(&mut self, line: u32, mut text: String) {
        text.push('\'');
        self.bump(); // opening tick
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Char, text, line);
    }

    /// A `'` is a lifetime when followed by an ident char that is *not*
    /// itself closed by another `'` (`'a` vs `'a'`), the standard one-token
    /// lookahead disambiguation.
    fn tick(&mut self, line: u32) {
        let next = self.peek(1);
        let is_lifetime =
            matches!(next, Some(c) if c.is_alphabetic() || c == '_') && self.peek(2) != Some('\'');
        if is_lifetime {
            let mut text = String::from('\'');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
        } else {
            self.char_lit(line, String::new());
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        // Raw identifier prefix r# (only when followed by an ident char —
        // raw *strings* were peeled off before we got here).
        if self.peek(0) == Some('r')
            && self.peek(1) == Some('#')
            && matches!(self.peek(2), Some(c) if c.is_alphabetic() || c == '_')
        {
            text.push_str("r#");
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    /// Numbers are lexed loosely: digits, `_`, letters (covers hex digits,
    /// type suffixes, exponents), `.` when followed by a digit (so `0..n`
    /// ranges stay two punct tokens), and a sign directly after an
    /// exponent. Lints never interpret the value, only skip over it.
    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                let at_exponent = (c == 'e' || c == 'E')
                    && matches!(self.peek(1), Some('+' | '-'))
                    && matches!(self.peek(2), Some(d) if d.is_ascii_digit());
                text.push(c);
                self.bump();
                if at_exponent {
                    text.push(self.bump().unwrap_or('+'));
                }
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("fn main() { x.y }");
        assert_eq!(t[0], (TokenKind::Ident, "fn".into()));
        assert_eq!(t[1], (TokenKind::Ident, "main".into()));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Punct && s == "."));
    }

    #[test]
    fn nested_block_comments_balance() {
        let t = kinds("/* a /* b */ c */ x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].0, TokenKind::BlockComment);
        assert_eq!(t[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let t = kinds(r####"let s = r#"unwrap() "quoted" "#; done"####);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokenKind::Str && s.contains("unwrap")));
        // The `unwrap` inside the raw string must NOT surface as an ident.
        assert!(!t
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "unwrap"));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Ident && s == "done"));
    }

    #[test]
    fn raw_ident_is_not_a_raw_string() {
        let t = kinds("let r#try = 1; r#\"raw\"#;");
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "r#try"));
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokenKind::Str && s == "r#\"raw\"#"));
    }

    #[test]
    fn lifetime_vs_char() {
        let t = kinds("fn f<'a>(x: &'a u8) { let c = 'a'; let n = '\\n'; }");
        assert_eq!(
            t.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(t.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn escaped_quote_in_char_and_string() {
        let t = kinds(r#"let a = '\''; let b = "he \"said\" hi"; end"#);
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Char && s == r"'\''"));
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokenKind::Str && s.contains("said")));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Ident && s == "end"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let t = kinds("for i in 0..10 { let f = 1.5e-3f64; }");
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Num && s == "0"));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Num && s == "10"));
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokenKind::Num && s == "1.5e-3f64"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let t = kinds(r#"let a = b"bytes"; let c = b'x'; tail"#);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokenKind::Str && s == "b\"bytes\""));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Char && s == "b'x'"));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Ident && s == "tail"));
    }
}
