//! Workspace call graph: best-effort, deterministic, no type inference.
//!
//! The interprocedural lints (L7 panic-reachability, L8 determinism taint,
//! L9 journal-before-commit — see [`crate::taint`]) need to know *who calls
//! whom* across the workspace. This module builds that graph from nothing
//! but the token stream and [`FileScan`] structure: every `fn` item becomes
//! a node, every `name(`-shaped call site becomes an edge attempt, and
//! resolution is explicitly three-valued — **resolved** (exactly one
//! workspace candidate), **unresolved** (several workspace fns could be the
//! callee and we refuse to guess), or **external** (no workspace fn of that
//! name; `std` and shims land here). Unresolved edges are first-class: they
//! are counted in `--stats`, ratcheted in CI via `max_unresolved_bp` in the
//! baseline, and rendered in the graph dump, so resolver regressions are
//! visible instead of silent.
//!
//! Resolution is deliberately shallow (the whole crate's bargain — see
//! [`crate::lints`]): method calls resolve through the receiver only when
//! the receiver is literally `self` (via the enclosing `impl`/`trait`
//! owner) or when the method name is workspace-unique and not a common std
//! method; path calls resolve through the last `::` qualifier matched
//! against `impl`/`trait` owner names, module file stems, or `self`/
//! `crate`/`super`; bare calls resolve same-file → same-crate → workspace,
//! requiring uniqueness at the first level that has any candidate. Anything
//! ambiguous stays unresolved rather than picking a winner, because a wrong
//! edge would let the panic-reachability fixpoint either miss a real panic
//! or blame an innocent entry point.

use crate::scan::{FileScan, FnSpan};
use std::collections::BTreeMap;

/// How a call site was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallStyle {
    /// `helper(x)` — a free-function call.
    Bare,
    /// `Type::method(x)` / `module::helper(x)`.
    Path,
    /// `recv.method(x)` with a non-`self` receiver.
    Method,
    /// `self.method(x)`.
    SelfMethod,
}

impl CallStyle {
    /// Short label used in the graph dump.
    pub fn as_str(self) -> &'static str {
        match self {
            CallStyle::Bare => "bare",
            CallStyle::Path => "path",
            CallStyle::Method => "method",
            CallStyle::SelfMethod => "self",
        }
    }
}

/// Outcome of resolving one call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Exactly one workspace fn matched: an edge to `nodes[idx]`.
    Resolved(usize),
    /// More than one workspace fn could be the callee; no edge, counted.
    Unresolved,
    /// No workspace fn of this name/shape — std, shims, closures.
    External,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// 1-based line of the callee identifier.
    pub line: u32,
    /// Callee identifier.
    pub name: String,
    /// Last `::` path qualifier before the name, if any.
    pub qual: Option<String>,
    /// Token index of the callee identifier (for intra-fn ordering).
    pub tok: usize,
    /// Syntactic shape of the call.
    pub style: CallStyle,
    /// Whether the call sits inside a `catch_unwind(...)` argument — a
    /// panic barrier for L7.
    pub in_catch_unwind: bool,
    /// Where the edge goes, if anywhere.
    pub resolution: Resolution,
}

/// A local panic source inside one function (L7 raw material).
#[derive(Debug, Clone)]
pub struct PanicSource {
    /// 1-based line.
    pub line: u32,
    /// What panics: `.unwrap()`, `panic!`, `idx[…]`, …
    pub what: String,
}

/// A local nondeterminism source inside one function (L8 raw material).
#[derive(Debug, Clone)]
pub struct TaintSource {
    /// 1-based line.
    pub line: u32,
    /// What taints: `Instant::now()`, hash-iteration, …
    pub what: String,
}

/// One `fn` item in the workspace, with everything the interprocedural
/// passes need precomputed.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative file, forward slashes.
    pub file: String,
    /// Function name.
    pub name: String,
    /// `impl` self-type or `trait` name owning this fn, if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub start_line: u32,
    /// 1-based line of the closing brace.
    pub end_line: u32,
    /// Call sites in body order (nested fns excluded — they are their own
    /// nodes).
    pub calls: Vec<Call>,
    /// Panic sources in this body (already test-/suppression-filtered).
    pub panic_sources: Vec<PanicSource>,
    /// Nondeterminism sources in this body (already filtered).
    pub taint_sources: Vec<TaintSource>,
    /// Whether this fn is a sanctioned L8 sanitizer (the `obs::Clock`
    /// choke point, or a body that pins order via sort / BTree conversion).
    pub sanitizer: bool,
    /// Whether the body mentions `hooks` / `IngestHooks` (L9 scope).
    pub mentions_hooks: bool,
    /// Whether the fn body is entirely test code.
    pub in_test: bool,
    /// Whether the fn is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
}

impl FnNode {
    /// `file::Owner::name` / `file::name` — the node's stable identity in
    /// dumps and diagnostics.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}::{}", self.file, o, self.name),
            None => format!("{}::{}", self.file, self.name),
        }
    }
}

/// Aggregate resolution counts for `--stats` and the CI ratchet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of `fn` nodes.
    pub nodes: usize,
    /// Total call sites considered.
    pub calls: usize,
    /// Call sites with exactly one workspace candidate.
    pub resolved: usize,
    /// Call sites with several workspace candidates (no edge).
    pub unresolved: usize,
    /// Call sites with no workspace candidate (std, shims).
    pub external: usize,
}

impl GraphStats {
    /// Unresolved share of workspace-plausible calls, in basis points
    /// (0‱–10000‱). External calls are excluded from the denominator: the
    /// ratchet tracks resolver quality on calls that *could* resolve.
    pub fn unresolved_ratio_bp(&self) -> u32 {
        let denom = self.resolved + self.unresolved;
        if denom == 0 {
            return 0;
        }
        ((self.unresolved as u64 * 10_000) / denom as u64) as u32
    }
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// All fn nodes, sorted by `(file, start_line)` — deterministic for any
    /// input file order because files are sorted and scans are per-file.
    pub nodes: Vec<FnNode>,
    /// Resolution counts.
    pub stats: GraphStats,
}

impl CallGraph {
    /// Resolved callee indices of `nodes[i]`, deduped, ascending.
    pub fn callees(&self, i: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self.nodes[i]
            .calls
            .iter()
            .filter_map(|c| match c.resolution {
                Resolution::Resolved(j) => Some(j),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Index of the node for `(file, name)` when unique — test helper and
    /// entry-point lookup.
    pub fn find(&self, file: &str, name: &str) -> Option<usize> {
        let mut hits = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == file && n.name == name);
        let first = hits.next()?;
        if hits.next().is_some() {
            return None;
        }
        Some(first.0)
    }

    /// Deterministic plain-text dump: header with stats, then one block per
    /// node with its call sites and their resolutions. Byte-identical
    /// across runs and input file orderings (everything is sorted upstream).
    pub fn dump(&self) -> String {
        let mut out = String::from("# funnel-lint call graph v1\n");
        out.push_str(&format!(
            "# nodes={} calls={} resolved={} unresolved={} external={} unresolved_bp={}\n",
            self.stats.nodes,
            self.stats.calls,
            self.stats.resolved,
            self.stats.unresolved,
            self.stats.external,
            self.stats.unresolved_ratio_bp(),
        ));
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "fn {} @{}-{}{}\n",
                n.qualified(),
                n.start_line,
                n.end_line,
                if n.in_test { " [test]" } else { "" }
            ));
            for c in &n.calls {
                let (mark, target) = match c.resolution {
                    Resolution::Resolved(j) => ("->", self.nodes[j].qualified()),
                    Resolution::Unresolved => ("??", c.name.clone()),
                    Resolution::External => ("~~", c.name.clone()),
                };
                out.push_str(&format!(
                    "  {mark} {target} [{} L{}{}]\n",
                    c.style.as_str(),
                    c.line,
                    if c.in_catch_unwind { " caught" } else { "" }
                ));
            }
            for p in &n.panic_sources {
                out.push_str(&format!("  !! panic {} L{}\n", p.what, p.line));
            }
            for t in &n.taint_sources {
                out.push_str(&format!("  ** taint {} L{}\n", t.what, t.line));
            }
            if i + 1 < self.nodes.len() {
                // blank separator keeps blocks diffable
            }
        }
        out
    }
}

/// Common `std`/core method names that must never resolve to a workspace
/// fn through the name-unique method heuristic: a workspace fn called
/// `get` does not make every `opt.get()` in the repo call it.
const STD_METHODS: [&str; 74] = [
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "chain",
    "chars",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "flush",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "insert",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lock",
    "map",
    "map_err",
    "max",
    "min",
    "next",
    "ok",
    "parse",
    "pop",
    "position",
    "push",
    "read",
    "remove",
    "rev",
    "skip",
    "split",
    "starts_with",
    "take",
    "to_owned",
    "to_string",
    "trim",
    "values",
];

/// Keywords and control constructs that look like `ident (` but are not
/// calls.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "as", "await", "else", "fn", "for", "if", "impl", "in", "let", "loop", "match", "move",
    "return", "while",
];

/// Builds the workspace call graph from per-file scans. `files` must be
/// sorted by path (as [`crate::Workspace::collect_files`] guarantees);
/// the output is then independent of how the files were discovered.
pub fn build(files: &[(String, FileScan)]) -> CallGraph {
    // Pass 1: nodes, in (file, start_line) order.
    let mut nodes: Vec<FnNode> = Vec::new();
    for (path, scan) in files {
        for f in &scan.fns {
            nodes.push(FnNode {
                file: path.clone(),
                name: f.name.clone(),
                owner: f.owner.clone(),
                start_line: f.start_line,
                end_line: f.end_line,
                calls: Vec::new(),
                panic_sources: Vec::new(),
                taint_sources: Vec::new(),
                sanitizer: false,
                mentions_hooks: false,
                in_test: scan.in_test(f.start_line),
                is_pub: fn_is_pub(scan, f),
            });
        }
    }

    // Resolution indexes. All BTree so candidate lists are ordered.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_owner_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(&n.name).or_default().push(i);
        if let Some(o) = &n.owner {
            by_owner_name.entry((o, &n.name)).or_default().push(i);
        }
    }
    let resolver = Resolver {
        nodes: &nodes,
        by_name,
        by_owner_name,
    };

    // Pass 2: per-fn extraction + resolution.
    let mut stats = GraphStats {
        nodes: nodes.len(),
        ..GraphStats::default()
    };
    let mut node_idx = 0usize;
    struct Extracted {
        calls: Vec<Call>,
        panics: Vec<PanicSource>,
        taints: Vec<TaintSource>,
        sanitizer: bool,
        hooks: bool,
    }
    let mut extracted: Vec<Extracted> = Vec::with_capacity(nodes.len());
    for (path, scan) in files {
        let catch_ranges = catch_unwind_ranges(scan);
        for f in &scan.fns {
            // Token ranges of *other* fns nested inside this body: their
            // calls belong to them, not to us. Closures stay ours.
            let nested: Vec<(usize, usize)> = scan
                .fns
                .iter()
                .filter(|g| g.fn_tok > f.fn_tok && g.body_close <= f.body_close)
                .map(|g| (g.fn_tok, g.body_close))
                .collect();
            let caller_owner = f.owner.as_deref();
            let mut calls = extract_calls(scan, f, &nested, &catch_ranges);
            for c in &mut calls {
                c.resolution = resolver.resolve(path, caller_owner, c);
                match c.resolution {
                    Resolution::Resolved(_) => stats.resolved += 1,
                    Resolution::Unresolved => stats.unresolved += 1,
                    Resolution::External => stats.external += 1,
                }
                stats.calls += 1;
            }
            extracted.push(Extracted {
                calls,
                panics: panic_sources(path, scan, f, &nested, &catch_ranges),
                taints: taint_sources(path, scan, f, &nested),
                sanitizer: is_sanitizer(path, scan, f),
                hooks: mentions_hooks(scan, f),
            });
        }
    }
    for e in extracted {
        let n = &mut nodes[node_idx];
        n.calls = e.calls;
        n.panic_sources = e.panics;
        n.taint_sources = e.taints;
        n.sanitizer = e.sanitizer;
        n.mentions_hooks = e.hooks;
        node_idx += 1;
    }

    CallGraph { nodes, stats }
}

struct Resolver<'a> {
    nodes: &'a [FnNode],
    by_name: BTreeMap<&'a str, Vec<usize>>,
    by_owner_name: BTreeMap<(&'a str, &'a str), Vec<usize>>,
}

impl<'a> Resolver<'a> {
    fn resolve(&self, file: &str, caller_owner: Option<&str>, c: &Call) -> Resolution {
        match c.style {
            CallStyle::SelfMethod => {
                if let Some(owner) = caller_owner {
                    if let Some(hits) = self.by_owner_name.get(&(owner, c.name.as_str())) {
                        return unique(hits);
                    }
                }
                // `self.m()` where the method comes from a trait impl or a
                // default method: fall back to the name-unique rule.
                self.resolve_method(&c.name)
            }
            CallStyle::Method => self.resolve_method(&c.name),
            CallStyle::Path => match c.qual.as_deref() {
                Some(q) if q.starts_with(char::is_uppercase) => {
                    // `Type::assoc()` — match impl/trait owner names.
                    match self.by_owner_name.get(&(q, c.name.as_str())) {
                        Some(hits) => unique(hits),
                        None => Resolution::External,
                    }
                }
                Some(q @ ("self" | "crate" | "super")) => {
                    let _ = q;
                    self.resolve_scoped(&c.name, |n| same_crate(&n.file, file))
                }
                Some(q) => {
                    // `module::helper()` — match the file stem or the crate
                    // ident (`funnel_sim` → crates/sim).
                    let hits: Vec<usize> = self
                        .candidates(&c.name)
                        .filter(|&i| {
                            let n = &self.nodes[i];
                            file_stem(&n.file) == q || crate_ident(&n.file).as_deref() == Some(q)
                        })
                        .collect();
                    scoped_outcome(&hits)
                }
                None => self.resolve_scoped(&c.name, |_| true),
            },
            CallStyle::Bare => {
                // Same file, then same crate, then workspace: the first
                // level with any candidate must be unique.
                for pred in [
                    &(|n: &FnNode| n.file == file && n.owner.is_none()) as &dyn Fn(&FnNode) -> bool,
                    &(|n: &FnNode| same_crate(&n.file, file) && n.owner.is_none()),
                    &(|n: &FnNode| n.owner.is_none()),
                ] {
                    let hits: Vec<usize> = self
                        .candidates(&c.name)
                        .filter(|&i| pred(&self.nodes[i]))
                        .collect();
                    match hits.len() {
                        0 => continue,
                        1 => return Resolution::Resolved(hits[0]),
                        _ => return Resolution::Unresolved,
                    }
                }
                Resolution::External
            }
        }
    }

    fn candidates(&self, name: &str) -> impl Iterator<Item = usize> + '_ {
        self.by_name.get(name).into_iter().flatten().copied()
    }

    /// `recv.m()` with an opaque receiver: resolve only when `m` is not a
    /// common std method and exactly one workspace *method* has that name.
    fn resolve_method(&self, name: &str) -> Resolution {
        if STD_METHODS.contains(&name) {
            return Resolution::External;
        }
        let hits: Vec<usize> = self
            .candidates(name)
            .filter(|&i| self.nodes[i].owner.is_some())
            .collect();
        scoped_outcome(&hits)
    }

    fn resolve_scoped(&self, name: &str, pred: impl Fn(&FnNode) -> bool) -> Resolution {
        let hits: Vec<usize> = self
            .candidates(name)
            .filter(|&i| pred(&self.nodes[i]))
            .collect();
        scoped_outcome(&hits)
    }
}

fn unique(hits: &[usize]) -> Resolution {
    match hits.len() {
        1 => Resolution::Resolved(hits[0]),
        0 => Resolution::External,
        _ => Resolution::Unresolved,
    }
}

fn scoped_outcome(hits: &[usize]) -> Resolution {
    match hits.len() {
        0 => Resolution::External,
        1 => Resolution::Resolved(hits[0]),
        _ => Resolution::Unresolved,
    }
}

/// `crates/sim/src/agent.rs` → `Some("funnel_sim")`; `src/lib.rs` → None.
fn crate_ident(path: &str) -> Option<String> {
    let mut parts = path.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    parts.next().map(|dir| format!("funnel_{dir}"))
}

/// The crate-level prefix two files must share to be "same crate".
fn same_crate(a: &str, b: &str) -> bool {
    fn key(p: &str) -> String {
        let mut parts = p.split('/');
        match parts.next() {
            Some("crates") => format!("crates/{}", parts.next().unwrap_or("")),
            Some(top) => top.to_string(),
            None => String::new(),
        }
    }
    key(a) == key(b)
}

/// `crates/sim/src/collector.rs` → `collector`.
fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs")
}

fn in_ranges(ranges: &[(usize, usize)], idx: usize) -> bool {
    ranges.iter().any(|&(a, b)| (a..=b).contains(&idx))
}

/// Index of the `)` matching the `(` at `open` (or `code.len()`).
fn matching_paren(code: &[crate::lexer::Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len()
}

/// Token ranges covered by `catch_unwind(...)` arguments — panic barriers.
fn catch_unwind_ranges(scan: &FileScan) -> Vec<(usize, usize)> {
    let code = &scan.code;
    let mut out = Vec::new();
    for i in 0..code.len() {
        if code[i].is_ident("catch_unwind") && code.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            out.push((i + 1, matching_paren(code, i + 1)));
        }
    }
    out
}

/// All call sites in `f`'s body, excluding nested fns and attributes.
fn extract_calls(
    scan: &FileScan,
    f: &FnSpan,
    nested: &[(usize, usize)],
    catch_ranges: &[(usize, usize)],
) -> Vec<Call> {
    let code = &scan.code;
    let mut out = Vec::new();
    let end = f.body_close.min(code.len());
    for i in (f.body_open + 1)..end {
        let t = &code[i];
        if t.kind != crate::lexer::TokenKind::Ident
            || !code.get(i + 1).is_some_and(|p| p.is_punct('('))
            || in_ranges(nested, i)
            || scan.in_attr(i)
        {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // fn items are snake_case; `Some(x)`, `Ok(x)` and struct literals
        // start uppercase and are never workspace fns.
        if !t
            .text
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        {
            continue;
        }
        let (style, qual) = classify_call(code, i);
        out.push(Call {
            line: t.line,
            name: t.text.clone(),
            qual,
            tok: i,
            style,
            in_catch_unwind: in_ranges(catch_ranges, i),
            resolution: Resolution::External, // placeholder, set by resolve
        });
    }
    out
}

/// Looks at the tokens before the callee ident to classify the call shape
/// and pull out the last path qualifier.
fn classify_call(code: &[crate::lexer::Token], i: usize) -> (CallStyle, Option<String>) {
    if i >= 1 && code[i - 1].is_punct('.') {
        if i >= 2 && code[i - 2].is_ident("self") {
            return (CallStyle::SelfMethod, None);
        }
        return (CallStyle::Method, None);
    }
    if i >= 2 && code[i - 1].is_punct(':') && code[i - 2].is_punct(':') {
        let qual = (i >= 3)
            .then(|| &code[i - 3])
            .filter(|t| t.kind == crate::lexer::TokenKind::Ident)
            .map(|t| t.text.clone());
        return (CallStyle::Path, qual);
    }
    (CallStyle::Bare, None)
}

/// Crates whose files count slice indexing as an L7 panic source. The math
/// kernels (linalg/sst/timeseries) index in tight loops over
/// locally-constructed buffers; flagging those would drown the signal the
/// pipeline crates need (documented in DESIGN.md §7).
fn indexing_scoped(path: &str) -> bool {
    path.starts_with("crates/core/src/")
        || path.starts_with("crates/sim/src/")
        || path.starts_with("crates/resilience/src/")
}

/// Local panic sources in `f`'s body, filtered the same way `emit` filters
/// findings: test regions and `funnel-lint: allow(panic-reachability)`
/// suppressions drop the source itself, so a suppressed line never taints
/// callers transitively.
fn panic_sources(
    path: &str,
    scan: &FileScan,
    f: &FnSpan,
    nested: &[(usize, usize)],
    catch_ranges: &[(usize, usize)],
) -> Vec<PanicSource> {
    let code = &scan.code;
    let mut out = Vec::new();
    let end = f.body_close.min(code.len());
    let mut push = |line: u32, what: String| {
        if !scan.in_test(line) && !scan.suppressed(line, "panic-reachability") {
            out.push(PanicSource { line, what });
        }
    };
    for i in (f.body_open + 1)..end {
        if in_ranges(nested, i) || in_ranges(catch_ranges, i) || scan.in_attr(i) {
            continue;
        }
        let t = &code[i];
        if t.kind != crate::lexer::TokenKind::Ident {
            continue;
        }
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            push(t.line, format!(".{}()", t.text));
        } else if matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && code.get(i + 1).is_some_and(|p| p.is_punct('!'))
        {
            push(t.line, format!("{}!", t.text));
        } else if indexing_scoped(path)
            && code.get(i + 1).is_some_and(|p| p.is_punct('['))
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
        {
            push(t.line, format!("{}[…]", t.text));
        }
    }
    out
}

/// Local nondeterminism sources in `f`'s body (L8). Clock-exempt files
/// (bench, eval timing) are skipped — measuring wall time is their job.
fn taint_sources(
    path: &str,
    scan: &FileScan,
    f: &FnSpan,
    nested: &[(usize, usize)],
) -> Vec<TaintSource> {
    if path.starts_with("crates/bench/") || path == "crates/eval/src/timing.rs" {
        return Vec::new();
    }
    let code = &scan.code;
    let mut out = Vec::new();
    let end = f.body_close.min(code.len());
    let mut push = |line: u32, what: String| {
        if !scan.in_test(line) && !scan.suppressed(line, "determinism-taint") {
            out.push(TaintSource { line, what });
        }
    };
    let hash_names = crate::lints::container_bindings(scan, &["HashMap", "HashSet"]);
    for i in (f.body_open + 1)..end {
        if in_ranges(nested, i) || scan.in_attr(i) {
            continue;
        }
        let t = &code[i];
        if t.kind != crate::lexer::TokenKind::Ident {
            continue;
        }
        if t.is_ident("Instant")
            && code.get(i + 1).is_some_and(|p| p.is_punct(':'))
            && code.get(i + 3).is_some_and(|p| p.is_ident("now"))
        {
            push(t.line, "Instant::now()".into());
        } else if t.is_ident("SystemTime") {
            push(t.line, "SystemTime".into());
        } else if matches!(t.text.as_str(), "thread_rng" | "from_entropy") {
            push(t.line, format!("{}()", t.text));
        } else if t.is_ident("ThreadId")
            || (t.is_ident("thread")
                && code.get(i + 1).is_some_and(|p| p.is_punct(':'))
                && code.get(i + 3).is_some_and(|p| p.is_ident("current")))
        {
            push(t.line, "thread identity".into());
        } else if !hash_names.is_empty()
            && crate::lints::ITER_METHODS.iter().any(|im| t.is_ident(im))
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|p| p.is_punct('('))
            && crate::lints::chain_mentions(&hash_names, code, i - 1).is_some()
        {
            push(t.line, format!("hash-iteration .{}()", t.text));
        }
    }
    out
}

/// Whether `f` is a sanctioned L8 sanitizer: the `obs::Clock` choke point
/// (the one place wall time is allowed to enter, already L1-suppressed with
/// a note), or a body that pins ordering by sorting or converting through a
/// BTree collection before anything escapes.
fn is_sanitizer(path: &str, scan: &FileScan, f: &FnSpan) -> bool {
    if path == "crates/obs/src/clock.rs" {
        return true;
    }
    let code = &scan.code;
    let end = f.body_close.min(code.len());
    code[(f.body_open + 1).min(end)..end].iter().any(|t| {
        t.kind == crate::lexer::TokenKind::Ident
            && (t.text.starts_with("sort") || t.text == "BTreeMap" || t.text == "BTreeSet")
    })
}

/// Whether a visibility qualifier precedes the `fn` keyword: `pub fn`,
/// `pub(crate) fn`, `pub(in …) fn`. Qualifier keywords like `const`,
/// `async`, `unsafe`, and `extern "C"` may sit between.
fn fn_is_pub(scan: &FileScan, f: &FnSpan) -> bool {
    let code = &scan.code;
    let mut j = f.fn_tok;
    let mut steps = 0;
    while j > 0 && steps < 10 {
        j -= 1;
        steps += 1;
        let t = &code[j];
        if t.is_ident("pub") {
            return true;
        }
        let qualifier = t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("unsafe")
            || t.is_ident("extern")
            || t.is_ident("crate")
            || t.is_ident("super")
            || t.is_ident("in")
            || t.is_punct('(')
            || t.is_punct(')')
            || t.kind == crate::lexer::TokenKind::Str;
        if !qualifier {
            return false;
        }
    }
    false
}

/// Whether `f`'s signature or body mentions the ingest-hooks protocol.
fn mentions_hooks(scan: &FileScan, f: &FnSpan) -> bool {
    let code = &scan.code;
    let end = f.body_close.min(code.len());
    code[f.fn_tok..end]
        .iter()
        .any(|t| t.is_ident("hooks") || t.is_ident("IngestHooks") || t.is_ident("DurableHooks"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_files(files: &[(&str, &str)]) -> Vec<(String, FileScan)> {
        files
            .iter()
            .map(|(p, c)| (p.to_string(), FileScan::of(c)))
            .collect()
    }

    #[test]
    fn bare_call_resolves_same_file_first() {
        let g = build(&scan_files(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {}\nfn top() { helper(); }\n",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
        ]));
        let top = g.find("crates/a/src/lib.rs", "top").unwrap();
        let callees = g.callees(top);
        assert_eq!(callees.len(), 1);
        assert_eq!(g.nodes[callees[0]].file, "crates/a/src/lib.rs");
    }

    #[test]
    fn ambiguous_bare_call_is_unresolved() {
        let g = build(&scan_files(&[
            ("crates/a/src/lib.rs", "fn top() { helper(); }\n"),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
            ("crates/c/src/lib.rs", "fn helper() {}\n"),
        ]));
        assert_eq!(g.stats.unresolved, 1);
        assert_eq!(g.stats.resolved, 0);
    }

    #[test]
    fn self_method_resolves_through_owner() {
        let src = "struct S;\nimpl S {\n fn a(&self) { self.b(); }\n fn b(&self) {}\n}\n\
                   struct T;\nimpl T {\n fn b(&self) {}\n}\n";
        let g = build(&scan_files(&[("crates/a/src/lib.rs", src)]));
        let a = g.find("crates/a/src/lib.rs", "a").unwrap();
        let callees = g.callees(a);
        assert_eq!(callees.len(), 1);
        assert_eq!(g.nodes[callees[0]].owner.as_deref(), Some("S"));
    }

    #[test]
    fn path_call_resolves_through_type_and_module() {
        let files = scan_files(&[
            (
                "crates/a/src/widget.rs",
                "pub struct W;\nimpl W {\n pub fn create() -> W { W }\n}\npub fn free_helper() {}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "fn top() { let w = W::create(); widget::free_helper(); }\n",
            ),
        ]);
        let g = build(&files);
        let top = g.find("crates/b/src/lib.rs", "top").unwrap();
        assert_eq!(g.callees(top).len(), 2);
    }

    #[test]
    fn std_methods_stay_external() {
        let g = build(&scan_files(&[(
            "crates/a/src/lib.rs",
            "struct S;\nimpl S {\n fn get(&self) {}\n}\nfn top(v: Vec<u8>) { v.get(0); }\n",
        )]));
        assert_eq!(g.stats.external, 1);
        assert_eq!(g.stats.resolved, 0);
    }

    #[test]
    fn uppercase_and_keywords_are_not_calls() {
        let g = build(&scan_files(&[(
            "crates/a/src/lib.rs",
            "fn top(x: Option<u8>) -> Option<u8> {\n if (true) {}\n match (x) { Some(v) => Some(v), _ => None }\n}\n",
        )]));
        assert_eq!(g.stats.calls, 0);
    }

    #[test]
    fn panic_sources_respect_tests_suppressions_and_catch_unwind() {
        let src = "\
fn prod(v: Vec<u8>) {\n\
  v.first().unwrap();\n\
  // funnel-lint: allow(panic-reachability): length checked by caller\n\
  v.first().expect(\"x\");\n\
  let _ = catch_unwind(|| v.first().unwrap());\n\
}\n\
#[cfg(test)]\nmod tests {\n fn t(v: Vec<u8>) { v.first().unwrap(); }\n}\n";
        let g = build(&scan_files(&[("crates/core/src/x.rs", src)]));
        let prod = g.find("crates/core/src/x.rs", "prod").unwrap();
        assert_eq!(g.nodes[prod].panic_sources.len(), 1);
        assert_eq!(g.nodes[prod].panic_sources[0].what, ".unwrap()");
        let t = g.find("crates/core/src/x.rs", "t").unwrap();
        assert!(g.nodes[t].panic_sources.is_empty());
    }

    #[test]
    fn indexing_counts_only_in_pipeline_crates() {
        let core = "fn f(m: Vec<u8>, i: usize) { let _ = m[i]; }\n";
        let g = build(&scan_files(&[
            ("crates/core/src/x.rs", core),
            ("crates/timeseries/src/y.rs", core),
        ]));
        let cx = g.find("crates/core/src/x.rs", "f").unwrap();
        let ty = g.find("crates/timeseries/src/y.rs", "f").unwrap();
        assert_eq!(g.nodes[cx].panic_sources.len(), 1);
        assert!(g.nodes[ty].panic_sources.is_empty());
    }

    #[test]
    fn taint_sources_and_sanitizers() {
        let src = "\
fn raw() -> u64 { let t = Instant::now(); 0 }\n\
fn sorted(mut v: Vec<u8>) -> Vec<u8> { v.sort(); v }\n";
        let g = build(&scan_files(&[("crates/core/src/x.rs", src)]));
        let raw = g.find("crates/core/src/x.rs", "raw").unwrap();
        let sorted = g.find("crates/core/src/x.rs", "sorted").unwrap();
        assert_eq!(g.nodes[raw].taint_sources.len(), 1);
        assert!(!g.nodes[raw].sanitizer);
        assert!(g.nodes[sorted].sanitizer);
    }

    #[test]
    fn dump_is_stable_across_input_order() {
        let a = (
            "crates/a/src/lib.rs".to_string(),
            "fn one() { two(); }\n".to_string(),
        );
        let b = (
            "crates/b/src/lib.rs".to_string(),
            "fn two() {}\n".to_string(),
        );
        let mk = |files: &[(String, String)]| {
            let mut sorted: Vec<(String, FileScan)> = files
                .iter()
                .map(|(p, c)| (p.clone(), FileScan::of(c)))
                .collect();
            sorted.sort_by(|x, y| x.0.cmp(&y.0));
            build(&sorted).dump()
        };
        assert_eq!(mk(&[a.clone(), b.clone()]), mk(&[b, a]));
    }
}
