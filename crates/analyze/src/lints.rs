//! The lint registry and the six FUNNEL domain lints.
//!
//! Each lint encodes one invariant that PR 1's bit-replayable verdicts
//! depend on. The passes are deliberately shallow — token patterns plus the
//! [`FileScan`] structure — because a lint that needs full type inference
//! would need rustc, and the point of `funnel-lint` is to run in any
//! environment the workspace itself builds in. Shallow means heuristic:
//! false positives are expected and handled by the baseline file and by
//! inline `// funnel-lint: allow(<lint>)` suppressions, never by weakening
//! the pass.

use crate::scan::FileScan;
use std::collections::BTreeSet;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, counted in the baseline, but does not gate on its own.
    Warn,
    /// New findings fail `--deny-new`.
    Deny,
}

impl Severity {
    /// Lowercase name used in diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// Static description of one lint.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Stable kebab-case identifier (used in baselines and suppressions).
    pub id: &'static str,
    /// Default severity (CLI `--allow`/`--deny` flags override).
    pub default_severity: Severity,
    /// One-line description for `--help` and reports.
    pub description: &'static str,
}

/// L1–L11, in order.
pub const REGISTRY: [LintInfo; 11] = [
    LintInfo {
        id: "nondeterministic-time",
        default_severity: Severity::Deny,
        description: "Instant::now()/SystemTime in scoring paths breaks bit-for-bit replay; \
                      only crates/bench and crates/eval/src/timing.rs may read the clock",
    },
    LintInfo {
        id: "unordered-iteration",
        default_severity: Severity::Deny,
        description: "iterating HashMap/HashSet in code feeding scores or reports makes \
                      output depend on hasher state; use BTreeMap or sort first",
    },
    LintInfo {
        id: "panic-in-hot-path",
        default_severity: Severity::Deny,
        description: "unwrap()/expect()/panic! on the ingestion-to-verdict path can kill the \
                      collector on one bad frame; quarantine or skip instead",
    },
    LintInfo {
        id: "missing-forbid-unsafe",
        default_severity: Severity::Deny,
        description: "every non-shim crate root must carry #![forbid(unsafe_code)]",
    },
    LintInfo {
        id: "float-accumulation-order",
        default_severity: Severity::Warn,
        description: "f64 sums over containers must fold in a documented stable order \
                      (sort first, or suppress with a note explaining why order is fixed)",
    },
    LintInfo {
        id: "fs-io-unwrap",
        default_severity: Severity::Deny,
        description: "unwrap()/expect() on a filesystem I/O result turns a full disk, missing \
                      path, or permission error into a crash; propagate the io::Error with `?`",
    },
    LintInfo {
        id: "panic-reachability",
        default_severity: Severity::Deny,
        description: "a hot-path entry point can transitively reach unwrap()/expect()/panic!/\
                      indexing through the call graph; make the chain fallible or suppress the \
                      source with a note",
    },
    LintInfo {
        id: "determinism-taint",
        default_severity: Severity::Deny,
        description: "a nondeterminism source (clock, hash iteration, thread identity, \
                      unseeded RNG) flows along call edges into a report/serialization sink \
                      without passing a sanctioned sanitizer",
    },
    LintInfo {
        id: "journal-before-commit",
        default_severity: Severity::Deny,
        description: "in collector ingest paths the WAL journal hook must run — and be error-\
                      checked — before the store commit, or a crash loses accepted frames",
    },
    LintInfo {
        id: "undeclared-obs-name",
        default_severity: Severity::Warn,
        description: "every dotted name at a span!/counter/gauge/histogram call site must be a \
                      constant declared in crates/obs/src/names.rs",
    },
    LintInfo {
        id: "suppression-missing-note",
        default_severity: Severity::Deny,
        description: "every inline `funnel-lint: allow(...)` must carry a note explaining why \
                      the finding is safe to silence",
    },
];

/// Looks up a lint by id.
pub fn lint_info(id: &str) -> Option<&'static LintInfo> {
    REGISTRY.iter().find(|l| l.id == id)
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired (an id from [`REGISTRY`]).
    pub lint: &'static str,
    /// Effective severity.
    pub severity: Severity,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// Enclosing function name (or `<file>`): the line-drift-stable part
    /// of the baseline key.
    pub context: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// The baseline key: stable across line-number drift, churns only when
    /// the enclosing function is renamed or the file moves.
    pub fn baseline_key(&self) -> String {
        format!("{}:{}:{}", self.lint, self.file, self.context)
    }
}

// ---------------------------------------------------------------- scopes --

fn in_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// Files allowed to read the wall clock.
fn clock_exempt(path: &str) -> bool {
    path.starts_with("crates/bench/") || path == "crates/eval/src/timing.rs"
}

/// Crates/files that feed scoring or operator reports (L2 scope).
fn feeds_scoring(path: &str) -> bool {
    in_any(
        path,
        &["crates/core/src/", "crates/did/src/", "crates/detect/src/"],
    ) || path == "crates/sim/src/store.rs"
}

/// The ingestion-to-verdict hot path (L3 scope): everything in L2 plus the
/// collector and wire decoding.
fn hot_path(path: &str) -> bool {
    feeds_scoring(path) || path == "crates/sim/src/agent.rs" || path == "crates/sim/src/wire.rs"
}

/// Aggregation code where float fold order shapes results (L5 scope).
fn aggregation_code(path: &str) -> bool {
    in_any(
        path,
        &[
            "crates/core/src/",
            "crates/did/src/",
            "crates/detect/src/",
            "crates/sst/src/",
            "crates/timeseries/src/",
            "crates/sim/src/",
        ],
    )
}

/// Whether `path` is a crate root that must carry `#![forbid(unsafe_code)]`
/// (L4 scope). Shim crates are excluded at the workspace-walk level.
pub fn is_guarded_crate_root(path: &str) -> bool {
    path == "src/lib.rs"
        || (path.starts_with("crates/")
            && (path.ends_with("/src/lib.rs") || path.ends_with("/src/main.rs")))
}

// ------------------------------------------------------------ the passes --

/// Runs every lint on one file. `path` is workspace-relative with forward
/// slashes; it drives the per-lint scoping above.
pub fn run_lints(path: &str, scan: &FileScan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_nondeterministic_time(path, scan, &mut out);
    lint_unordered_iteration(path, scan, &mut out);
    lint_panic_in_hot_path(path, scan, &mut out);
    lint_missing_forbid_unsafe(path, scan, &mut out);
    lint_float_accumulation_order(path, scan, &mut out);
    lint_fs_io_unwrap(path, scan, &mut out);
    lint_suppression_note(path, scan, &mut out);
    out.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    out
}

/// Shared emit helper: applies test-region and suppression filtering.
fn emit(
    out: &mut Vec<Diagnostic>,
    scan: &FileScan,
    id: &'static str,
    path: &str,
    line: u32,
    message: String,
) {
    if scan.in_test(line) || scan.suppressed(line, id) {
        return;
    }
    let info = lint_info(id).expect("lint id registered");
    let context = scan
        .enclosing_fn(line)
        .map(|f| f.name.clone())
        .unwrap_or_else(|| "<file>".to_string());
    out.push(Diagnostic {
        lint: id,
        severity: info.default_severity,
        file: path.to_string(),
        line,
        context,
        message,
    });
}

/// L1: `Instant::now()` / any `SystemTime` use outside the clock-exempt
/// files. Wall-clock reads in a scoring path make two replays of the same
/// fault plan disagree.
fn lint_nondeterministic_time(path: &str, scan: &FileScan, out: &mut Vec<Diagnostic>) {
    if clock_exempt(path) {
        return;
    }
    let code = &scan.code;
    for i in 0..code.len() {
        let t = &code[i];
        if t.is_ident("SystemTime") {
            emit(
                out,
                scan,
                "nondeterministic-time",
                path,
                t.line,
                "SystemTime is wall-clock state; thread a simulated clock instead".into(),
            );
        } else if t.is_ident("Instant")
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            emit(
                out,
                scan,
                "nondeterministic-time",
                path,
                t.line,
                "Instant::now() makes this path nondeterministic; only bench/timing code may \
                 read the clock"
                    .into(),
            );
        }
    }
}

/// Iteration-observing method names on hash containers.
pub(crate) const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Names in this file bound to types mentioning any of `type_names`
/// (let bindings, struct fields, fn params — found by walking back from
/// each type-name token to the nearest `name:` or `name =` in the same
/// statement). Heuristic by design: shadowing across scopes is not
/// tracked, which is exactly what the baseline and suppressions absorb.
pub(crate) fn container_bindings(scan: &FileScan, type_names: &[&str]) -> BTreeSet<String> {
    let code = &scan.code;
    let mut names = BTreeSet::new();
    for i in 0..code.len() {
        if !type_names.iter().any(|n| code[i].is_ident(n)) {
            continue;
        }
        // Walk back to the statement boundary looking for `ident :` (not
        // `::`) or `ident =` / `ident = SomePath::new()`.
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = &code[j];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            let next_colon = code[j + 1].is_punct(':');
            let part_of_path = j + 2 < code.len() && code[j + 2].is_punct(':');
            let next_eq =
                code[j + 1].is_punct('=') && !code.get(j + 2).is_some_and(|t| t.is_punct('='));
            if t.kind == crate::lexer::TokenKind::Ident
                && !matches!(t.text.as_str(), "let" | "mut" | "pub" | "ref")
                && ((next_colon && !part_of_path) || next_eq)
            {
                names.insert(t.text.clone());
                break;
            }
        }
    }
    names
}

/// L2: iterating a `HashMap`/`HashSet` binding in code whose output
/// reaches scores or reports. Hasher seeds differ run to run, so any
/// fold or render over that order is nondeterministic.
fn lint_unordered_iteration(path: &str, scan: &FileScan, out: &mut Vec<Diagnostic>) {
    if !feeds_scoring(path) {
        return;
    }
    let hash_names = container_bindings(scan, &["HashMap", "HashSet"]);
    if hash_names.is_empty() {
        return;
    }
    let code = &scan.code;
    for i in 0..code.len() {
        let t = &code[i];
        // `recv.iter()` and friends, where the receiver chain (method
        // calls, field accesses, lock guards) mentions a hash binding:
        // catches both `map.keys()` and `self.map.read().keys()`.
        if ITER_METHODS.iter().any(|im| t.is_ident(im))
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            if let Some(name) = chain_mentions(&hash_names, code, i - 1) {
                emit(
                    out,
                    scan,
                    "unordered-iteration",
                    path,
                    t.line,
                    format!(
                        "`{name}…{}()` iterates a hash container in hasher order; use \
                         BTreeMap/BTreeSet or collect-and-sort before folding",
                        t.text
                    ),
                );
            }
        }
        if t.kind != crate::lexer::TokenKind::Ident || !hash_names.contains(&t.text) {
            continue;
        }
        // `for pat in [&mut] name { … }` — direct iteration.
        if code.get(i + 1).is_some_and(|p| p.is_punct('{')) {
            let mut j = i;
            let mut saw_in = false;
            for _ in 0..8 {
                if j == 0 {
                    break;
                }
                j -= 1;
                if code[j].is_ident("in") {
                    saw_in = true;
                    break;
                }
                if !(code[j].is_punct('&') || code[j].is_ident("mut")) {
                    break;
                }
            }
            if saw_in {
                emit(
                    out,
                    scan,
                    "unordered-iteration",
                    path,
                    t.line,
                    format!(
                        "`for … in {}` iterates a hash container in hasher order; use \
                         BTreeMap/BTreeSet or sort first",
                        t.text
                    ),
                );
            }
        }
    }
}

/// L3: panicking constructs on the ingestion-to-verdict path. One poisoned
/// frame must degrade coverage, not kill the collector thread.
fn lint_panic_in_hot_path(path: &str, scan: &FileScan, out: &mut Vec<Diagnostic>) {
    if !hot_path(path) {
        return;
    }
    let map_names = container_bindings(scan, &["HashMap", "BTreeMap"]);
    let code = &scan.code;
    for i in 0..code.len() {
        let t = &code[i];
        // `.unwrap()` / `.expect(`
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            emit(
                out,
                scan,
                "panic-in-hot-path",
                path,
                t.line,
                format!(
                    "`.{}()` can panic the hot path; propagate with `?`, match, or \
                     quarantine-and-skip",
                    t.text
                ),
            );
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
        if matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && t.kind == crate::lexer::TokenKind::Ident
            && code.get(i + 1).is_some_and(|p| p.is_punct('!'))
        {
            emit(
                out,
                scan,
                "panic-in-hot-path",
                path,
                t.line,
                format!(
                    "`{}!` aborts the hot path; degrade gracefully instead",
                    t.text
                ),
            );
        }
        // Indexing into a map binding: `m[k]` panics on a missing key.
        if t.kind == crate::lexer::TokenKind::Ident
            && map_names.contains(&t.text)
            && code.get(i + 1).is_some_and(|p| p.is_punct('['))
        {
            emit(
                out,
                scan,
                "panic-in-hot-path",
                path,
                t.line,
                format!("`{}[…]` panics on a missing key; use `.get()`", t.text),
            );
        }
    }
}

/// L4: every guarded crate root must carry `#![forbid(unsafe_code)]`.
fn lint_missing_forbid_unsafe(path: &str, scan: &FileScan, out: &mut Vec<Diagnostic>) {
    if !is_guarded_crate_root(path) || scan.has_forbid_unsafe {
        return;
    }
    emit(
        out,
        scan,
        "missing-forbid-unsafe",
        path,
        1,
        "crate root lacks #![forbid(unsafe_code)]".into(),
    );
}

/// L5: `.sum::<f64>()` (and `+=` folds over hash containers) in
/// aggregation code, unless the enclosing function sorts first. f64
/// addition is not associative, so fold order is part of the result.
fn lint_float_accumulation_order(path: &str, scan: &FileScan, out: &mut Vec<Diagnostic>) {
    if !aggregation_code(path) {
        return;
    }
    let code = &scan.code;
    let hash_names = container_bindings(scan, &["HashMap", "HashSet"]);
    for i in 0..code.len() {
        let t = &code[i];
        // `.sum::<f64>()`
        let is_f64_sum = t.is_ident("sum")
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|p| p.is_punct(':'))
            && code.get(i + 2).is_some_and(|p| p.is_punct(':'))
            && code.get(i + 3).is_some_and(|p| p.is_punct('<'))
            && code.get(i + 4).is_some_and(|p| p.is_ident("f64"));
        if is_f64_sum && !sorted_earlier_in_fn(scan, i) {
            emit(
                out,
                scan,
                "float-accumulation-order",
                path,
                t.line,
                "f64 sum over a container with no preceding sort in this fn; fold order must \
                 be stable (sort first, or suppress with a note on why the order is fixed)"
                    .into(),
            );
        }
        // `acc += v` inside `for … in <hash container>`.
        if t.is_ident("for") {
            let Some((name_idx, body_open)) = for_over(&hash_names, code, i) else {
                continue;
            };
            let body_close = {
                let mut depth = 0usize;
                let mut k = body_open;
                loop {
                    if k >= code.len() {
                        break k;
                    }
                    if code[k].is_punct('{') {
                        depth += 1;
                    } else if code[k].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break k;
                        }
                    }
                    k += 1;
                }
            };
            for k in body_open..body_close.min(code.len()) {
                if code[k].is_punct('+')
                    && code.get(k + 1).is_some_and(|p| p.is_punct('='))
                    && code[k].line == code[k + 1].line
                {
                    emit(
                        out,
                        scan,
                        "float-accumulation-order",
                        path,
                        code[k].line,
                        format!(
                            "`+=` fold inside `for … in {}` accumulates in hasher order",
                            code[name_idx].text
                        ),
                    );
                }
            }
        }
    }
}

/// Filesystem API names that root an I/O call chain (L6 scope).
/// Deliberately tight: bare `write`, `open`, and `create` are too generic
/// to key on, but `fs::…`, `File`, and `OpenOptions` cover the std entry
/// points those generics reach the disk through.
const FS_NAMES: [&str; 17] = [
    "fs",
    "File",
    "OpenOptions",
    "read_to_string",
    "read_dir",
    "create_dir",
    "create_dir_all",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "rename",
    "canonicalize",
    "metadata",
    "symlink_metadata",
    "set_len",
    "sync_all",
    "sync_data",
];

/// L6: `.unwrap()` / `.expect()` directly on a filesystem I/O result,
/// anywhere outside tests. Crash recovery (DESIGN.md §10) leans on every
/// durable-state path returning `io::Error` instead of panicking: a full
/// disk or a torn file must surface as a degraded verdict, not a crash.
fn lint_fs_io_unwrap(path: &str, scan: &FileScan, out: &mut Vec<Diagnostic>) {
    let code = &scan.code;
    for i in 0..code.len() {
        let t = &code[i];
        if !(t.is_ident("unwrap") || t.is_ident("expect"))
            || i == 0
            || !code[i - 1].is_punct('.')
            || !code.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            continue;
        }
        if let Some(name) = fs_chain_root(code, i - 1) {
            emit(
                out,
                scan,
                "fs-io-unwrap",
                path,
                t.line,
                format!(
                    "`.{}()` on a `{name}` filesystem result panics on I/O failure (full \
                     disk, missing path, permissions); propagate the io::Error with `?`",
                    t.text
                ),
            );
        }
    }
}

/// L11: every inline suppression must say *why*. A bare
/// `// funnel-lint: allow(x)` silences a lint with no reviewable
/// justification; `// funnel-lint: allow(x): reason` leaves one. This pass
/// deliberately ignores the suppression machinery itself (no
/// self-suppressing `allow(suppression-missing-note)` loophole) — only the
/// test-region filter applies.
fn lint_suppression_note(path: &str, scan: &FileScan, out: &mut Vec<Diagnostic>) {
    for site in &scan.suppression_sites {
        if site.has_note || scan.in_test(site.line) {
            continue;
        }
        let info = lint_info("suppression-missing-note").expect("lint id registered");
        let context = scan
            .enclosing_fn(site.line)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "<file>".to_string());
        out.push(Diagnostic {
            lint: "suppression-missing-note",
            severity: info.default_severity,
            file: path.to_string(),
            line: site.line,
            context,
            message: format!(
                "`funnel-lint: allow({})` has no note; append `: <why this is safe>`",
                site.lints.join(", ")
            ),
        });
    }
}

/// The obs metric/span registration functions whose first argument is a
/// dotted vocabulary name (L10 scope). The `timeline_*` variants take the
/// same name-first signature as their aggregate twins.
const OBS_CALLS: [&str; 7] = [
    "counter_add",
    "gauge_set",
    "histogram_record",
    "span",
    "timeline_counter_add",
    "timeline_gauge_set",
    "timeline_histogram_record",
];

/// L10: workspace-level pass replacing the CI obs-vocabulary grep. Parses
/// the declared constants out of `crates/obs/src/names.rs` (idents and
/// string values), then checks every `span!` / counter / gauge / histogram
/// call site: `names::IDENT` must be a declared constant, and any ad-hoc
/// dotted string literal must match a declared value. Returns nothing when
/// the workspace has no names.rs (single-file fixture runs).
pub fn lint_obs_names(files: &[(String, FileScan)]) -> Vec<Diagnostic> {
    let Some((_, names_scan)) = files.iter().find(|(p, _)| p.ends_with("obs/src/names.rs")) else {
        return Vec::new();
    };
    let (declared_idents, declared_values) = declared_obs_names(names_scan);
    let mut out = Vec::new();
    for (path, scan) in files {
        if path.ends_with("obs/src/names.rs") {
            continue;
        }
        let code = &scan.code;
        for i in 0..code.len() {
            let t = &code[i];
            if !OBS_CALLS.iter().any(|c| t.is_ident(c)) {
                continue;
            }
            // `span` is a macro (`span!(...)`); the metric fns are plain
            // calls. Find the argument-list `(` either way.
            let open = if code.get(i + 1).is_some_and(|p| p.is_punct('(')) {
                i + 1
            } else if t.is_ident("span")
                && code.get(i + 1).is_some_and(|p| p.is_punct('!'))
                && code.get(i + 2).is_some_and(|p| p.is_punct('('))
            {
                i + 2
            } else {
                continue;
            };
            let close = paren_close(code, open);
            for j in (open + 1)..close.min(code.len()) {
                let a = &code[j];
                if a.kind == crate::lexer::TokenKind::Str {
                    let value = unquote(&a.text);
                    if value.contains('.') && !declared_values.contains(value) {
                        emit(
                            &mut out,
                            scan,
                            "undeclared-obs-name",
                            path,
                            a.line,
                            format!(
                                "obs name {:?} is not declared in crates/obs/src/names.rs; \
                                 add a constant there and use it",
                                value
                            ),
                        );
                    }
                } else if a.is_ident("names")
                    && code.get(j + 1).is_some_and(|p| p.is_punct(':'))
                    && code.get(j + 2).is_some_and(|p| p.is_punct(':'))
                    && code
                        .get(j + 3)
                        .is_some_and(|p| p.kind == crate::lexer::TokenKind::Ident)
                    && !declared_idents.contains(&code[j + 3].text)
                {
                    emit(
                        &mut out,
                        scan,
                        "undeclared-obs-name",
                        path,
                        a.line,
                        format!(
                            "`names::{}` is not declared in crates/obs/src/names.rs",
                            code[j + 3].text
                        ),
                    );
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    out
}

/// `pub const IDENT: &str = "value";` pairs from the names registry.
fn declared_obs_names(scan: &FileScan) -> (BTreeSet<String>, BTreeSet<String>) {
    let code = &scan.code;
    let mut idents = BTreeSet::new();
    let mut values = BTreeSet::new();
    for i in 0..code.len() {
        if !code[i].is_ident("const") {
            continue;
        }
        let Some(name) = code
            .get(i + 1)
            .filter(|t| t.kind == crate::lexer::TokenKind::Ident)
        else {
            continue;
        };
        // Walk to the `;`, grabbing the initializer string literal.
        let mut j = i + 2;
        while j < code.len() && !code[j].is_punct(';') {
            if code[j].kind == crate::lexer::TokenKind::Str {
                idents.insert(name.text.clone());
                values.insert(unquote(&code[j].text).to_string());
                break;
            }
            j += 1;
        }
    }
    (idents, values)
}

/// Index of the `)` matching the `(` at `open` (or `code.len()`).
fn paren_close(code: &[crate::lexer::Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len()
}

/// Strips the quotes (and any raw-string fence) off a string literal's
/// source text.
fn unquote(lit: &str) -> &str {
    let s = lit
        .trim_start_matches(['b', 'r'])
        .trim_start_matches('#')
        .trim_start_matches('#');
    let s = s.strip_prefix('"').unwrap_or(s);
    s.trim_end_matches('#').strip_suffix('"').unwrap_or(s)
}

/// Walks the expression backwards from the `.` at `dot_idx` until a
/// statement boundary (`;`, `{`, `}`, `=`) and returns the first ident in
/// [`FS_NAMES`] — i.e. whether this `.unwrap()`/`.expect()` consumes a
/// filesystem call's result. Bounded and shallow like every other pass;
/// false positives go to the baseline or inline suppressions.
fn fs_chain_root(code: &[crate::lexer::Token], dot_idx: usize) -> Option<String> {
    let mut j = dot_idx;
    let mut steps = 0;
    while j > 0 && steps < 40 {
        j -= 1;
        steps += 1;
        let t = &code[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct('=') {
            return None;
        }
        if t.kind == crate::lexer::TokenKind::Ident && FS_NAMES.contains(&t.text.as_str()) {
            return Some(t.text.clone());
        }
    }
    None
}

/// Walks a receiver chain backwards from the `.` at `dot_idx` (idents,
/// `.`, `(`, `)`, `&`, `self`) and returns the first chain ident found in
/// `names` — i.e. whether this method call is rooted at a hash container.
pub(crate) fn chain_mentions(
    names: &BTreeSet<String>,
    code: &[crate::lexer::Token],
    dot_idx: usize,
) -> Option<String> {
    let mut j = dot_idx;
    let mut steps = 0;
    while j > 0 && steps < 16 {
        j -= 1;
        steps += 1;
        let t = &code[j];
        if t.kind == crate::lexer::TokenKind::Ident {
            if names.contains(&t.text) {
                return Some(t.text.clone());
            }
            continue;
        }
        if !(t.is_punct('.') || t.is_punct('(') || t.is_punct(')') || t.is_punct('&')) {
            return None;
        }
    }
    None
}

/// If the `for` at `for_idx` iterates one of `names`, returns the iterated
/// name's index and the body's `{` index.
fn for_over(
    names: &BTreeSet<String>,
    code: &[crate::lexer::Token],
    for_idx: usize,
) -> Option<(usize, usize)> {
    let mut j = for_idx + 1;
    // Find `in` within the pattern (bounded; patterns are short).
    let mut in_idx = None;
    while j < code.len().min(for_idx + 16) {
        if code[j].is_ident("in") {
            in_idx = Some(j);
            break;
        }
        if code[j].is_punct('{') {
            return None;
        }
        j += 1;
    }
    let mut j = in_idx? + 1;
    while j < code.len() && (code[j].is_punct('&') || code[j].is_ident("mut")) {
        j += 1;
    }
    let name_idx = j;
    if code.get(j).is_none_or(|t| !names.contains(&t.text)) {
        return None;
    }
    // The iterated expression must be the bare name (optionally a method
    // chain is handled by the method-call pattern in L2 instead).
    j += 1;
    if code.get(j).is_some_and(|t| t.is_punct('{')) {
        return Some((name_idx, j));
    }
    None
}

/// Whether any `.sort…(` call appears earlier in the function enclosing
/// token `idx` — the evidence that the fold order was pinned.
fn sorted_earlier_in_fn(scan: &FileScan, idx: usize) -> bool {
    let line = scan.code[idx].line;
    let Some(f) = scan.enclosing_fn(line) else {
        return false;
    };
    scan.code
        .iter()
        .take(idx)
        .filter(|t| (f.start_line..=f.end_line).contains(&t.line))
        .any(|t| t.kind == crate::lexer::TokenKind::Ident && t.text.starts_with("sort"))
}
