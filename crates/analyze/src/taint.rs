//! Interprocedural lints over the workspace call graph (L7–L9).
//!
//! These three passes are why [`crate::graph`] exists. Each is a small
//! fixpoint (or per-node protocol check) over [`CallGraph`]:
//!
//! * **L7 `panic-reachability`** — a function *reaches a panic* if its own
//!   body has a panic source ([`FnNode::panic_sources`]) or any resolved,
//!   non-`catch_unwind` callee reaches one. Hot-path entry points
//!   ([`ENTRY_POINTS`]) that reach a panic are flagged, with the shortest
//!   offending call chain in the message so the fix site is obvious.
//! * **L8 `determinism-taint`** — a function is *tainted* if it has a
//!   nondeterminism source ([`FnNode::taint_sources`]) or calls a tainted
//!   function, unless it is a sanctioned sanitizer (the `obs::Clock` choke
//!   point, or a body that pins order by sorting / BTree conversion).
//!   Tainted report/serialization sinks are flagged with the chain back to
//!   the source.
//! * **L9 `journal-before-commit`** — in any non-test function that touches
//!   the `IngestHooks` protocol and commits to the store, the WAL journal
//!   hook (`on_accepted_frame`) must appear lexically before the first
//!   commit *and* its `Result` must be checked (guarded by `if`/`match` or
//!   consumed with `?`/`.is_err()`/…), machine-checking DESIGN.md §10's
//!   "WAL ⊇ store" crash-safety invariant.
//!
//! All propagation walks nodes in index order (which is `(file, line)`
//! order) and callee lists sorted ascending, so findings are byte-stable
//! across runs and input file orderings.

use crate::graph::{CallGraph, FnNode, Resolution};
use crate::lints::{lint_info, Diagnostic};
use crate::scan::FileScan;
use std::collections::BTreeMap;

/// The hot-path entry points whose panic-freedom the paper's robustness
/// story depends on: assessment pipeline, parallel engine, supervisor,
/// collector accept/backfill, streaming engine, crash recovery, and the
/// diagnosis stage (it runs inside the streaming completion path, so a
/// panic there stalls the engine exactly like an assessment panic would),
/// and the self-monitor (its health verdict is only trustworthy if
/// reading the pipeline's own telemetry can never panic).
/// `(file, fn)` pairs; entries missing from the workspace are simply
/// skipped, so fixture workspaces can exercise the pass with their own
/// names.
pub const ENTRY_POINTS: [(&str, &str); 22] = [
    ("crates/core/src/pipeline.rs", "assess_change"),
    ("crates/core/src/pipeline.rs", "assess_change_with"),
    ("crates/core/src/pipeline.rs", "assess_key"),
    ("crates/core/src/pipeline.rs", "assess_keys"),
    ("crates/core/src/parallel.rs", "assess_work_units"),
    ("crates/core/src/parallel.rs", "merge"),
    ("crates/core/src/supervise.rs", "supervise_change"),
    ("crates/sim/src/collector.rs", "classify"),
    ("crates/sim/src/collector.rs", "commit"),
    ("crates/sim/src/collector.rs", "ingest"),
    ("crates/sim/src/collector.rs", "finish"),
    ("crates/sim/src/store.rs", "backfill"),
    ("crates/sim/src/agent.rs", "replay_durable"),
    ("crates/resilience/src/recover.rs", "recover"),
    ("crates/core/src/stream.rs", "offer"),
    ("crates/core/src/stream.rs", "tick"),
    ("crates/core/src/stream.rs", "track_change"),
    ("crates/timeseries/src/ring.rs", "push"),
    ("crates/core/src/diagnose.rs", "diagnose_assessment"),
    ("crates/diag/src/lib.rs", "diagnose_change"),
    ("crates/core/src/selfmon.rs", "run_selfmon"),
    ("crates/core/src/selfmon.rs", "timeline_series"),
];

/// Runs L7, L8, and L9 over the graph. `scans` must cover every file the
/// graph was built from (for suppression/test filtering at finding sites).
pub fn run_graph_lints(graph: &CallGraph, scans: &[(String, FileScan)]) -> Vec<Diagnostic> {
    let by_file: BTreeMap<&str, &FileScan> = scans.iter().map(|(p, s)| (p.as_str(), s)).collect();
    let mut out = Vec::new();
    lint_panic_reachability(graph, &by_file, &mut out);
    lint_determinism_taint(graph, &by_file, &mut out);
    lint_journal_before_commit(graph, &by_file, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    out
}

/// Emit with the same test-region/suppression discipline as the per-file
/// lints, keyed on the finding line in its own file.
fn emit_at(
    out: &mut Vec<Diagnostic>,
    by_file: &BTreeMap<&str, &FileScan>,
    id: &'static str,
    file: &str,
    line: u32,
    context: &str,
    message: String,
) {
    if let Some(scan) = by_file.get(file) {
        if scan.in_test(line) || scan.suppressed(line, id) {
            return;
        }
    }
    let info = lint_info(id).expect("lint id registered");
    out.push(Diagnostic {
        lint: id,
        severity: info.default_severity,
        file: file.to_string(),
        line,
        context: context.to_string(),
        message,
    });
}

/// Resolved, panic-propagating callees of node `i` (caught edges excluded),
/// sorted ascending.
fn propagating_callees(g: &CallGraph, i: usize) -> Vec<usize> {
    let mut out: Vec<usize> = g.nodes[i]
        .calls
        .iter()
        .filter(|c| !c.in_catch_unwind)
        .filter_map(|c| match c.resolution {
            Resolution::Resolved(j) => Some(j),
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Backward fixpoint: `flagged[i]` starts at `seed(i)`; a node becomes
/// flagged when any of `callees(i)` is flagged (unless `barrier(i)`).
/// Deterministic: the worklist is a simple index sweep to fixpoint.
fn propagate(
    g: &CallGraph,
    seed: impl Fn(&FnNode) -> bool,
    barrier: impl Fn(&FnNode) -> bool,
    callees: impl Fn(&CallGraph, usize) -> Vec<usize>,
) -> Vec<bool> {
    let n = g.nodes.len();
    let mut flagged: Vec<bool> = (0..n).map(|i| seed(&g.nodes[i])).collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            if flagged[i] || barrier(&g.nodes[i]) {
                continue;
            }
            if callees(g, i).iter().any(|&j| flagged[j]) {
                flagged[i] = true;
                changed = true;
            }
        }
        if !changed {
            return flagged;
        }
    }
}

/// Shortest path (BFS, deterministic neighbor order) from `start` to any
/// node satisfying `is_target`, returned as node indices including both
/// ends. `start` itself may be the target.
fn shortest_chain(
    g: &CallGraph,
    start: usize,
    is_target: impl Fn(usize) -> bool,
    callees: impl Fn(&CallGraph, usize) -> Vec<usize>,
) -> Option<Vec<usize>> {
    if is_target(start) {
        return Some(vec![start]);
    }
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(i) = queue.pop_front() {
        for j in callees(g, i) {
            if j == start || parent.contains_key(&j) {
                continue;
            }
            parent.insert(j, i);
            if is_target(j) {
                let mut chain = vec![j];
                let mut cur = j;
                while cur != start {
                    cur = parent[&cur];
                    chain.push(cur);
                }
                chain.reverse();
                return Some(chain);
            }
            queue.push_back(j);
        }
    }
    None
}

fn chain_names(g: &CallGraph, chain: &[usize]) -> String {
    chain
        .iter()
        .map(|&i| g.nodes[i].name.as_str())
        .collect::<Vec<_>>()
        .join(" → ")
}

// ------------------------------------------------------------------- L7 --

fn lint_panic_reachability(
    g: &CallGraph,
    by_file: &BTreeMap<&str, &FileScan>,
    out: &mut Vec<Diagnostic>,
) {
    let reaches = propagate(
        g,
        |n| !n.in_test && !n.panic_sources.is_empty(),
        |n| n.in_test,
        propagating_callees,
    );
    for (file, name) in ENTRY_POINTS {
        for (i, n) in g.nodes.iter().enumerate() {
            if n.file != file || n.name != name || !reaches[i] {
                continue;
            }
            let Some(chain) = shortest_chain(
                g,
                i,
                |j| !g.nodes[j].panic_sources.is_empty(),
                propagating_callees,
            ) else {
                continue;
            };
            let last = &g.nodes[*chain.last().expect("chain non-empty")];
            let src = &last.panic_sources[0];
            emit_at(
                out,
                by_file,
                "panic-reachability",
                file,
                n.start_line,
                &n.name,
                format!(
                    "hot-path entry `{}` can transitively panic: {} — {} at {}:{}; make the \
                     chain fallible or suppress the source with a note",
                    n.name,
                    chain_names(g, &chain),
                    src.what,
                    last.file,
                    src.line
                ),
            );
        }
    }
}

// ------------------------------------------------------------------- L8 --

/// Whether a node is a report/serialization sink: where nondeterminism
/// becomes user-visible bytes. Every `pub` fn in a `report.rs` counts
/// (private helpers there are interior plumbing — taint through them still
/// reaches the pub surface via the fixpoint), as does anything named like
/// a renderer/serializer.
fn is_sink(n: &FnNode) -> bool {
    let stem = n
        .file
        .rsplit('/')
        .next()
        .unwrap_or("")
        .trim_end_matches(".rs");
    (stem == "report" && n.is_pub)
        || n.name.starts_with("render")
        || n.name.starts_with("serialize")
        || n.name.starts_with("write_")
        || n.name.starts_with("export")
        || n.name == "to_json"
        || n.name == "human_summary"
}

fn taint_callees(g: &CallGraph, i: usize) -> Vec<usize> {
    let mut out: Vec<usize> = g.nodes[i]
        .calls
        .iter()
        .filter_map(|c| match c.resolution {
            Resolution::Resolved(j) => Some(j),
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn lint_determinism_taint(
    g: &CallGraph,
    by_file: &BTreeMap<&str, &FileScan>,
    out: &mut Vec<Diagnostic>,
) {
    let tainted = propagate(
        g,
        |n| !n.in_test && !n.sanitizer && !n.taint_sources.is_empty(),
        |n| n.in_test || n.sanitizer,
        taint_callees,
    );
    for (i, n) in g.nodes.iter().enumerate() {
        if !is_sink(n) || n.in_test || n.sanitizer || !tainted[i] {
            continue;
        }
        let Some(chain) = shortest_chain(
            g,
            i,
            |j| !g.nodes[j].taint_sources.is_empty() && !g.nodes[j].sanitizer,
            taint_callees,
        ) else {
            continue;
        };
        let last = &g.nodes[*chain.last().expect("chain non-empty")];
        let src = &last.taint_sources[0];
        emit_at(
            out,
            by_file,
            "determinism-taint",
            &n.file,
            n.start_line,
            &n.name,
            format!(
                "nondeterminism reaches sink `{}`: {} — {} at {}:{}; route through a \
                 sanitizer (obs::Clock, sort/BTree conversion) or suppress with a note",
                n.name,
                chain_names(g, &chain),
                src.what,
                last.file,
                src.line
            ),
        );
    }
}

// ------------------------------------------------------------------- L9 --

/// Tokens that may consume a journal call's `Result` right after the
/// closing paren.
const RESULT_CHECKS: [&str; 7] = [
    "is_err", "is_ok", "err", "ok", "map_err", "expect", "unwrap",
];

fn lint_journal_before_commit(
    g: &CallGraph,
    by_file: &BTreeMap<&str, &FileScan>,
    out: &mut Vec<Diagnostic>,
) {
    for n in &g.nodes {
        if n.in_test || !n.mentions_hooks {
            continue;
        }
        let commits: Vec<_> = n.calls.iter().filter(|c| c.name == "commit").collect();
        let Some(first_commit) = commits.iter().map(|c| c.tok).min() else {
            continue;
        };
        let commit_line = commits
            .iter()
            .find(|c| c.tok == first_commit)
            .map(|c| c.line)
            .unwrap_or(n.start_line);
        let journals: Vec<_> = n
            .calls
            .iter()
            .filter(|c| c.name == "on_accepted_frame")
            .collect();
        let before: Vec<_> = journals.iter().filter(|c| c.tok < first_commit).collect();
        if journals.is_empty() {
            emit_at(
                out,
                by_file,
                "journal-before-commit",
                &n.file,
                commit_line,
                &n.name,
                format!(
                    "`{}` commits to the store on an IngestHooks path without journaling \
                     (`on_accepted_frame`) first; a crash here loses the accepted frame",
                    n.name
                ),
            );
            continue;
        }
        if before.is_empty() {
            emit_at(
                out,
                by_file,
                "journal-before-commit",
                &n.file,
                commit_line,
                &n.name,
                format!(
                    "`{}` journals only *after* committing; the WAL must lexically precede \
                     the store commit so WAL ⊇ store holds at every crash point",
                    n.name
                ),
            );
            continue;
        }
        // Control-flow half: the journal call's Result must actually divert
        // the commit on error.
        let scan = by_file.get(n.file.as_str());
        let guarded = before
            .iter()
            .any(|c| scan.is_none_or(|s| journal_guarded(s, c.tok)));
        if !guarded {
            emit_at(
                out,
                by_file,
                "journal-before-commit",
                &n.file,
                commit_line,
                &n.name,
                format!(
                    "`{}` ignores the journal hook's Result before committing; check it \
                     (`?`, `if …is_err()`, `match`) so a failed WAL write blocks the commit",
                    n.name
                ),
            );
        }
    }
}

/// Whether the journal call at token `tok` has its `Result` consumed: a
/// `?` or a Result-inspecting method follows the closing paren, or the
/// call sits inside an `if`/`match`/`while` condition within the same
/// statement.
fn journal_guarded(scan: &FileScan, tok: usize) -> bool {
    let code = &scan.code;
    // Forward: find the call's `(`, skip to its `)`, look at what follows.
    let mut open = tok + 1;
    while open < code.len() && !code[open].is_punct('(') {
        open += 1;
    }
    let mut depth = 0usize;
    let mut close = open;
    while close < code.len() {
        if code[close].is_punct('(') {
            depth += 1;
        } else if code[close].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        close += 1;
    }
    if code.get(close + 1).is_some_and(|t| t.is_punct('?')) {
        return true;
    }
    if code.get(close + 1).is_some_and(|t| t.is_punct('.'))
        && code
            .get(close + 2)
            .is_some_and(|t| RESULT_CHECKS.iter().any(|m| t.is_ident(m)))
    {
        return true;
    }
    // Backward: `if` / `match` / `while` before the call in this statement.
    let mut j = tok;
    while j > 0 {
        j -= 1;
        let t = &code[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.is_ident("if") || t.is_ident("match") || t.is_ident("while") {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build;

    fn graph_of(files: &[(&str, &str)]) -> (CallGraph, Vec<(String, FileScan)>) {
        let scans: Vec<(String, FileScan)> = files
            .iter()
            .map(|(p, c)| (p.to_string(), FileScan::of(c)))
            .collect();
        (build(&scans), scans)
    }

    #[test]
    fn panic_reachability_walks_the_chain() {
        let (g, scans) = graph_of(&[
            (
                "crates/core/src/pipeline.rs",
                "pub fn assess_change() { step_one(); }\nfn step_one() { step_two(); }\n",
            ),
            (
                "crates/core/src/deep.rs",
                "pub fn step_two(v: Vec<u8>) { v.first().unwrap(); }\n",
            ),
        ]);
        let diags = run_graph_lints(&g, &scans);
        let l7: Vec<_> = diags
            .iter()
            .filter(|d| d.lint == "panic-reachability")
            .collect();
        assert_eq!(l7.len(), 1);
        assert_eq!(l7[0].context, "assess_change");
        assert!(
            l7[0]
                .message
                .contains("assess_change → step_one → step_two"),
            "chain missing: {}",
            l7[0].message
        );
        assert!(l7[0].message.contains("crates/core/src/deep.rs"));
    }

    #[test]
    fn catch_unwind_is_a_panic_barrier() {
        let (g, scans) = graph_of(&[(
            "crates/core/src/supervise.rs",
            "pub fn supervise_change() { let _ = catch_unwind(|| risky()); }\n\
             fn risky(v: Vec<u8>) { v.first().unwrap(); }\n",
        )]);
        let diags = run_graph_lints(&g, &scans);
        assert!(
            !diags.iter().any(|d| d.lint == "panic-reachability"),
            "caught call must not propagate: {diags:?}"
        );
    }

    #[test]
    fn taint_flows_to_sink_unless_sanitized() {
        let (g, scans) = graph_of(&[(
            "crates/core/src/report.rs",
            "pub fn render_report() -> String { let t = stamp(); format(t) }\n\
             fn stamp() -> u64 { let t = Instant::now(); 0 }\n\
             fn format(t: u64) -> String { String::new() }\n",
        )]);
        let diags = run_graph_lints(&g, &scans);
        let l8: Vec<_> = diags
            .iter()
            .filter(|d| d.lint == "determinism-taint")
            .collect();
        assert_eq!(l8.len(), 1);
        assert_eq!(l8[0].context, "render_report");
        assert!(l8[0].message.contains("Instant::now()"));
    }

    #[test]
    fn sanitizer_stops_taint() {
        let (g, scans) = graph_of(&[(
            "crates/core/src/report.rs",
            "pub fn render_report() -> String { let v = gather(); String::new() }\n\
             fn gather() -> Vec<u8> { let mut v = tainted(); v.sort(); v }\n\
             fn tainted() -> Vec<u8> { let t = Instant::now(); Vec::new() }\n",
        )]);
        let diags = run_graph_lints(&g, &scans);
        assert!(
            !diags.iter().any(|d| d.lint == "determinism-taint"),
            "sorted conversion must sanitize: {diags:?}"
        );
    }

    #[test]
    fn journal_before_commit_protocol() {
        let good = "pub fn drive(hooks: &mut H) {\n\
                    if hooks.on_accepted_frame().is_err() { return; }\n\
                    store.commit();\n}\n";
        let missing = "pub fn drive(hooks: &mut H) {\n  store.commit();\n}\n";
        let after = "pub fn drive(hooks: &mut H) {\n  store.commit();\n\
                     if hooks.on_accepted_frame().is_err() { return; }\n}\n";
        let unchecked = "pub fn drive(hooks: &mut H) {\n  hooks.on_accepted_frame();\n\
                         store.commit();\n}\n";
        for (src, expect) in [
            (good, None),
            (missing, Some("without journaling")),
            (after, Some("only *after*")),
            (unchecked, Some("ignores the journal")),
        ] {
            let (g, scans) = graph_of(&[("crates/sim/src/agent.rs", src)]);
            let diags = run_graph_lints(&g, &scans);
            let l9: Vec<_> = diags
                .iter()
                .filter(|d| d.lint == "journal-before-commit")
                .collect();
            match expect {
                None => assert!(l9.is_empty(), "false positive on: {src}\n{l9:?}"),
                Some(frag) => {
                    assert_eq!(l9.len(), 1, "missing finding on: {src}");
                    assert!(l9[0].message.contains(frag), "got: {}", l9[0].message);
                }
            }
        }
    }

    #[test]
    fn question_mark_guards_the_journal() {
        let (g, scans) = graph_of(&[(
            "crates/sim/src/agent.rs",
            "pub fn drive(hooks: &mut H) -> R<()> {\n\
             hooks.on_accepted_frame()?;\n  store.commit();\n  Ok(())\n}\n",
        )]);
        let diags = run_graph_lints(&g, &scans);
        assert!(
            !diags.iter().any(|d| d.lint == "journal-before-commit"),
            "`?` must count as guarded: {diags:?}"
        );
    }
}
