//! Golden-file tests: every fixture under `tests/fixtures/` is analyzed
//! under the virtual workspace path declared on its first line
//! (`//@path crates/...`), and the JSON diagnostics must match the
//! checked-in `<name>.expected.json` byte for byte. Fixtures whose first
//! line is `//@file crates/...` are multi-file bundles: each `//@file`
//! directive starts a new virtual file, and the bundle goes through the
//! full `analyze_sources` path (call graph, interprocedural lints,
//! obs-name vocabulary) instead of the single-file lint set. The lexer
//! edge-case fixture additionally has a full token dump golden
//! (`lexer_edges.tokens.txt`).
//!
//! Regenerate expectations after an intentional change with:
//! `FUNNEL_LINT_BLESS=1 cargo test -p funnel-analyze --test golden`
//! and review the diff like any other code change.

use funnel_analyze::lexer::lex;
use funnel_analyze::{analyze_file, analyze_sources, render_json, SeverityOverrides};
use std::fs;
use std::path::{Path, PathBuf};

/// Splits a `//@file` bundle into its virtual files. Lines before the
/// first directive are ignored (there are none in well-formed bundles).
fn split_bundle(src: &str) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = Vec::new();
    for line in src.lines() {
        if let Some(path) = line.strip_prefix("//@file ") {
            files.push((path.trim().to_string(), String::new()));
        } else if let Some((_, body)) = files.last_mut() {
            body.push_str(line);
            body.push('\n');
        }
    }
    assert!(!files.is_empty(), "bundle has no `//@file` directives");
    files
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn bless() -> bool {
    std::env::var_os("FUNNEL_LINT_BLESS").is_some()
}

/// Compare-or-bless one golden file.
fn check_golden(golden: &Path, got: &str, what: &str) {
    if bless() {
        fs::write(golden, got).unwrap_or_else(|e| panic!("bless {}: {e}", golden.display()));
        return;
    }
    let expected = fs::read_to_string(golden).unwrap_or_else(|e| {
        panic!(
            "{what}: cannot read {} ({e}); run with FUNNEL_LINT_BLESS=1 to create it",
            golden.display()
        )
    });
    assert_eq!(
        got.trim_end(),
        expected.trim_end(),
        "{what}: golden mismatch for {} — if intentional, re-bless and review the diff",
        golden.display()
    );
}

#[test]
fn fixtures_match_expected_json() {
    let dir = fixtures_dir();
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("fixtures dir exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 22,
        "expected the full fixture set (fire + clean per lint), found {}",
        fixtures.len()
    );

    let mut firing = 0usize;
    let mut clean = 0usize;
    for fixture in &fixtures {
        let src = fs::read_to_string(fixture).expect("fixture readable");
        let first = src.lines().next().unwrap_or("");
        let diags = if first.starts_with("//@file ") {
            analyze_sources(&split_bundle(&src), &SeverityOverrides::default()).diagnostics
        } else {
            let vpath = first
                .strip_prefix("//@path ")
                .unwrap_or_else(|| {
                    panic!(
                        "{}: first line must be `//@path …` or `//@file …`",
                        fixture.display()
                    )
                })
                .trim()
                .to_string();
            analyze_file(&vpath, &src, &SeverityOverrides::default())
        };
        let got = render_json(&diags);
        let golden = fixture.with_extension("expected.json");
        check_golden(&golden, &got, &format!("fixture {}", fixture.display()));
        if diags.is_empty() {
            clean += 1;
        } else {
            firing += 1;
        }
    }
    // Every lint has both a firing and a non-firing fixture; if this
    // drifts the fixture set lost a case.
    assert!(firing >= 11, "only {firing} firing fixtures");
    assert!(clean >= 10, "only {clean} clean fixtures");
}

/// Each lint id must appear in at least one firing fixture's expected
/// output — proves per-lint coverage rather than aggregate counts.
#[test]
fn every_lint_has_a_firing_fixture() {
    let dir = fixtures_dir();
    let mut all = String::new();
    for entry in fs::read_dir(&dir).expect("fixtures dir exists") {
        let p = entry.expect("entry").path();
        if p.extension().is_some_and(|e| e == "json") {
            all.push_str(&fs::read_to_string(&p).expect("expected json readable"));
        }
    }
    for lint in &funnel_analyze::lints::REGISTRY {
        assert!(
            all.contains(&format!("\"lint\":\"{}\"", lint.id)),
            "no firing fixture covers {}",
            lint.id
        );
    }
}

#[test]
fn lexer_token_dump_matches_golden() {
    let fixture = fixtures_dir().join("lexer_edges.rs");
    let src = fs::read_to_string(&fixture).expect("fixture readable");
    let mut dump = String::new();
    for t in lex(&src) {
        dump.push_str(&format!("{:>3} {:?} {}\n", t.line, t.kind, escape(&t.text)));
    }
    check_golden(
        &fixtures_dir().join("lexer_edges.tokens.txt"),
        &dump,
        "lexer token dump",
    );
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}
