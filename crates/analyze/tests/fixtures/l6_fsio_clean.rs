//@path crates/resilience/src/segments.rs
use std::fs;

fn load(dir: &std::path::Path) -> std::io::Result<Vec<u8>> {
    fs::read(dir.join("wal-00000001.seg"))
}

fn heal(dir: &std::path::Path) -> std::io::Result<()> {
    // Tolerated failure, handled explicitly rather than unwrapped.
    if fs::remove_file(dir.join("torn.seg")).is_err() {
        fs::create_dir_all(dir)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use std::fs;

    #[test]
    fn tests_may_unwrap_io() {
        let contents = fs::read_to_string("fixture.txt").unwrap();
        assert!(contents.is_empty());
    }
}
