//@path crates/resilience/src/segments.rs
use std::fs;
use std::fs::File;

fn load(dir: &std::path::Path) -> Vec<u8> {
    let raw = fs::read(dir.join("wal-00000001.seg")).unwrap();
    let len = fs::metadata(dir.join("wal-00000001.seg")).expect("stat").len();
    let file = File::open(dir.join("wal-00000002.seg")).unwrap();
    drop(file);
    assert_eq!(raw.len() as u64, len);
    raw
}

fn heal(dir: &std::path::Path) {
    fs::remove_file(dir.join("torn.seg")).unwrap();
}
