//@file crates/sim/src/collector.rs
pub fn ingest_frame(hooks: &mut dyn IngestHooks, store: &mut Store, frame: &[u8]) {
    store.commit(frame);
    let _ = hooks.on_accepted_frame(frame);
}
