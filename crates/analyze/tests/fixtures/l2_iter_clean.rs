//@path crates/core/src/report.rs
use std::collections::{BTreeMap, HashMap};

fn render_totals(by_kpi: &BTreeMap<u32, f64>, cache: &mut HashMap<u32, f64>) -> String {
    let mut out = String::new();
    // BTreeMap iteration is ordered — no finding.
    for (k, v) in by_kpi {
        out.push_str(&format!("{k}: {v}\n"));
    }
    // Point lookups on a HashMap are fine; only iteration is flagged.
    cache.insert(7, 1.0);
    if let Some(v) = cache.get(&7) {
        out.push_str(&format!("{v}\n"));
    }
    out
}
