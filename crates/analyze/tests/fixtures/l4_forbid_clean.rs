//@path crates/newcrate/src/lib.rs
//! A crate root with the guard in place.

#![forbid(unsafe_code)]

pub fn noop() {}
