//@path crates/core/src/cache.rs
pub fn freshest(values: &[u64]) -> u64 {
    // funnel-lint: allow(float-accumulation-order): max is order-independent
    values.iter().copied().max().unwrap_or(0)
}
