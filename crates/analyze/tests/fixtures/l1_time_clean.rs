//@path crates/eval/src/timing.rs
// Exempt file: the one place outside bench allowed to read the clock.
use std::time::Instant;

fn measure() -> u64 {
    let started = Instant::now();
    started.elapsed().as_millis() as u64
}

#[cfg(test)]
mod tests {
    // Test code may read the clock anywhere.
    fn in_test() {
        let _ = std::time::Instant::now();
    }
}
