//@path crates/core/src/quality.rs
//! Lexer stress: panic-looking text hidden inside literals and comments
//! must produce no findings; the one real call after them must be found
//! on the right line.

/* outer /* nested .unwrap() panic!("x") */ still comment Instant::now() */
fn docs() -> &'static str {
    // .unwrap() in a line comment is inert; so is SystemTime.
    let plain = "calls .unwrap() and panic!(\"quoted\") inside a string";
    let raw = r#"raw string with .expect("x") and "quotes" and Instant::now()"#;
    let fenced = r##"fence two: "# still inside "## ;
    let ch = '"';
    let esc = '\'';
    let byte = b'x';
    let bytes = b"panic!()";
    let _ = (plain, raw, fenced, ch, esc, byte, bytes);
    "ok"
}

fn real_finding(opt: Option<u32>) -> u32 {
    opt.unwrap()
}
