//@file crates/core/src/report.rs
pub fn render_summary(rows: &[u32]) -> String {
    let tag = worker_tag();
    format!("{tag}:{}", rows.len())
}
//@file crates/core/src/ident.rs
pub fn worker_tag() -> u64 {
    let _id = std::thread::current().id();
    0
}
