//@path crates/sim/src/agent.rs
use std::collections::HashMap;

fn ingest(frames: &[u8], index: &HashMap<u32, u32>) -> u32 {
    let first = frames.first().unwrap();
    let decoded = decode(*first).expect("frame decodes");
    if decoded > 9 {
        panic!("implausible frame");
    }
    if decoded > 8 {
        unreachable!();
    }
    index[&(decoded as u32)]
}

fn decode(b: u8) -> Option<u8> {
    Some(b)
}
