//@file crates/core/src/pipeline.rs
pub fn assess_change() -> u32 {
    std::panic::catch_unwind(|| read_frame()).unwrap_or(0)
}
//@file crates/resilience/src/frame.rs
pub fn read_frame() -> u32 {
    decode().unwrap()
}
fn decode() -> Option<u32> {
    None
}
