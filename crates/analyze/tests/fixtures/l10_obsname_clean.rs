//@file crates/obs/src/names.rs
pub const PIPELINE_ASSESS: &str = "pipeline.assess";
//@file crates/core/src/metrics.rs
use funnel_obs::names;
pub fn record(reg: &Registry) {
    reg.counter_add(names::PIPELINE_ASSESS, 1);
    reg.histogram_record("latency", 3);
    funnel_obs::timeline_counter_add(names::PIPELINE_ASSESS, 7, 1);
    funnel_obs::timeline_histogram_record("pipeline.assess", 7, 3);
}
