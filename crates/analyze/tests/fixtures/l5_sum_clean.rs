//@path crates/did/src/groups.rs
use std::collections::HashMap;

fn aggregate(cells: &mut Vec<(u32, f64)>, weights: &HashMap<u32, f64>) -> f64 {
    // Sorting first pins the fold order — no finding.
    cells.sort_by_key(|(id, _)| *id);
    let base = cells.iter().map(|(_, v)| v).sum::<f64>();
    // Collect-and-sort before folding the hash container.
    let mut ws: Vec<f64> = Vec::new();
    for id in 0..8u32 {
        if let Some(w) = weights.get(&id) {
            ws.push(*w);
        }
    }
    // funnel-lint: allow(float-accumulation-order): ws is built in id order above
    let extra = ws.iter().sum::<f64>();
    base + extra
}
