//@file crates/obs/src/names.rs
pub const PIPELINE_ASSESS: &str = "pipeline.assess";
//@file crates/core/src/metrics.rs
pub fn record(reg: &Registry) {
    reg.counter_add("pipeline.stale.reads", 1);
    reg.gauge_set(names::QUEUE_DEPTH, 0);
}
