//@file crates/obs/src/names.rs
pub const PIPELINE_ASSESS: &str = "pipeline.assess";
//@file crates/core/src/metrics.rs
pub fn record(reg: &Registry) {
    reg.counter_add("pipeline.stale.reads", 1);
    reg.gauge_set(names::QUEUE_DEPTH, 0);
}
//@file crates/core/src/timeline_use.rs
pub fn tick() {
    funnel_obs::timeline_counter_add("stream.bogus.ticks", 7, 1);
    funnel_obs::timeline_gauge_set(names::BOGUS_DEPTH, 7, 2);
}
