//@path crates/sim/src/agent.rs
use std::collections::HashMap;

fn ingest(frames: &[u8], index: &HashMap<u32, u32>) -> Option<u32> {
    // Fallible handling: quarantine-or-skip, never panic.
    let first = frames.first()?;
    let decoded = decode(*first)?;
    // funnel-lint: allow(panic-in-hot-path): bound is checked two lines up
    let cell = index.get(&(decoded as u32)).copied().unwrap_or(0);
    Some(cell)
}

fn decode(b: u8) -> Option<u8> {
    Some(b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Vec<u8> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
        if v.len() > 1 {
            panic!("impossible");
        }
    }
}
