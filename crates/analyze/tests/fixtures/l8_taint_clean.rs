//@file crates/core/src/report.rs
pub fn render_summary(rows: &[u32]) -> String {
    let tags = gather_tags();
    format!("{}:{}", tags.len(), rows.len())
}
//@file crates/core/src/ident.rs
pub fn gather_tags() -> Vec<u64> {
    let mut v = vec![worker_tag()];
    v.sort();
    v
}
pub fn worker_tag() -> u64 {
    let _id = std::thread::current().id();
    0
}
