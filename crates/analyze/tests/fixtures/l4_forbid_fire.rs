//@path crates/newcrate/src/lib.rs
//! A crate root that forgot the unsafe guard.

pub fn noop() {}
