//@path crates/core/src/report.rs
use std::collections::HashMap;

fn render_totals(by_kpi: &HashMap<u32, f64>) -> String {
    let mut out = String::new();
    for (k, v) in by_kpi {
        out.push_str(&format!("{k}: {v}\n"));
    }
    for k in by_kpi.keys() {
        out.push_str(&format!("{k}\n"));
    }
    out
}
