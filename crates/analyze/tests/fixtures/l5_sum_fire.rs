//@path crates/did/src/groups.rs
use std::collections::HashMap;

fn aggregate(values: &[f64], weights: &HashMap<u32, f64>) -> f64 {
    let base = values.iter().sum::<f64>();
    let mut total = 0.0;
    for w in weights {
        total += *w.1;
    }
    base + total
}
