//@file crates/sim/src/collector.rs
pub fn ingest_frame(hooks: &mut dyn IngestHooks, store: &mut Store, frame: &[u8]) {
    if hooks.on_accepted_frame(frame).is_err() {
        return;
    }
    store.commit(frame);
}
