//@path crates/did/src/estimator.rs
use std::time::{Instant, SystemTime};

fn score_window() -> u64 {
    let started = Instant::now();
    let _wall = SystemTime::now();
    started.elapsed().as_millis() as u64
}
