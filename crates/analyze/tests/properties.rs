//! Property tests for the analyzer front end and for whole-analysis
//! determinism.
//!
//! The lexer and scanner sit in front of every lint, so they must be
//! *total*: any byte soup — valid Rust or not — lexes and scans without
//! panicking, and every span they report stays inside the input. The
//! second half checks the ISSUE-level determinism contract end to end:
//! analyzing the same virtual files in any order yields byte-identical
//! call-graph dumps and findings.

use funnel_analyze::lexer::lex;
use funnel_analyze::scan::FileScan;
use funnel_analyze::{analyze_sources, render_json, SeverityOverrides};
use proptest::prelude::*;

/// Shared invariant check: lexing and scanning complete (no panic) and all
/// reported positions are in-bounds for the source.
fn assert_front_end_invariants(src: &str) {
    let lines = src.split('\n').count() as u32;
    let tokens = lex(src);
    for t in &tokens {
        assert!(!t.text.is_empty(), "empty token at line {}", t.line);
        assert!(
            (1..=lines.max(1)).contains(&t.line),
            "token line {} out of 1..={} for {:?}",
            t.line,
            lines.max(1),
            t.text
        );
    }
    let scan = FileScan::of(src);
    for f in &scan.fns {
        assert!(f.start_line <= f.end_line, "inverted fn span in {}", f.name);
        assert!(f.end_line <= lines.max(1), "fn {} ends past EOF", f.name);
        assert!(f.fn_tok < scan.code.len(), "fn_tok out of bounds");
        assert!(f.body_open <= f.body_close, "inverted body span");
        assert!(f.body_close <= scan.code.len(), "body_close out of bounds");
    }
    // Query surface is total too.
    for line in 0..=lines.max(1) {
        let _ = scan.in_test(line);
        let _ = scan.suppressed(line, "panic-in-hot-path");
    }
}

/// Rust-flavored fragments: dense in the constructs the scanner tracks
/// (fn items, impl blocks, attributes, strings, comments, suppressions),
/// including deliberately unbalanced ones.
const FRAGMENTS: [&str; 24] = [
    "fn ",
    "pub fn f",
    "impl Collector { ",
    "trait Hooks { ",
    "}",
    "{",
    "(",
    ")",
    "#[cfg(test)]\n",
    "#[test]\nfn t() {}\n",
    "\"a string ) } fn \"",
    "r#\"raw \" inside\"#",
    "'c'",
    "'static ",
    "// funnel-lint: allow(panic-in-hot-path)\n",
    "// line comment fn fake() {\n",
    "/* block comment {",
    "*/",
    ".unwrap()",
    "x[i]",
    "::",
    "let x = 1;\n",
    "mod tests {\n",
    "\u{1F980}",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_and_scanner_are_total_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u16..256, 0..300),
    ) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let src = String::from_utf8_lossy(&raw).into_owned();
        assert_front_end_invariants(&src);
    }

    #[test]
    fn lexer_and_scanner_are_total_on_rustish_soup(
        picks in prop::collection::vec(0usize..24, 0..120),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        assert_front_end_invariants(&src);
    }

    #[test]
    fn analysis_is_independent_of_file_order(rotation in 0usize..6, swap in 0usize..5) {
        let mut files: Vec<(String, String)> = vec![
            ("crates/core/src/pipeline.rs", "pub fn assess_change() -> u32 { helper() }\n"),
            ("crates/core/src/report.rs", "pub fn render_totals() -> String { stamp() }\n"),
            ("crates/core/src/util.rs", "pub fn helper() -> u32 { inner().unwrap() }\nfn inner() -> Option<u32> { None }\n"),
            ("crates/did/src/stamp.rs", "pub fn stamp() -> String { let _t = std::time::Instant::now(); String::new() }\n"),
            ("crates/sim/src/collector.rs", "pub fn ingest(hooks: &mut H, store: &mut S) { store.commit(); let _ = hooks.on_accepted_frame(); }\n"),
            ("crates/obs/src/names.rs", "pub const ASSESS: &str = \"pipeline.assess\";\n"),
        ]
        .into_iter()
        .map(|(p, c)| (p.to_string(), c.to_string()))
        .collect();

        let overrides = SeverityOverrides::default();
        let canonical = analyze_sources(&files, &overrides);
        let canonical_dump = canonical.graph.dump();
        let canonical_json = render_json(&canonical.diagnostics);
        // The fixture workspace must actually exercise the graph lints,
        // otherwise order-independence is vacuous.
        assert!(!canonical.diagnostics.is_empty(), "fixture should fire");

        files.rotate_left(rotation);
        let other = (swap + 2) % files.len();
        files.swap(swap, other);
        let permuted = analyze_sources(&files, &overrides);
        prop_assert_eq!(&permuted.graph.dump(), &canonical_dump);
        prop_assert_eq!(&render_json(&permuted.diagnostics), &canonical_json);
    }
}
