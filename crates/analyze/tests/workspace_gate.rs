//! The gate, end to end against the real workspace: the checked-in
//! baseline must hold, and a deliberately injected violation must flip
//! the gate to failing. Overlays let these tests analyze the actual repo
//! with one file's contents swapped, without touching disk.

use funnel_analyze::baseline::{Baseline, GateViolation};
use funnel_analyze::lints::Diagnostic;
use funnel_analyze::{analyze, gate, SeverityOverrides, Workspace};
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze sits two levels under the workspace root")
        .to_path_buf()
}

fn read_baseline() -> Baseline {
    let path = repo_root().join("lint-baseline.toml");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("checked-in baseline at {}: {e}", path.display()));
    Baseline::parse(&text).expect("baseline parses")
}

fn findings(ws: &Workspace) -> Vec<Diagnostic> {
    analyze(ws, &SeverityOverrides::default())
        .expect("workspace readable")
        .diagnostics
}

#[test]
fn workspace_passes_the_gate_with_checked_in_baseline() {
    let all = findings(&Workspace::at(repo_root()));
    let violations = gate(&all, &read_baseline(), &SeverityOverrides::default());
    assert!(
        violations.is_empty(),
        "gate must be clean at HEAD (run --write-baseline after intentional changes): \
         {violations:#?}"
    );
}

#[test]
fn injected_instant_now_in_did_fails_the_gate() {
    let root = repo_root();
    let target = "crates/did/src/lib.rs";
    let orig = std::fs::read_to_string(root.join(target)).expect("did crate root exists");
    let ws = Workspace::at(&root).overlay(
        target,
        &format!(
            "{orig}\nfn _lint_canary() -> std::time::Instant {{ std::time::Instant::now() }}\n"
        ),
    );
    let violations = gate(
        &findings(&ws),
        &read_baseline(),
        &SeverityOverrides::default(),
    );
    assert!(
        violations.iter().any(|v| matches!(
            v,
            GateViolation::New { key, .. } if key.starts_with("nondeterministic-time:crates/did/src/lib.rs")
        )),
        "Instant::now() in crates/did must trip the gate: {violations:#?}"
    );
}

#[test]
fn injected_hashmap_iteration_in_report_fails_the_gate() {
    let root = repo_root();
    let target = "crates/core/src/report.rs";
    let orig = std::fs::read_to_string(root.join(target)).expect("report module exists");
    let injected = "\nfn _order_leak(m: &std::collections::HashMap<u32, f64>) -> String {\n\
                    \x20   let mut out = String::new();\n\
                    \x20   for (k, v) in m {\n\
                    \x20       out.push_str(&format!(\"{k}={v}\\n\"));\n\
                    \x20   }\n\
                    \x20   out\n\
                    }\n";
    let ws = Workspace::at(&root).overlay(target, &format!("{orig}{injected}"));
    let violations = gate(
        &findings(&ws),
        &read_baseline(),
        &SeverityOverrides::default(),
    );
    assert!(
        violations.iter().any(|v| matches!(
            v,
            GateViolation::New { key, .. } if key.starts_with("unordered-iteration:crates/core/src/report.rs")
        )),
        "HashMap iteration in report.rs must trip the gate: {violations:#?}"
    );
}

#[test]
fn injected_unwrap_in_parallel_engine_fails_the_gate() {
    // The parallel engine sits on the ingestion-to-verdict hot path: a
    // worker that panics takes its whole assessment down, so the deny-level
    // no-panic lint must cover crates/core/src/parallel.rs.
    let root = repo_root();
    let target = "crates/core/src/parallel.rs";
    let orig = std::fs::read_to_string(root.join(target)).expect("parallel engine exists");
    let ws = Workspace::at(&root).overlay(
        target,
        &format!("{orig}\nfn _lint_canary(v: Option<u32>) -> u32 {{ v.unwrap() }}\n"),
    );
    let violations = gate(
        &findings(&ws),
        &read_baseline(),
        &SeverityOverrides::default(),
    );
    assert!(
        violations.iter().any(|v| matches!(
            v,
            GateViolation::New { key, .. } if key.starts_with("panic-in-hot-path:crates/core/src/parallel.rs")
        )),
        "unwrap() in the parallel engine must trip the gate: {violations:#?}"
    );
}

/// Inserts `stmt` at the top of the body of the fn whose signature starts
/// with `sig`, so interprocedural canaries can hang off a real entry point.
fn inject_into_fn(orig: &str, sig: &str, stmt: &str) -> String {
    let at = orig.find(sig).expect("signature present");
    let brace = at + orig[at..].find('{').expect("body opens") + 1;
    format!("{}\n    {stmt}\n{}", &orig[..brace], &orig[brace..])
}

#[test]
fn injected_panic_chain_from_recover_fails_the_gate() {
    // L7 is interprocedural: the panic source lives in a helper, and only
    // the call edge from the `recover` entry point makes it a finding.
    let root = repo_root();
    let target = "crates/resilience/src/recover.rs";
    let orig = std::fs::read_to_string(root.join(target)).expect("recover module exists");
    let body = inject_into_fn(&orig, "pub fn recover(", "_lint_canary_chain();");
    let ws = Workspace::at(&root).overlay(
        target,
        &format!(
            "{body}\nfn _lint_canary_chain() {{ _lint_canary_panics(None); }}\n\
             fn _lint_canary_panics(v: Option<u32>) {{ let _ = v.unwrap(); }}\n"
        ),
    );
    let violations = gate(
        &findings(&ws),
        &read_baseline(),
        &SeverityOverrides::default(),
    );
    assert!(
        violations.iter().any(|v| matches!(
            v,
            GateViolation::New { key, .. }
                if key.starts_with("panic-reachability:crates/resilience/src/recover.rs:recover")
        )),
        "unwrap two calls below `recover` must trip L7: {violations:#?}"
    );
}

#[test]
fn injected_taint_into_report_sink_fails_the_gate() {
    // L8: the clock read sits in a private helper; the pub render fn is the
    // sink the taint must flow into along the call edge.
    let root = repo_root();
    let target = "crates/core/src/report.rs";
    let orig = std::fs::read_to_string(root.join(target)).expect("report module exists");
    let injected = "\nfn _lint_canary_stamp() -> u64 {\n\
                    \x20   let _ = std::time::Instant::now();\n\
                    \x20   0\n\
                    }\n\
                    pub fn render_lint_canary() -> String {\n\
                    \x20   let _ = _lint_canary_stamp();\n\
                    \x20   String::new()\n\
                    }\n";
    let ws = Workspace::at(&root).overlay(target, &format!("{orig}{injected}"));
    let violations = gate(
        &findings(&ws),
        &read_baseline(),
        &SeverityOverrides::default(),
    );
    assert!(
        violations.iter().any(|v| matches!(
            v,
            GateViolation::New { key, .. }
                if key.starts_with("determinism-taint:crates/core/src/report.rs:render_lint_canary")
        )),
        "clock taint reaching a render sink must trip L8: {violations:#?}"
    );
}

#[test]
fn injected_commit_without_journal_fails_the_gate() {
    // L9: a collector-side fn that touches IngestHooks and commits before
    // journaling violates the WAL ⊇ store protocol.
    let root = repo_root();
    let target = "crates/sim/src/collector.rs";
    let orig = std::fs::read_to_string(root.join(target)).expect("collector module exists");
    let injected = "\nfn _lint_canary_ingest(hooks: &mut dyn IngestHooks, store: &mut Store) {\n\
                    \x20   store.commit();\n\
                    \x20   let _ = hooks.on_accepted_frame();\n\
                    }\n";
    let ws = Workspace::at(&root).overlay(target, &format!("{orig}{injected}"));
    let violations = gate(
        &findings(&ws),
        &read_baseline(),
        &SeverityOverrides::default(),
    );
    assert!(
        violations.iter().any(|v| matches!(
            v,
            GateViolation::New { key, .. }
                if key.starts_with("journal-before-commit:crates/sim/src/collector.rs:_lint_canary_ingest")
        )),
        "commit before journal must trip L9: {violations:#?}"
    );
}

/// The actual binary, exactly as CI invokes it: `funnel-lint --deny-new`
/// must exit 0 at HEAD, and exit 2 when gating a root whose baseline
/// admits nothing but whose tree has findings.
#[test]
fn binary_deny_new_exit_codes() {
    let root = repo_root();
    let status = Command::new(env!("CARGO_BIN_EXE_funnel-lint"))
        .args(["--root", root.to_str().expect("utf8 root"), "--deny-new"])
        .status()
        .expect("funnel-lint binary runs");
    assert!(status.success(), "gate must pass at HEAD: {status:?}");

    // A scratch mini-workspace with a deny finding and no baseline file.
    let scratch = std::env::temp_dir().join(format!(
        "funnel-lint-gate-{}-{}",
        std::process::id(),
        line!()
    ));
    let src_dir = scratch.join("crates/did/src");
    std::fs::create_dir_all(&src_dir).expect("scratch tree");
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\nfn t() -> u128 {\n    std::time::SystemTime::now()\n        .duration_since(std::time::UNIX_EPOCH)\n        .map(|d| d.as_millis())\n        .unwrap_or(0)\n}\n",
    )
    .expect("scratch file");
    let status = Command::new(env!("CARGO_BIN_EXE_funnel-lint"))
        .args([
            "--root",
            scratch.to_str().expect("utf8 scratch"),
            "--deny-new",
        ])
        .status()
        .expect("funnel-lint binary runs");
    assert_eq!(status.code(), Some(2), "new finding must exit 2");
    std::fs::remove_dir_all(&scratch).ok();
}
