//! Window layout: how one sliding window splits into past and future.
//!
//! A scorer receives `W = past_len + future_len` consecutive samples. The
//! candidate change point `x(t)` is the first sample of the future segment;
//! the past trajectory matrix `B(t)` is built over the samples strictly
//! before it (paper Eq. 1) and the future matrix `A(t)` over the samples
//! from `x(t+ρ)` on (Eq. 3). With the paper's `ρ = 0, γ = δ = ω`, both
//! segments span `2ω − 1` samples — exactly the windows Eq. 11's median/MAD
//! filter compares.

use crate::config::SstConfig;
use funnel_timeseries::stats::{mad, median};

/// A window split into its past and future segments.
#[derive(Debug, Clone, Copy)]
pub struct SplitWindow<'a> {
    /// Samples before the candidate point (`past_len` of them).
    pub past: &'a [f64],
    /// Samples from the candidate point on (`future_len` of them).
    pub future: &'a [f64],
}

/// Splits `window` per `config`.
///
/// # Panics
///
/// Panics when `window.len() != config.window_len()`.
pub fn split<'a>(config: &SstConfig, window: &'a [f64]) -> SplitWindow<'a> {
    assert_eq!(
        window.len(),
        config.window_len(),
        "window length {} does not match configured W = {}",
        window.len(),
        config.window_len()
    );
    let p = config.past_len();
    SplitWindow {
        past: &window[..p],
        future: &window[p..],
    }
}

/// Robust-standardizes a window copy: subtracts the window median and divides
/// by the window MAD (floored at `1e-9`), so trajectory matrices and filter
/// factors are in comparable units regardless of the KPI's magnitude.
pub fn standardize(window: &[f64]) -> Vec<f64> {
    let m = median(window);
    let s = mad(window).max(1e-9);
    window.iter().map(|x| (x - m) / s).collect()
}

/// Robust-standardizes a window by the statistics of its **past segment**
/// (the first `past_len` samples). Standardizing by whole-window statistics
/// would let a large level shift inflate the scale and saturate its own
/// effect size at ~2 robust units no matter how big the shift is; training
/// the normalization on the past keeps a 20σ shift looking like 20σ. Falls
/// back to whole-window statistics when the past segment is degenerate
/// (near-zero MAD), so a perfectly flat past cannot blow the values up.
pub fn standardize_by_past(window: &[f64], past_len: usize) -> Vec<f64> {
    let past = &window[..past_len.min(window.len())];
    let m = median(past);
    let mut s = mad(past);
    if s < 1e-9 {
        s = mad(window);
    }
    let s = s.max(1e-9);
    window.iter().map(|x| (x - m) / s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_paper_default() {
        let c = SstConfig::paper_default();
        let w: Vec<f64> = (0..34).map(|i| i as f64).collect();
        let s = split(&c, &w);
        assert_eq!(s.past.len(), 17);
        assert_eq!(s.future.len(), 17);
        assert_eq!(s.past[16], 16.0);
        assert_eq!(s.future[0], 17.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn split_rejects_wrong_length() {
        let c = SstConfig::paper_default();
        let w = vec![0.0; 33];
        let _ = split(&c, &w);
    }

    #[test]
    fn standardize_centers_and_scales() {
        let w = vec![10.0, 12.0, 14.0, 16.0, 18.0];
        let s = standardize(&w);
        // median 14, MAD 2 ⇒ [-2,-1,0,1,2].
        assert_eq!(s, vec![-2.0, -1.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn standardize_constant_window_is_finite() {
        let s = standardize(&[5.0; 8]);
        assert!(s.iter().all(|x| x.is_finite()));
        assert!(s.iter().all(|&x| x == 0.0));
    }
}
