//! Robust SST — the paper's §3.2.2 improvements, computed exactly.
//!
//! Two changes over classic SST:
//!
//! 1. **More future information.** Instead of only the dominant future
//!    direction, use η eigenvectors `β_i` of `A(t)A(t)ᵀ` with per-direction
//!    discordances `ϕ_i = 1 − Σ_j (β_i · u_j)²` (Eq. 10) combined into the
//!    eigenvalue-weighted average `x̂ = Σ λ_i ϕ_i / Σ λ_i` (Eq. 9).
//! 2. **Median/MAD filtering.** The raw score is multiplied by the robust
//!    effect size of Eq. 11 so that noise-induced subspace rotation (whose
//!    medians and MADs match across the candidate point) is suppressed.
//!
//! This implementation uses exact dense eigendecompositions (cyclic Jacobi
//! on the `ω×ω` Grams) and serves as the correctness reference for
//! [`crate::fast::FastSst`], which approximates the same quantities with
//! Lanczos/QL.

use crate::config::{EigSelection, SstConfig};
use crate::filter::apply_filter;
use crate::layout::{split, standardize_by_past};
use crate::SstScorer;
use funnel_linalg::hankel::HankelMatrix;
use funnel_linalg::symeig::sym_eig;

/// The exact robust SST scorer.
#[derive(Debug, Clone)]
pub struct RobustSst {
    config: SstConfig,
}

impl RobustSst {
    /// Creates a robust scorer.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`SstConfig::validate`].
    pub fn new(config: SstConfig) -> Self {
        Self::try_new(config).expect("invalid SST configuration")
    }

    /// Creates the scorer, rejecting an inconsistent configuration instead
    /// of panicking — the constructor hot paths must use.
    ///
    /// # Errors
    ///
    /// Returns the [`SstConfig::validate`] message on an invalid config.
    pub fn try_new(config: SstConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The raw (unfiltered) eigenvalue-weighted discordance of Eq. 9 for one
    /// window; exposed for the ablation bench and the fast-path tests.
    pub fn raw_score(&self, window: &[f64]) -> f64 {
        let c = &self.config;
        let standardized;
        let window = if c.standardize {
            standardized = standardize_by_past(window, c.past_len());
            &standardized[..]
        } else {
            window
        };
        self.raw_score_prepared(window)
    }

    /// Raw score over an already-standardized window.
    fn raw_score_prepared(&self, window: &[f64]) -> f64 {
        let c = &self.config;
        let sw = split(c, window);
        let eta = c.effective_eta();

        // Past signal subspace: top-η eigenvectors of B·Bᵀ.
        let b = HankelMatrix::new(sw.past, c.omega, c.delta);
        let eb = sym_eig(&b.to_dense().gram());

        // Future test directions per Eq. 8 and the selection policy.
        let a = HankelMatrix::new(&sw.future[c.rho..], c.omega, c.gamma);
        let ea = sym_eig(&a.to_dense().gram());

        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..eta {
            let (lambda, beta) = match c.eig_selection {
                EigSelection::Largest => (ea.values[i], ea.vector(i)),
                EigSelection::Smallest => (
                    ea.values[ea.values.len() - 1 - i],
                    ea.vector_from_smallest(i),
                ),
            };
            let lambda = lambda.max(0.0); // Gram is PSD up to round-off
            let mut proj_sq = 0.0;
            for j in 0..eta {
                let d: f64 = (0..c.omega).map(|r| eb.vectors[(r, j)] * beta[r]).sum();
                proj_sq += d * d;
            }
            let phi = (1.0 - proj_sq).clamp(0.0, 1.0);
            num += lambda * phi;
            den += lambda;
        }
        if den <= 0.0 {
            0.0
        } else {
            (num / den).clamp(0.0, 1.0)
        }
    }
}

impl SstScorer for RobustSst {
    fn config(&self) -> &SstConfig {
        &self.config
    }

    fn score_window(&self, window: &[f64]) -> f64 {
        let c = &self.config;
        let standardized;
        let window = if c.standardize {
            standardized = standardize_by_past(window, c.past_len());
            &standardized[..]
        } else {
            window
        };
        let raw = self.raw_score_prepared(window);
        if !c.median_mad_filter {
            return raw;
        }
        let sw = split(c, window);
        apply_filter(raw, sw.past, sw.future)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_window(c: &SstConfig, noise: f64, shift: f64, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-noise via a simple LCG so tests don't depend
        // on rand.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let p = c.past_len();
        (0..c.window_len())
            .map(|i| {
                let base = 100.0 + noise * next();
                if i >= p {
                    base + shift
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn filter_suppresses_pure_noise() {
        let c = SstConfig::paper_default();
        let s = RobustSst::new(c.clone());
        for seed in 0..8 {
            let w = noisy_window(&c, 1.0, 0.0, seed);
            let filtered = s.score_window(&w);
            assert!(filtered < 1.2, "seed {seed}: filtered {filtered}");
        }
    }

    /// Noisy series with a level shift at `onset` (usize::MAX = no shift).
    fn noisy_series(len: usize, noise: f64, onset: usize, shift: f64, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        (0..len)
            .map(|i| {
                let base = 100.0 + noise * next();
                if i >= onset {
                    base + shift
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn shift_peak_beats_noise_peak_with_filter() {
        let c = SstConfig::paper_default();
        let s = RobustSst::new(c.clone());
        let mut worst_shift_peak: f64 = f64::INFINITY;
        let mut worst_noise_peak: f64 = 0.0;
        for seed in 0..6 {
            let shifted = s.score_series(&noisy_series(120, 1.0, 60, 8.0, seed));
            let noise = s.score_series(&noisy_series(120, 1.0, usize::MAX, 0.0, seed));
            worst_shift_peak = worst_shift_peak.min(shifted.iter().copied().fold(0.0, f64::max));
            worst_noise_peak = worst_noise_peak.max(noise.iter().copied().fold(0.0, f64::max));
        }
        assert!(
            worst_shift_peak > worst_noise_peak,
            "worst shifted peak {worst_shift_peak} vs worst noise peak {worst_noise_peak}"
        );
    }

    #[test]
    fn raw_score_in_unit_interval() {
        let c = SstConfig::paper_default();
        let s = RobustSst::new(c.clone());
        for seed in 0..6 {
            let raw = s.raw_score(&noisy_window(&c, 3.0, 2.0, seed));
            assert!((0.0..=1.0).contains(&raw), "raw {raw}");
        }
    }

    #[test]
    fn constant_window_scores_zero() {
        let c = SstConfig::paper_default();
        let s = RobustSst::new(c);
        assert_eq!(s.score_window(&vec![3.0; 34]), 0.0);
    }

    #[test]
    fn smallest_selection_differs_from_largest() {
        let mut cl = SstConfig::paper_default();
        cl.median_mad_filter = false;
        let mut cs = cl.clone();
        cs.eig_selection = EigSelection::Smallest;
        let sl = RobustSst::new(cl.clone());
        let ss = RobustSst::new(cs);
        let w = noisy_window(&cl, 1.0, 6.0, 3);
        let a = sl.score_window(&w);
        let b = ss.score_window(&w);
        assert!((a - b).abs() > 1e-6, "selection should matter: {a} vs {b}");
    }

    #[test]
    fn unfiltered_robust_fires_on_noise_more_than_filtered() {
        // The motivation for the filter: raw robust SST reacts to noise.
        let mut c = SstConfig::paper_default();
        c.median_mad_filter = false;
        let unfiltered = RobustSst::new(c.clone());
        c.median_mad_filter = true;
        let filtered = RobustSst::new(c.clone());
        let mut raw_sum = 0.0;
        let mut fil_sum = 0.0;
        for seed in 0..10 {
            let w = noisy_window(&c, 2.0, 0.0, seed);
            raw_sum += unfiltered.score_window(&w);
            fil_sum += filtered.score_window(&w);
        }
        assert!(raw_sum > fil_sum, "raw {raw_sum} vs filtered {fil_sum}");
    }
}
