//! Singular Spectrum Transform (SST) change-point scoring — classic, robust,
//! and IKA-accelerated, as used by FUNNEL (CoNEXT 2015, §3.2).
//!
//! SST compares the dynamics of a short *past* segment of a time series with
//! the dynamics of the *future* segment around a candidate point. The past
//! dynamics are summarized by the top-η left singular vectors of a Hankel
//! trajectory matrix (the "signal subspace"); the future dynamics by extreme
//! eigenvectors of the future trajectory matrix's Gram. When nothing changed,
//! the dominant future directions lie inside the past signal subspace and the
//! discordance score is near zero; a level shift or ramp rotates the future
//! directions out of the subspace and the score approaches one.
//!
//! Three implementations share one [`SstConfig`] and one window layout:
//!
//! * [`ClassicSst`] — Moskvina–Zhigljavsky/Idé SST: dense SVD of the past
//!   Hankel matrix, single dominant future direction (paper §3.2.1). The
//!   accuracy/efficiency baseline labelled "SST" in the paper's narrative.
//! * [`RobustSst`] — the paper's §3.2.2 improvements: η future eigenvectors
//!   weighted by eigenvalue (Eq. 9–10) and the median/MAD score filter
//!   (Eq. 11–12). Exact dense eigendecompositions; the reference the fast
//!   path is validated against.
//! * [`FastSst`] — §3.2.3: the Implicit Krylov Approximation. Hankel
//!   matrices stay compressed as signal slices, covariances are applied
//!   implicitly, Lanczos compresses to a `k×k` tridiagonal (`k = 2η−1`),
//!   and a QL eigensolver finishes. This is the detector FUNNEL deploys.
//!
//! All scorers implement [`SstScorer`], mapping a window of
//! [`SstConfig::window_len`] samples to a score (≥ 0; raw subspace
//! discordance is in `[0, 1]`, the robust filter rescales it by the robust
//! effect size, see [`filter`]).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod classic;
pub mod config;
pub mod fast;
pub mod filter;
pub mod layout;
pub mod robust;
pub mod stream;

pub use classic::ClassicSst;
pub use config::{EigSelection, SstConfig};
pub use fast::FastSst;
pub use robust::RobustSst;
pub use stream::StreamingSst;

/// A change-point scorer over fixed-width windows.
pub trait SstScorer {
    /// The configuration in effect.
    fn config(&self) -> &SstConfig;

    /// Scores one window of exactly [`SstConfig::window_len`] samples.
    ///
    /// # Panics
    ///
    /// Implementations panic when `window.len()` differs from the
    /// configured window length; the sliding-window driver guarantees it.
    fn score_window(&self, window: &[f64]) -> f64;

    /// Scores every sliding window of a series; `out[i]` is the score of the
    /// window ending at sample `i + window_len − 1`.
    fn score_series(&self, values: &[f64]) -> Vec<f64> {
        let w = self.config().window_len();
        if values.len() < w {
            return Vec::new();
        }
        values
            .windows(w)
            .map(|win| self.score_window(win))
            .collect()
    }
}
