//! Fast SST — the Implicit Krylov Approximation (paper §3.2.3, after
//! Idé & Tsuda 2007).
//!
//! The exact robust scorer diagonalizes two `ω×ω` Grams per window. IKA
//! avoids even that:
//!
//! * **Matrix compression** — `B(t)` and `A(t)` stay as their generating
//!   signal slices ([`HankelMatrix`]); `C = BBᵀ` is only ever *applied*.
//! * **Implicit inner products** — `Lanczos(C, β_i(t), k)` compresses `C`
//!   to a `k×k` tridiagonal `T_k` with `k = 2η−1 = 5` (Eq. 14); every
//!   `C·v` is two Hankel matvecs.
//! * **QL iteration** — `T_k`'s eigenvectors come from the tridiagonal QL
//!   solver. Because the first Lanczos basis vector *is* `β_i`, the first
//!   component of `T_k`'s `j`-th eigenvector approximates `β_i · u_j`, so
//!   Eq. 13 reads off the discordance directly:
//!   `ϕ_i ≈ 1 − Σ_{j≤η} x_j(1)²`.
//!
//! The future directions `β_i` are themselves obtained by a small Lanczos
//! run on the future Gram — still implicit, still `O(k·ω²)` per window.
//! The median/MAD filter and the eigenvalue weighting are identical to
//! [`crate::robust::RobustSst`], which is the oracle this module is tested
//! against.

use crate::config::{EigSelection, SstConfig};
use crate::filter::apply_filter;
use crate::layout::{split, standardize_by_past};
use crate::SstScorer;
use funnel_linalg::hankel::HankelMatrix;
use funnel_linalg::lanczos::lanczos;
use funnel_linalg::matrix::normalize;
use funnel_linalg::tridiag::tridiag_eig;

/// The IKA-accelerated SST scorer FUNNEL deploys online.
#[derive(Debug, Clone)]
pub struct FastSst {
    config: SstConfig,
}

impl FastSst {
    /// Creates a fast scorer.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`SstConfig::validate`].
    pub fn new(config: SstConfig) -> Self {
        Self::try_new(config).expect("invalid SST configuration")
    }

    /// Creates the scorer, rejecting an inconsistent configuration instead
    /// of panicking — the constructor hot paths must use.
    ///
    /// # Errors
    ///
    /// Returns the [`SstConfig::validate`] message on an invalid config.
    pub fn try_new(config: SstConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { config })
    }

    /// Creates the scorer with the paper's evaluation configuration
    /// (`ω = 9`, `W = 34`).
    pub fn paper_default() -> Self {
        Self::new(SstConfig::paper_default())
    }

    /// Ritz approximations `(λ_i, β_i)` of the selected η future eigenpairs,
    /// computed via Lanczos on the *implicit* future Gram.
    fn future_directions(&self, future_sig: &[f64]) -> Vec<(f64, Vec<f64>)> {
        let c = &self.config;
        let a = HankelMatrix::new(future_sig, c.omega, c.gamma);
        let gram = a.gram_operator();
        // Deterministic full-support start vector.
        let start: Vec<f64> = (0..c.omega)
            .map(|i| 1.0 + (i as f64) / c.omega as f64)
            .collect();
        let k = c.krylov_dim().max(c.effective_eta()).min(c.omega);
        let lz = lanczos(&gram, &start, k);
        if lz.steps() == 0 {
            return Vec::new();
        }
        let eig = tridiag_eig(&lz.alpha, &lz.beta);
        let steps = lz.steps();
        let eta = c.effective_eta().min(steps);

        let pick = |rank_from_top: usize| -> (f64, Vec<f64>) {
            let col = match c.eig_selection {
                EigSelection::Largest => rank_from_top,
                EigSelection::Smallest => steps - 1 - rank_from_top,
            };
            // Map the Ritz vector back to R^ω through the Lanczos basis.
            let mut v = vec![0.0; c.omega];
            for (m, q) in lz.basis.iter().enumerate() {
                let ym = eig.vectors[(m, col)];
                for (vi, qi) in v.iter_mut().zip(q.iter()) {
                    *vi += ym * qi;
                }
            }
            normalize(&mut v);
            (eig.values[col].max(0.0), v)
        };
        (0..eta).map(pick).collect()
    }

    /// Eq. 13: discordance of one future direction against the past signal
    /// subspace, via `Lanczos(C, β_i, k)` and QL on `T_k`.
    fn phi(&self, past_gram: &funnel_linalg::hankel::GramOperator<'_>, beta: &[f64]) -> f64 {
        let c = &self.config;
        let k = c.krylov_dim().min(c.omega);
        let lz = lanczos(past_gram, beta, k);
        if lz.steps() == 0 {
            return 0.0;
        }
        let eig = tridiag_eig(&lz.alpha, &lz.beta);
        let eta = c.effective_eta().min(lz.steps());
        // First components of the top-η eigenvectors of T_k approximate
        // β_i · u_j (the Lanczos basis starts at β_i).
        let proj_sq: f64 = (0..eta).map(|j| eig.vectors[(0, j)].powi(2)).sum();
        (1.0 - proj_sq).clamp(0.0, 1.0)
    }

    /// The raw (unfiltered) Eq. 9 score; exposed for ablations and the
    /// robust-oracle comparison tests.
    pub fn raw_score(&self, window: &[f64]) -> f64 {
        let c = &self.config;
        let standardized;
        let window = if c.standardize {
            standardized = standardize_by_past(window, c.past_len());
            &standardized[..]
        } else {
            window
        };
        self.raw_score_prepared(window)
    }

    fn raw_score_prepared(&self, window: &[f64]) -> f64 {
        let c = &self.config;
        let sw = split(c, window);
        let b = HankelMatrix::new(sw.past, c.omega, c.delta);
        let past_gram = b.gram_operator();
        let dirs = self.future_directions(&sw.future[c.rho..]);
        if dirs.is_empty() {
            return 0.0;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (lambda, beta) in &dirs {
            let phi = self.phi(&past_gram, beta);
            num += lambda * phi;
            den += lambda;
        }
        if den <= 0.0 {
            0.0
        } else {
            (num / den).clamp(0.0, 1.0)
        }
    }
}

impl SstScorer for FastSst {
    fn config(&self) -> &SstConfig {
        &self.config
    }

    fn score_window(&self, window: &[f64]) -> f64 {
        let c = &self.config;
        let standardized;
        let window = if c.standardize {
            standardized = standardize_by_past(window, c.past_len());
            &standardized[..]
        } else {
            window
        };
        let raw = self.raw_score_prepared(window);
        if !c.median_mad_filter {
            return raw;
        }
        let sw = split(c, window);
        apply_filter(raw, sw.past, sw.future)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::robust::RobustSst;

    fn lcg_window(c: &SstConfig, noise: f64, shift: f64, seed: u64) -> Vec<f64> {
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let p = c.past_len();
        (0..c.window_len())
            .map(|i| {
                let base = 50.0 + noise * next() + 0.3 * ((i as f64) * 0.7).sin();
                if i >= p {
                    base + shift
                } else {
                    base
                }
            })
            .collect()
    }

    /// Noisy series with a level shift at `onset` (usize::MAX = no shift).
    fn lcg_series(len: usize, noise: f64, onset: usize, shift: f64, seed: u64) -> Vec<f64> {
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        (0..len)
            .map(|i| {
                let base = 50.0 + noise * next() + 0.3 * ((i as f64) * 0.7).sin();
                if i >= onset {
                    base + shift
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn fast_ranks_windows_like_exact_robust_scorer() {
        // The IKA approximation (k = 5 Krylov dim) need not match the exact
        // Eq. 9 score pointwise on dense-spectrum noise windows, but it must
        // preserve the decision structure: the peak score of a shifted
        // series must agree with the exact scorer's peak on strong signals.
        let mut c = SstConfig::paper_default();
        c.median_mad_filter = false;
        let fast = FastSst::new(c.clone());
        let exact = RobustSst::new(c.clone());
        for seed in 0..6 {
            let shifted = lcg_series(120, 1.0, 60, 8.0, seed);
            let fast_peak = fast.score_series(&shifted).into_iter().fold(0.0, f64::max);
            let exact_peak = exact.score_series(&shifted).into_iter().fold(0.0, f64::max);
            assert!(
                (fast_peak - exact_peak).abs() < 0.25,
                "seed {seed}: fast peak {fast_peak} vs exact peak {exact_peak}"
            );
        }
    }

    #[test]
    fn level_shift_peak_scores_above_noise_peak() {
        let c = SstConfig::paper_default();
        let s = FastSst::new(c.clone());
        let mut min_shift_peak: f64 = f64::INFINITY;
        let mut max_noise_peak: f64 = 0.0;
        for seed in 0..6 {
            let sp = s
                .score_series(&lcg_series(120, 1.0, 60, 10.0, seed))
                .into_iter()
                .fold(0.0, f64::max);
            let np = s
                .score_series(&lcg_series(120, 1.0, usize::MAX, 0.0, seed))
                .into_iter()
                .fold(0.0, f64::max);
            min_shift_peak = min_shift_peak.min(sp);
            max_noise_peak = max_noise_peak.max(np);
        }
        assert!(
            min_shift_peak > max_noise_peak,
            "shift peak {min_shift_peak} vs noise peak {max_noise_peak}"
        );
    }

    #[test]
    fn ramp_detected() {
        let c = SstConfig::paper_default();
        let s = FastSst::new(c.clone());
        let p = c.past_len();
        let w: Vec<f64> = (0..c.window_len())
            .map(|i| {
                let base = 20.0 + 0.05 * ((i * 3) % 7) as f64;
                if i >= p {
                    base + 0.8 * (i - p + 1) as f64
                } else {
                    base
                }
            })
            .collect();
        assert!(s.score_window(&w) > 0.5);
    }

    #[test]
    fn constant_window_scores_zero() {
        let s = FastSst::paper_default();
        assert_eq!(s.score_window(&vec![42.0; 34]), 0.0);
    }

    #[test]
    fn quick_and_precise_configs_run() {
        for c in [SstConfig::quick(), SstConfig::precise()] {
            let s = FastSst::new(c.clone());
            let w = lcg_window(&c, 1.0, 5.0, 1);
            let score = s.score_window(&w);
            assert!(score.is_finite() && score >= 0.0);
        }
    }

    #[test]
    fn score_series_matches_window_scores() {
        let c = SstConfig::quick();
        let s = FastSst::new(c.clone());
        let values: Vec<f64> = (0..30).map(|i| (i as f64 * 0.4).cos() * 3.0).collect();
        let series_scores = s.score_series(&values);
        assert_eq!(series_scores.len(), 30 - c.window_len() + 1);
        let first_window = &values[..c.window_len()];
        assert_eq!(series_scores[0], s.score_window(first_window));
    }
}
