//! SST configuration.
//!
//! The paper fixes most of SST's five parameters using the guidance of
//! Idé–Tsuda and Mohammad–Nishida (§3.2.2–3.2.3): `ρ = 0`, `γ = δ = ω`,
//! `η = 3`, and the Krylov dimension `k` from Eq. 14. That leaves only the
//! sub-window length `ω`, which trades detection speed against precision
//! ("for a service that needs quick mitigation … ω can be set to a small
//! value such as 5; for … more precise assessment … a larger value such as
//! 15"). FUNNEL's evaluation uses `ω = 9`, i.e. a sliding window of
//! `W = 4ω − 2 = 34` one-minute samples.

/// Which extreme of the future Gram spectrum supplies the η test directions.
///
/// Paper §3.2.2 says "the η eigenvectors of A(t)A(t)ᵀ with the smallest
/// corresponding eigenvalues", but weights them by eigenvalue in Eq. 9 and
/// cites robust-SST work that uses the largest. `Largest` is the default;
/// `Smallest` is kept for the ablation bench (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EigSelection {
    /// Use the η dominant eigenvectors of the future Gram (default).
    Largest,
    /// Use the η eigenvectors with the smallest eigenvalues (the paper's
    /// literal wording).
    Smallest,
}

/// Parameters shared by every SST variant.
#[derive(Debug, Clone, PartialEq)]
pub struct SstConfig {
    /// Sub-window (column) length `ω` of the Hankel trajectory matrices.
    pub omega: usize,
    /// Number of past columns `δ`; the paper sets `δ = ω` (IKA requires it).
    pub delta: usize,
    /// Number of future columns `γ`; the paper sets `γ = δ`.
    pub gamma: usize,
    /// Gap `ρ` between the candidate point and the first future column;
    /// the paper sets `ρ = 0`.
    pub rho: usize,
    /// Signal-subspace dimension `η`; "3 or 4 is suitable … even when ω is
    /// on the order of 100"; the paper uses 3.
    pub eta: usize,
    /// Which future eigenvectors to test (see [`EigSelection`]).
    pub eig_selection: EigSelection,
    /// Whether to apply the median/MAD robustness filter of Eq. 11
    /// (disabled only by the ablation bench).
    pub median_mad_filter: bool,
    /// Whether to robust-standardize each window (subtract median, divide by
    /// MAD) before building trajectory matrices, making scores and filter
    /// factors comparable across KPIs of different magnitudes.
    pub standardize: bool,
}

impl SstConfig {
    /// The paper's evaluation configuration: `ω = 9` ⇒ `W = 34`.
    pub fn paper_default() -> Self {
        Self::with_omega(9)
    }

    /// The "quick mitigation" configuration (`ω = 5`).
    pub fn quick() -> Self {
        Self::with_omega(5)
    }

    /// The "precise assessment" configuration (`ω = 15`).
    pub fn precise() -> Self {
        Self::with_omega(15)
    }

    /// A configuration with the given `ω` and all other parameters at the
    /// paper's settings. Panics if `omega < 2`.
    pub fn with_omega(omega: usize) -> Self {
        assert!(omega >= 2, "omega must be at least 2");
        Self {
            omega,
            delta: omega,
            gamma: omega,
            rho: 0,
            eta: 3,
            eig_selection: EigSelection::Largest,
            median_mad_filter: true,
            standardize: true,
        }
    }

    /// The Krylov dimension `k` of Eq. 14: `2η` for even η, `2η − 1` for odd.
    pub fn krylov_dim(&self) -> usize {
        if self.eta.is_multiple_of(2) {
            2 * self.eta
        } else {
            2 * self.eta - 1
        }
    }

    /// Effective signal-subspace dimension, clamped to what an `ω`-dim space
    /// can hold.
    pub fn effective_eta(&self) -> usize {
        self.eta.min(self.omega)
    }

    /// Number of samples the past segment spans: `ω + δ − 1`.
    pub fn past_len(&self) -> usize {
        self.omega + self.delta - 1
    }

    /// Number of samples the future segment spans: `ρ + γ + ω − 1`.
    pub fn future_len(&self) -> usize {
        self.rho + self.gamma + self.omega - 1
    }

    /// Total sliding-window width `W = past_len + future_len`
    /// (`4ω − 2` at the paper's settings).
    pub fn window_len(&self) -> usize {
        self.past_len() + self.future_len()
    }

    /// Validates internal consistency (e.g. `η ≤ ω`, IKA's `δ = ω`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.omega < 2 {
            return Err(format!("omega must be ≥ 2, got {}", self.omega));
        }
        if self.delta == 0 || self.gamma == 0 {
            return Err("delta and gamma must be positive".into());
        }
        if self.eta == 0 {
            return Err("eta must be positive".into());
        }
        if self.eta > self.omega {
            return Err(format!(
                "eta ({}) must not exceed omega ({})",
                self.eta, self.omega
            ));
        }
        Ok(())
    }
}

impl Default for SstConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let c = SstConfig::paper_default();
        assert_eq!(c.omega, 9);
        assert_eq!(c.window_len(), 34, "W_FUNNEL = 34 in §4.1");
        assert_eq!(c.krylov_dim(), 5, "k = 2η−1 for η = 3");
        assert_eq!(c.past_len(), 17);
        assert_eq!(c.future_len(), 17);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn krylov_dim_even_eta() {
        let mut c = SstConfig::with_omega(9);
        c.eta = 4;
        assert_eq!(c.krylov_dim(), 8);
    }

    #[test]
    fn quick_and_precise_presets() {
        assert_eq!(SstConfig::quick().window_len(), 18);
        assert_eq!(SstConfig::precise().window_len(), 58);
    }

    #[test]
    fn rho_extends_future() {
        let mut c = SstConfig::with_omega(5);
        c.rho = 2;
        assert_eq!(c.future_len(), 2 + 5 + 5 - 1);
    }

    #[test]
    fn validation_catches_bad_eta() {
        let mut c = SstConfig::with_omega(3);
        c.eta = 4;
        assert!(c.validate().is_err());
        c.eta = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "omega must be at least 2")]
    fn with_omega_rejects_tiny() {
        let _ = SstConfig::with_omega(1);
    }
}
