//! Classic SST (paper §3.2.1).
//!
//! The original Moskvina–Zhigljavsky / Idé formulation: the past signal
//! subspace `U_η` comes from a dense SVD of the Hankel trajectory matrix
//! `B(t)` (Eq. 2), the future is represented by the *single* dominant
//! direction `β(t)` of `A(t)A(t)ᵀ` (Eq. 4–5), and the change score is the
//! discordance between `β(t)` and `U_η` (Eq. 6–7, in the squared-projection
//! form of Eq. 10). No robustness filter — this is the baseline whose noise
//! sensitivity §3.2.2 fixes.

use crate::config::SstConfig;
use crate::layout::{split, standardize_by_past};
use crate::SstScorer;
use funnel_linalg::hankel::HankelMatrix;
use funnel_linalg::power::dominant_eigenpair;
use funnel_linalg::svd::svd;

/// The classic SST scorer. Construct once, score many windows.
#[derive(Debug, Clone)]
pub struct ClassicSst {
    config: SstConfig,
}

impl ClassicSst {
    /// Creates a classic scorer; the config's `median_mad_filter` flag is
    /// ignored (classic SST predates the filter).
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`SstConfig::validate`].
    pub fn new(config: SstConfig) -> Self {
        Self::try_new(config).expect("invalid SST configuration")
    }

    /// Creates the scorer, rejecting an inconsistent configuration instead
    /// of panicking — the constructor hot paths must use.
    ///
    /// # Errors
    ///
    /// Returns the [`SstConfig::validate`] message on an invalid config.
    pub fn try_new(config: SstConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { config })
    }
}

impl SstScorer for ClassicSst {
    fn config(&self) -> &SstConfig {
        &self.config
    }

    fn score_window(&self, window: &[f64]) -> f64 {
        let c = &self.config;
        let standardized;
        let window = if c.standardize {
            standardized = standardize_by_past(window, c.past_len());
            &standardized[..]
        } else {
            window
        };
        let sw = split(c, window);

        // Past signal subspace via dense SVD of the Hankel matrix.
        let b = HankelMatrix::new(sw.past, c.omega, c.delta);
        let f = svd(&b.to_dense());
        let eta = c.effective_eta();

        // Dominant future direction via power iteration on A·Aᵀ applied
        // implicitly.
        let future_sig = &sw.future[c.rho..];
        let a = HankelMatrix::new(future_sig, c.omega, c.gamma);
        let (lambda, beta) = dominant_eigenpair(&a.gram_operator(), 1e-10);
        if lambda <= 0.0 || beta.is_empty() {
            return 0.0; // degenerate (e.g. constant) future segment
        }

        // Discordance: 1 − Σ_j (β · u_j)².
        let mut proj_sq = 0.0;
        for j in 0..eta {
            let d: f64 = (0..c.omega).map(|i| f.u[(i, j)] * beta[i]).sum();
            proj_sq += d * d;
        }
        (1.0 - proj_sq).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic wiggly series with an optional level shift at
    /// `onset`. SST's score peaks on windows whose *future trajectory
    /// columns straddle* the onset (a shift placed exactly at the
    /// past/future boundary leaves both segments internally constant-shaped
    /// and scores near zero by design), so tests scan the sliding series and
    /// look at the peak.
    fn series_with_shift(len: usize, onset: usize, delta: f64) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let base = 10.0 + 0.11 * ((i as f64) * 0.9).sin();
                if i >= onset {
                    base + delta
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn no_change_series_scores_low_everywhere() {
        let c = SstConfig::paper_default();
        let s = ClassicSst::new(c.clone());
        let scores = s.score_series(&series_with_shift(120, usize::MAX, 0.0));
        let peak = scores.iter().copied().fold(0.0, f64::max);
        assert!(peak < 0.35, "peak {peak}");
    }

    #[test]
    fn level_shift_peaks_high_near_onset() {
        let c = SstConfig::paper_default();
        let s = ClassicSst::new(c.clone());
        let scores = s.score_series(&series_with_shift(120, 60, 5.0));
        let peak = scores.iter().copied().fold(0.0, f64::max);
        assert!(peak > 0.5, "peak {peak}");
        // The peak must occur on a window that actually contains the onset
        // (discordance arises whether the shift straddles the future columns
        // or the past ones).
        let argmax_end = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i + c.window_len() - 1)
            .unwrap();
        assert!(
            (60..60 + c.window_len()).contains(&argmax_end),
            "peak at minute {argmax_end}"
        );
    }

    #[test]
    fn constant_window_scores_zero() {
        let c = SstConfig::paper_default();
        let s = ClassicSst::new(c);
        let w = vec![7.0; 34];
        assert_eq!(s.score_window(&w), 0.0);
    }

    #[test]
    fn score_is_in_unit_interval() {
        let c = SstConfig::paper_default();
        let s = ClassicSst::new(c.clone());
        for seedish in 0..10 {
            let w: Vec<f64> = (0..c.window_len())
                .map(|i| ((i * 7 + seedish * 13) % 11) as f64 - 5.0)
                .collect();
            let score = s.score_window(&w);
            assert!((0.0..=1.0).contains(&score), "score {score}");
        }
    }

    #[test]
    fn score_series_length() {
        let c = SstConfig::quick();
        let s = ClassicSst::new(c.clone());
        let values: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3).sin()).collect();
        let scores = s.score_series(&values);
        assert_eq!(scores.len(), 40 - c.window_len() + 1);
    }

    #[test]
    #[should_panic(expected = "invalid SST configuration")]
    fn invalid_config_rejected() {
        let mut c = SstConfig::with_omega(3);
        c.eta = 9;
        let _ = ClassicSst::new(c);
    }
}
