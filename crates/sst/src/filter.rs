//! The median/MAD robustness filter (paper Eq. 11–12).
//!
//! SST's raw score degrades when noise dominates the signal: pure noise
//! rotates the future directions just as a real change does. The paper's
//! fix multiplies the raw score by a robust effect size,
//!
//! ```text
//! x̃(t) = x̂(t) · |medianₐ − median_b| · √|MADₐ − MAD_b|
//! ```
//!
//! where the `a` window is the `(2ω−1)` samples before the candidate point
//! and the `b` window the `(2ω−1)` samples after. Noise-only windows have
//! matching medians and MADs, so both factors collapse toward zero and
//! spurious subspace rotation is suppressed; a level shift moves the median
//! factor, a variance change moves the MAD factor.

use funnel_timeseries::stats::RobustSummary;

/// The two robust factors of Eq. 11, kept separate for introspection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterFactors {
    /// `|medianₐ − median_b|` — level displacement across the candidate.
    pub median_shift: f64,
    /// `√|MADₐ − MAD_b|` — dispersion displacement across the candidate.
    pub mad_shift_sqrt: f64,
}

impl FilterFactors {
    /// Computes the factors from the past (`a`) and future (`b`) segments.
    pub fn from_segments(past: &[f64], future: &[f64]) -> Self {
        let a = RobustSummary::of(past);
        let b = RobustSummary::of(future);
        Self {
            median_shift: (a.median - b.median).abs(),
            mad_shift_sqrt: (a.mad - b.mad).abs().sqrt(),
        }
    }

    /// The combined multiplier. Eq. 11 multiplies both factors; to keep a
    /// pure variance change (median factor ≈ 0) and a pure clean level shift
    /// (MAD factor ≈ 0) detectable, each factor is floored at a small
    /// epsilon *relative to the other*: the filter suppresses the score only
    /// when **both** robust displacements vanish, which is the noise-only
    /// situation the paper targets.
    pub fn multiplier(&self) -> f64 {
        let combined = self.median_shift + self.mad_shift_sqrt;
        self.median_shift.max(0.05 * combined) * self.mad_shift_sqrt.max(0.05 * combined)
    }
}

/// Applies Eq. 11: `x̃ = x̂ · multiplier`.
pub fn apply_filter(raw_score: f64, past: &[f64], future: &[f64]) -> f64 {
    raw_score * FilterFactors::from_segments(past, future).multiplier()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_segments_suppress_score() {
        let seg = [1.0, 2.0, 3.0, 2.0, 1.0, 2.0, 3.0];
        let filtered = apply_filter(1.0, &seg, &seg);
        assert!(filtered.abs() < 1e-9);
    }

    #[test]
    fn level_shift_passes_through() {
        let past = [1.0, 1.1, 0.9, 1.0, 1.05, 0.95, 1.0];
        let future: Vec<f64> = past.iter().map(|x| x + 5.0).collect();
        let f = FilterFactors::from_segments(&past, &future);
        assert!((f.median_shift - 5.0).abs() < 1e-9);
        // MAD unchanged ⇒ sqrt factor ≈ 0 but floored relative to median
        // shift, so the product stays material.
        assert!(apply_filter(0.8, &past, &future) > 0.1);
    }

    #[test]
    fn variance_change_passes_through() {
        let past = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let future = [1.0, 4.0, -2.0, 5.0, -3.0, 4.0, -2.0];
        let f = FilterFactors::from_segments(&past, &future);
        assert!(f.mad_shift_sqrt > 1.0);
        assert!(apply_filter(0.8, &past, &future) > 0.1);
    }

    #[test]
    fn bigger_shift_bigger_multiplier() {
        let past = [0.0, 0.1, -0.1, 0.05, -0.05, 0.0, 0.1];
        let small: Vec<f64> = past.iter().map(|x| x + 1.0).collect();
        let large: Vec<f64> = past.iter().map(|x| x + 10.0).collect();
        let ms = FilterFactors::from_segments(&past, &small).multiplier();
        let ml = FilterFactors::from_segments(&past, &large).multiplier();
        assert!(ml > ms);
    }

    #[test]
    fn pure_noise_with_matching_stats_filters_hard() {
        // Same distribution, different realizations: median/MAD nearly match.
        let past = [0.1, -0.2, 0.15, -0.1, 0.05, -0.15, 0.2];
        let future = [-0.1, 0.2, -0.15, 0.1, -0.05, 0.15, -0.2];
        let m = FilterFactors::from_segments(&past, &future).multiplier();
        assert!(m < 0.1, "multiplier {m}");
    }
}
