//! Per-KPI incremental SST state for the streaming engine.
//!
//! Batch scoring re-slices the full series and re-scores every window each
//! time it runs; a continuously running engine cannot afford either the
//! re-slicing or the allocation. [`StreamingSst`] keeps the per-KPI window
//! state resident between minutes: a rolling window of the last
//! [`crate::SstConfig::window_len`] samples plus one reused contiguous scratch
//! buffer, so folding in a new minute costs exactly one window score and
//! zero allocations at steady state.
//!
//! Scores are **byte-identical** to batch: [`StreamingSst::fold`] hands the
//! wrapped scorer the same `window_len` samples, in the same order, as
//! [`SstScorer::score_series`] would for the window ending at that sample —
//! the amortization is in the bookkeeping (no re-slicing, no per-window
//! allocation, no rescoring of unchanged windows), never in the arithmetic.
//! A warm-started decomposition was considered and rejected: reusing Lanczos
//! state across overlapping windows changes low-order bits, which would
//! break the engine's streaming-equals-batch guarantee.

use crate::SstScorer;
use std::collections::VecDeque;

/// Rolling change-point scorer state for one KPI.
#[derive(Debug, Clone)]
pub struct StreamingSst<S> {
    scorer: S,
    window: VecDeque<f64>,
    scratch: Vec<f64>,
    folded: u64,
    scored: u64,
}

impl<S: SstScorer> StreamingSst<S> {
    /// Wraps `scorer` with empty (cold) window state.
    pub fn new(scorer: S) -> Self {
        let w = scorer.config().window_len();
        Self {
            scorer,
            window: VecDeque::with_capacity(w),
            scratch: Vec::with_capacity(w),
            folded: 0,
            scored: 0,
        }
    }

    /// The wrapped scorer.
    pub fn scorer(&self) -> &S {
        &self.scorer
    }

    /// The window width the state rolls over.
    pub fn window_len(&self) -> usize {
        self.scorer.config().window_len()
    }

    /// Samples folded in since creation or the last reset.
    pub fn folded(&self) -> u64 {
        self.folded
    }

    /// Windows actually scored (folds past warm-up).
    pub fn scored(&self) -> u64 {
        self.scored
    }

    /// Whether the window has filled — the next fold will score.
    pub fn is_warm(&self) -> bool {
        self.window.len() >= self.window_len()
    }

    /// Folds in the measurement for the next minute. Returns the filtered
    /// SST score of the window ending at this sample once `window_len`
    /// samples have accumulated, `None` during warm-up. Equal to what
    /// [`SstScorer::score_series`] reports for the same window.
    pub fn fold(&mut self, value: f64) -> Option<f64> {
        let w = self.window_len();
        self.folded += 1;
        if self.window.len() == w {
            self.window.pop_front();
        }
        self.window.push_back(value);
        if self.window.len() < w {
            return None;
        }
        self.scratch.clear();
        self.scratch.extend(self.window.iter().copied());
        self.scored += 1;
        Some(self.scorer.score_window(&self.scratch))
    }

    /// Discards the rolling window (e.g. after a backfill rewrote history
    /// behind the frontier — the cheap fold is only valid while the window
    /// slides forward one contiguous minute at a time). Counters survive;
    /// the next `window_len` folds warm the state back up.
    pub fn reset(&mut self) {
        self.window.clear();
    }

    /// Resets, then folds in `values` oldest-first (bulk re-prime after a
    /// reset, e.g. replaying the retained ring window). Returns the score
    /// of the last complete window, if any.
    pub fn prime(&mut self, values: impl IntoIterator<Item = f64>) -> Option<f64> {
        self.reset();
        let mut last = None;
        for v in values {
            last = self.fold(v).or(last);
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SstConfig;
    use crate::fast::FastSst;

    fn series(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let base = 10.0 + ((i as f64) * 0.7).sin();
                if i >= len / 2 {
                    base + 8.0
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn fold_matches_batch_score_series_exactly() {
        let c = SstConfig::quick();
        let scorer = FastSst::new(c.clone());
        let values = series(3 * c.window_len());
        let batch = scorer.score_series(&values);

        let mut stream = StreamingSst::new(FastSst::new(c.clone()));
        let mut streamed = Vec::new();
        for &v in &values {
            if let Some(s) = stream.fold(v) {
                streamed.push(s);
            }
        }
        assert_eq!(streamed, batch, "streamed scores must be byte-identical");
        assert_eq!(stream.folded(), values.len() as u64);
        assert_eq!(stream.scored(), batch.len() as u64);
    }

    #[test]
    fn warm_up_yields_none_until_window_fills() {
        let c = SstConfig::quick();
        let w = c.window_len();
        let mut stream = StreamingSst::new(FastSst::new(c));
        for i in 0..w - 1 {
            assert_eq!(stream.fold(i as f64), None, "fold {i}");
            assert!(!stream.is_warm());
        }
        assert!(stream.fold((w - 1) as f64).is_some());
        assert!(stream.is_warm());
    }

    #[test]
    fn prime_equals_manual_folds() {
        let c = SstConfig::quick();
        let values = series(2 * c.window_len());
        let mut a = StreamingSst::new(FastSst::new(c.clone()));
        let mut last = None;
        for &v in &values {
            last = a.fold(v).or(last);
        }
        let mut b = StreamingSst::new(FastSst::new(c));
        let primed = b.prime(values.iter().copied());
        assert_eq!(primed, last);
        assert_eq!(a.fold(1.0), b.fold(1.0));
    }

    #[test]
    fn reset_forces_rewarm_but_keeps_counters() {
        let c = SstConfig::quick();
        let w = c.window_len();
        let mut stream = StreamingSst::new(FastSst::new(c));
        for i in 0..w {
            stream.fold(i as f64);
        }
        let folded = stream.folded();
        stream.reset();
        assert!(!stream.is_warm());
        assert_eq!(stream.fold(0.0), None);
        assert_eq!(stream.folded(), folded + 1);
    }
}
