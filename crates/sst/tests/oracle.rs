//! Oracle tests: the SST scorers against independent, brute-force
//! re-computations of the paper's formulas (no shared code paths with the
//! implementations under test beyond the linalg substrate).

use funnel_linalg::matrix::Mat;
use funnel_linalg::symeig::sym_eig;
use funnel_sst::layout::{split, standardize_by_past};
use funnel_sst::{FastSst, RobustSst, SstConfig, SstScorer};

/// Dense Hankel matrix straight from the definition (Eq. 1): column j holds
/// ω consecutive samples starting at offset j.
fn hankel(signal: &[f64], omega: usize) -> Mat {
    let delta = signal.len() - omega + 1;
    let mut m = Mat::zeros(omega, delta);
    for i in 0..omega {
        for j in 0..delta {
            m[(i, j)] = signal[i + j];
        }
    }
    m
}

/// Brute-force Eq. 9/10: eigenvalue-weighted discordance of the η dominant
/// future directions against the η-dim past signal subspace.
fn oracle_raw_score(config: &SstConfig, window: &[f64]) -> f64 {
    let std = standardize_by_past(window, config.past_len());
    let sw = split(config, &std);
    let eta = config.eta;

    let b = hankel(sw.past, config.omega);
    let past = sym_eig(&b.gram());
    let a = hankel(&sw.future[config.rho..], config.omega);
    let fut = sym_eig(&a.gram());

    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..eta {
        let lambda = fut.values[i].max(0.0);
        let beta = fut.vector(i);
        let mut proj = 0.0;
        for j in 0..eta {
            let u = past.vector(j);
            let d: f64 = u.iter().zip(&beta).map(|(a, b)| a * b).sum();
            proj += d * d;
        }
        num += lambda * (1.0 - proj).clamp(0.0, 1.0);
        den += lambda;
    }
    if den <= 0.0 {
        0.0
    } else {
        (num / den).clamp(0.0, 1.0)
    }
}

fn lcg_series(len: usize, seed: u64, shift_at: Option<usize>, delta: f64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(12345);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    (0..len)
        .map(|i| {
            let mut v = 80.0 + 2.0 * next();
            if let Some(at) = shift_at {
                if i >= at {
                    v += delta;
                }
            }
            v
        })
        .collect()
}

#[test]
fn robust_sst_matches_brute_force_eq9() {
    let mut config = SstConfig::paper_default();
    config.median_mad_filter = false;
    let scorer = RobustSst::new(config.clone());
    for seed in 0..10 {
        let w = lcg_series(config.window_len(), seed, Some(20), 6.0);
        let got = scorer.raw_score(&w);
        let want = oracle_raw_score(&config, &w);
        assert!(
            (got - want).abs() < 1e-9,
            "seed {seed}: robust {got} vs oracle {want}"
        );
    }
}

#[test]
fn fast_sst_approximates_oracle_within_tolerance() {
    let mut config = SstConfig::paper_default();
    config.median_mad_filter = false;
    let fast = FastSst::new(config.clone());
    let mut total_err = 0.0;
    let n = 20;
    for seed in 0..n {
        let w = lcg_series(config.window_len(), seed, Some(17), 8.0);
        let got = fast.raw_score(&w);
        let want = oracle_raw_score(&config, &w);
        total_err += (got - want).abs();
    }
    let mae = total_err / n as f64;
    assert!(mae < 0.15, "IKA mean absolute error vs oracle: {mae}");
}

/// Brute-force Eq. 11: the full filtered score.
fn oracle_filtered_score(config: &SstConfig, window: &[f64]) -> f64 {
    use funnel_timeseries::stats::{mad, median};
    let raw = oracle_raw_score(config, window);
    let std = standardize_by_past(window, config.past_len());
    let sw = split(config, &std);
    let med_shift = (median(sw.past) - median(sw.future)).abs();
    let mad_sqrt = (mad(sw.past) - mad(sw.future)).abs().sqrt();
    let combined = med_shift + mad_sqrt;
    raw * med_shift.max(0.05 * combined) * mad_sqrt.max(0.05 * combined)
}

#[test]
fn robust_filtered_score_matches_brute_force_eq11() {
    let config = SstConfig::paper_default();
    let scorer = RobustSst::new(config.clone());
    for seed in 30..40 {
        for shift in [None, Some(20)] {
            let w = lcg_series(config.window_len(), seed, shift, 9.0);
            let got = scorer.score_window(&w);
            let want = oracle_filtered_score(&config, &w);
            assert!(
                (got - want).abs() < 1e-9,
                "seed {seed} shift {shift:?}: robust {got} vs oracle {want}"
            );
        }
    }
}

#[test]
fn filter_separates_shift_from_noise_where_raw_does_not() {
    // The raw Eq. 9 discordance fires on dense-spectrum noise too — that is
    // exactly why the paper adds the Eq. 11 filter. The *filtered* score
    // must separate; the raw one need not.
    let config = SstConfig::paper_default();
    let scorer = RobustSst::new(config.clone());
    let mut shift_min: f64 = f64::INFINITY;
    let mut noise_max: f64 = 0.0;
    for seed in 50..56 {
        // Onset mid-future so the future trajectory columns straddle it.
        let shifted = lcg_series(config.window_len(), seed, Some(25), 25.0);
        let noise = lcg_series(config.window_len(), seed, None, 0.0);
        shift_min = shift_min.min(scorer.score_window(&shifted));
        noise_max = noise_max.max(scorer.score_window(&noise));
    }
    assert!(
        shift_min > noise_max,
        "filtered shift {shift_min} vs noise {noise_max}"
    );
}
