//! Property-based tests for the SST scorers.

use funnel_sst::{ClassicSst, EigSelection, FastSst, RobustSst, SstConfig, SstScorer};
use proptest::prelude::*;

fn any_window(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e4..1e4f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Raw (unfiltered) scores are always within [0, 1] for every variant.
    #[test]
    fn raw_scores_unit_interval(w in any_window(34)) {
        let mut c = SstConfig::paper_default();
        c.median_mad_filter = false;
        let classic = ClassicSst::new(c.clone()).score_window(&w);
        let robust = RobustSst::new(c.clone()).raw_score(&w);
        let fast = FastSst::new(c.clone()).raw_score(&w);
        prop_assert!((0.0..=1.0).contains(&classic), "classic {classic}");
        prop_assert!((0.0..=1.0).contains(&robust), "robust {robust}");
        prop_assert!((0.0..=1.0).contains(&fast), "fast {fast}");
    }

    /// Filtered scores are finite and non-negative on arbitrary data.
    #[test]
    fn filtered_scores_finite(w in any_window(34)) {
        let c = SstConfig::paper_default();
        let robust = RobustSst::new(c.clone()).score_window(&w);
        let fast = FastSst::new(c).score_window(&w);
        prop_assert!(robust.is_finite() && robust >= 0.0);
        prop_assert!(fast.is_finite() && fast >= 0.0);
    }

    /// Scores are invariant under affine rescaling of the KPI (the
    /// standardization contract: a KPI in bytes and the same KPI in MB must
    /// score identically).
    #[test]
    fn scale_invariance(
        w in any_window(34),
        scale in 0.01..1000.0f64,
        offset in -1e5..1e5f64,
    ) {
        let c = SstConfig::paper_default();
        let scorer = FastSst::new(c);
        let transformed: Vec<f64> = w.iter().map(|x| x * scale + offset).collect();
        let a = scorer.score_window(&w);
        let b = scorer.score_window(&transformed);
        prop_assert!((a - b).abs() < 1e-5 * (1.0 + a.abs()), "{a} vs {b}");
    }

    /// A constant window scores exactly zero for every variant.
    #[test]
    fn constant_scores_zero(level in -1e6..1e6f64) {
        let c = SstConfig::paper_default();
        let w = vec![level; c.window_len()];
        prop_assert_eq!(ClassicSst::new(c.clone()).score_window(&w), 0.0);
        prop_assert_eq!(RobustSst::new(c.clone()).score_window(&w), 0.0);
        prop_assert_eq!(FastSst::new(c).score_window(&w), 0.0);
    }

    /// Both eigenvector-selection policies stay numerically sane.
    #[test]
    fn both_selections_finite(w in any_window(34)) {
        for sel in [EigSelection::Largest, EigSelection::Smallest] {
            let mut c = SstConfig::paper_default();
            c.eig_selection = sel;
            let s = FastSst::new(c).score_window(&w);
            prop_assert!(s.is_finite() && s >= 0.0);
        }
    }

    /// Alternative window sizes (the paper's quick/precise presets) accept
    /// their own window lengths.
    #[test]
    fn preset_window_lengths(seed in any::<u32>()) {
        for c in [SstConfig::quick(), SstConfig::precise()] {
            let w: Vec<f64> = (0..c.window_len())
                .map(|i| ((i as u32).wrapping_mul(seed | 1) % 1000) as f64)
                .collect();
            let s = FastSst::new(c).score_window(&w);
            prop_assert!(s.is_finite());
        }
    }
}
