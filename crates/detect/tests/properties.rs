//! Property-based tests for the detectors and the driver.

use funnel_detect::cusum::CusumDetector;
use funnel_detect::detector::{DetectorRunner, WindowScorer};
use funnel_detect::mrls::MrlsDetector;
use funnel_timeseries::series::TimeSeries;
use proptest::prelude::*;

/// A scorer that fires exactly on values above a cutoff — lets the driver's
/// threshold/persistence semantics be checked against a brute-force scan.
struct CutoffScorer;
impl WindowScorer for CutoffScorer {
    fn window_len(&self) -> usize {
        1
    }
    fn score(&self, window: &[f64]) -> f64 {
        window[0]
    }
    fn name(&self) -> &'static str {
        "cutoff"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The runner's events match a brute-force run-length scan.
    #[test]
    fn runner_matches_brute_force(
        values in prop::collection::vec(0.0..2.0f64, 5..120),
        threshold in 0.2..1.8f64,
        persistence in 1usize..9,
    ) {
        let series = TimeSeries::new(0, values.clone());
        let runner = DetectorRunner::new(CutoffScorer, threshold, persistence);
        let events = runner.run(&series);

        // Brute force: positions where a run of `persistence` consecutive
        // above-threshold samples first completes, re-armed after dips.
        let mut expected = Vec::new();
        let mut run = 0;
        let mut armed = true;
        for (i, &v) in values.iter().enumerate() {
            if v >= threshold {
                run += 1;
                if armed && run >= persistence {
                    expected.push(i as u64);
                    armed = false;
                }
            } else {
                run = 0;
                armed = true;
            }
        }
        let got: Vec<u64> = events.iter().map(|e| e.declared_at).collect();
        prop_assert_eq!(got, expected);
    }

    /// Event invariants: declared_at ≥ first_exceeded_at, peak ≥ threshold.
    #[test]
    fn event_invariants(
        values in prop::collection::vec(0.0..2.0f64, 5..120),
        threshold in 0.2..1.8f64,
        persistence in 1usize..9,
    ) {
        let series = TimeSeries::new(0, values);
        let runner = DetectorRunner::new(CutoffScorer, threshold, persistence);
        for e in runner.run(&series) {
            prop_assert!(e.declared_at >= e.first_exceeded_at);
            prop_assert_eq!(e.declared_at - e.first_exceeded_at, persistence as u64 - 1);
            prop_assert!(e.peak_score >= threshold);
        }
    }

    /// The rank-based CUSUM statistic is invariant under strictly monotone
    /// transforms of the data (it only sees ranks).
    #[test]
    fn rank_cusum_monotone_invariant(
        values in prop::collection::vec(-50.0..50.0f64, 60),
        scale in 0.1..10.0f64,
        offset in -100.0..100.0f64,
    ) {
        let d = CusumDetector::paper_default();
        let transformed: Vec<f64> = values.iter().map(|x| x * scale + offset).collect();
        let a = d.score(&values);
        let b = d.score(&transformed);
        // Ranks (and the rank-seeded bootstrap) are identical under strictly
        // increasing transforms, so the scores match exactly.
        prop_assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    /// MRLS score is finite and non-negative-ish on arbitrary data, and
    /// invariant under affine rescaling (robust standardization contract).
    #[test]
    fn mrls_affine_invariant(
        values in prop::collection::vec(-100.0..100.0f64, 32),
        scale in 0.1..100.0f64,
        offset in -1000.0..1000.0f64,
    ) {
        let d = MrlsDetector::paper_default();
        let transformed: Vec<f64> = values.iter().map(|x| x * scale + offset).collect();
        let a = d.score(&values);
        let b = d.score(&transformed);
        prop_assert!(a.is_finite() && b.is_finite());
        prop_assert!((a - b).abs() < 1e-5 * (1.0 + a.abs()), "{a} vs {b}");
    }
}
