//! Change detection for FUNNEL: the detector abstraction, the sliding-window
//! driver with the paper's 7-minute persistence rule, and the two published
//! baselines FUNNEL is evaluated against.
//!
//! * [`detector`] — [`WindowScorer`] (a pure window → score function),
//!   [`DetectorRunner`] (threshold + persistence + re-arm logic), and
//!   [`ChangeEvent`].
//! * [`sst_adapter`] — wraps the `funnel-sst` scorers as [`WindowScorer`]s.
//! * [`cusum`] — the CUmulative SUM detector used by MERCURY
//!   (SIGCOMM 2010), the paper's "long detection delay" baseline.
//! * [`mrls`] — Multiscale Robust Local Subspace, the PRISM (CoNEXT 2011)
//!   detector: fast but SVD-iteration-heavy and spike-sensitive.
//! * [`delay`] — detection-delay accounting against ground-truth onsets
//!   (paper §4.4).
//!
//! The paper's evaluation window widths are exposed as constants:
//! `W_FUNNEL = 34`, `W_MRLS = 32`, `W_CUSUM = 60` (§4.1).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cusum;
pub mod delay;
pub mod detector;
pub mod mrls;
pub mod sst_adapter;
pub mod wow;

pub use cusum::CusumDetector;
pub use delay::{detection_delay, DelayOutcome};
pub use detector::{ChangeEvent, DetectorRunner, MaskedRun, WindowScorer};
pub use mrls::{MrlsDetector, ScaleAggregation};
pub use sst_adapter::SstDetector;
pub use wow::WowDetector;

/// Sliding-window width used for FUNNEL in the paper's evaluation (§4.1).
pub const W_FUNNEL: usize = 34;
/// Sliding-window width used for MRLS in the paper's evaluation (§4.1).
pub const W_MRLS: usize = 32;
/// Sliding-window width used for CUSUM in the paper's evaluation (§4.1).
pub const W_CUSUM: usize = 60;
/// The persistence threshold (minutes) FUNNEL uses to declare a level shift
/// or ramp rather than a one-off event (§4.1).
pub const PERSISTENCE_MINUTES: usize = 7;
