//! CUSUM — the MERCURY baseline (Mahimkar et al., SIGCOMM 2010).
//!
//! MERCURY detects upgrade-induced behaviour changes with a two-sided
//! CUmulative SUM over a standardized window. The paper's critique (§1, §3.2)
//! is twofold: the cumulative sum "may take a long time before it exceeds
//! the threshold" (long detection delay — hence its best window width in the
//! evaluation is `W = 60`, almost double FUNNEL's), and it "suffers from low
//! accuracy in the face of KPIs with strong seasonality" because diurnal
//! drift between the baseline and test halves of the window accumulates just
//! like a real shift.
//!
//! Implementation: the leading `baseline_len` samples of each window
//! estimate a mean/σ baseline; the remaining samples are standardized
//! against it and fed through the classic two-sided recursion
//! `S⁺ ← max(0, S⁺ + z − k)`, `S⁻ ← max(0, S⁻ − z − k)`. The window score
//! is the largest excursion of either sum.

use crate::detector::WindowScorer;
use funnel_timeseries::stats::{mean, population_std};

/// Two-sided windowed CUSUM detector with MERCURY's bootstrap significance
/// test, in two variants:
///
/// * **rank-based** (the default, truest to MERCURY's non-parametric
///   design): the statistic is the peak |cumulative sum| of the window's
///   centered ranks. It is maximized when a change sits *inside* the
///   window, which is precisely why CUSUM needs the change well into its
///   60-minute window before declaring — the paper's "long detection
///   delay".
/// * **parametric** baseline/test: the leading half estimates mean/σ, the
///   trailing half runs the textbook two-sided recursion
///   `S⁺ ← max(0, S⁺ + z − k)`.
#[derive(Debug, Clone)]
pub struct CusumDetector {
    window_len: usize,
    baseline_len: usize,
    /// Drift (slack) per step, in σ units (parametric variant); the
    /// textbook 0.5 detects 1σ shifts fastest.
    drift: f64,
    /// Bootstrap resamples for the significance denominator (`None`
    /// disables bootstrapping and returns the raw statistic).
    bootstrap: Option<usize>,
    /// Whether to use the rank-based whole-window statistic.
    rank_based: bool,
}

impl CusumDetector {
    /// Creates MERCURY's rank-based CUSUM over windows of `window_len`
    /// samples with a 200-resample bootstrap (enough for a stable 95 %
    /// quantile at a fraction of the original's cost).
    ///
    /// # Panics
    ///
    /// Panics if `window_len < 4`.
    pub fn new(window_len: usize) -> Self {
        assert!(window_len >= 4, "window too short for CUSUM");
        Self {
            window_len,
            baseline_len: window_len / 2,
            drift: 0.5,
            bootstrap: Some(200),
            rank_based: true,
        }
    }

    /// The paper's evaluation configuration (`W = 60`).
    pub fn paper_default() -> Self {
        Self::new(crate::W_CUSUM)
    }

    /// The parametric baseline/test variant.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ baseline_len ≤ window_len − 2` and
    /// `window_len ≥ 4`.
    pub fn with_params(
        window_len: usize,
        baseline_len: usize,
        drift: f64,
        bootstrap: Option<usize>,
    ) -> Self {
        assert!(window_len >= 4, "window too short for CUSUM");
        assert!(
            (2..=window_len - 2).contains(&baseline_len),
            "baseline must leave at least 2 test samples"
        );
        Self {
            window_len,
            baseline_len,
            drift,
            bootstrap,
            rank_based: false,
        }
    }

    /// Peak two-sided excursion of the standardized test segment.
    fn peak_excursion(&self, test_z: impl Iterator<Item = f64>) -> f64 {
        let mut s_pos = 0.0f64;
        let mut s_neg = 0.0f64;
        let mut peak = 0.0f64;
        for z in test_z {
            s_pos = (s_pos + z - self.drift).max(0.0);
            s_neg = (s_neg - z - self.drift).max(0.0);
            peak = peak.max(s_pos).max(s_neg);
        }
        peak
    }
}

/// Average ranks (ties averaged), 1-based.
fn ranks(window: &[f64]) -> Vec<f64> {
    let n = window.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| window[a].total_cmp(&window[b]));
    let mut r = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Tie group [i, j).
        let mut j = i + 1;
        while j < n && window[order[j]] == window[order[i]] {
            j += 1;
        }
        let avg = (i + j + 1) as f64 / 2.0; // mean of 1-based ranks i+1..=j
        for &idx in &order[i..j] {
            r[idx] = avg;
        }
        i = j;
    }
    r
}

/// Peak |cumulative sum| of centered ranks, normalized to O(1):
/// `max_t |Σ_{i≤t} (r_i − (n+1)/2)| / (n^{3/2}/4)`.
fn rank_cusum_statistic(ranks: &[f64]) -> f64 {
    let n = ranks.len() as f64;
    let center = (n + 1.0) / 2.0;
    let mut acc = 0.0f64;
    let mut peak = 0.0f64;
    for &r in ranks {
        acc += r - center;
        peak = peak.max(acc.abs());
    }
    peak / (n * n.sqrt() / 4.0)
}

/// splitmix64 step for the deterministic bootstrap shuffles.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl WindowScorer for CusumDetector {
    fn window_len(&self) -> usize {
        self.window_len
    }

    /// Without bootstrap: the raw statistic (peak rank-cusum, or peak
    /// excursion in σ units for the parametric variant). With bootstrap
    /// (MERCURY's significance test): the observed statistic divided by the
    /// 95th percentile of statistics over order-shuffled windows — a score
    /// of 1.0 means "as large as the 95 % quantile under the no-change
    /// hypothesis". Shuffles are deterministic in the window contents.
    fn score(&self, window: &[f64]) -> f64 {
        assert_eq!(
            window.len(),
            self.window_len,
            "CUSUM window length mismatch"
        );

        if self.rank_based {
            // Compute ranks once; shuffling the window is equivalent to
            // shuffling the rank vector.
            let mut r = ranks(window);
            let observed = rank_cusum_statistic(&r);
            let Some(n_boot) = self.bootstrap else {
                return observed;
            };
            if observed == 0.0 {
                return 0.0;
            }
            // Seed from the *ranks*, keeping the whole scorer invariant
            // under monotone transforms of the data.
            let mut state = 0xFEED_u64;
            for v in &r {
                state = mix(state ^ v.to_bits());
            }
            let mut boots = Vec::with_capacity(n_boot);
            for _ in 0..n_boot {
                for i in (1..r.len()).rev() {
                    state = mix(state);
                    let j = (state % (i as u64 + 1)) as usize;
                    r.swap(i, j);
                }
                boots.push(rank_cusum_statistic(&r));
            }
            boots.sort_by(|a, b| a.total_cmp(b));
            let q95 = boots[(boots.len() as f64 * 0.95) as usize].max(1e-9);
            return observed / q95;
        }

        let stat = |w: &[f64]| -> f64 {
            let (baseline, test) = w.split_at(self.baseline_len);
            let mu = mean(baseline);
            let sigma = population_std(baseline).max(1e-9);
            self.peak_excursion(test.iter().map(|x| (x - mu) / sigma))
        };
        let observed = stat(window);

        let Some(n_boot) = self.bootstrap else {
            return observed;
        };
        if observed == 0.0 {
            return 0.0;
        }

        // MERCURY's significance test: shuffle the *whole* window (under
        // the no-change hypothesis all samples are exchangeable, so the
        // baseline/test split is arbitrary) and recompute the statistic.
        // Deterministic seed from the window contents.
        let mut state = 0xFEED_u64;
        for v in window {
            state = mix(state ^ v.to_bits());
        }
        let mut boots = Vec::with_capacity(n_boot);
        let mut shuffled = window.to_vec();
        for _ in 0..n_boot {
            // Fisher–Yates with the splitmix stream.
            for i in (1..shuffled.len()).rev() {
                state = mix(state);
                let j = (state % (i as u64 + 1)) as usize;
                shuffled.swap(i, j);
            }
            boots.push(stat(&shuffled));
        }
        boots.sort_by(|a, b| a.total_cmp(b));
        let q95 = boots[(boots.len() as f64 * 0.95) as usize].max(1e-9);
        observed / q95
    }

    fn name(&self) -> &'static str {
        "CUSUM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(pre: &[f64], post: &[f64]) -> Vec<f64> {
        let mut v = pre.to_vec();
        v.extend_from_slice(post);
        v
    }

    /// Raw (bootstrap-free) detector for excursion-semantics tests.
    fn raw(window_len: usize) -> CusumDetector {
        CusumDetector::with_params(window_len, window_len / 2, 0.5, None)
    }

    #[test]
    fn flat_window_scores_near_zero() {
        let d = raw(20);
        let w: Vec<f64> = (0..20).map(|i| 5.0 + 0.01 * ((i % 3) as f64)).collect();
        assert!(d.score(&w) < 2.0);
    }

    #[test]
    fn upward_shift_accumulates() {
        let d = raw(20);
        let pre: Vec<f64> = (0..10)
            .map(|i| 5.0 + 0.1 * ((i % 5) as f64 - 2.0))
            .collect();
        let post: Vec<f64> = (0..10)
            .map(|i| 8.0 + 0.1 * ((i % 5) as f64 - 2.0))
            .collect();
        let score = d.score(&window(&pre, &post));
        assert!(score > 10.0, "score {score}");
    }

    #[test]
    fn downward_shift_also_detected() {
        let d = raw(20);
        let pre: Vec<f64> = (0..10)
            .map(|i| 5.0 + 0.1 * ((i % 5) as f64 - 2.0))
            .collect();
        let post: Vec<f64> = pre.iter().map(|x| x - 3.0).collect();
        assert!(d.score(&window(&pre, &post)) > 10.0);
    }

    #[test]
    fn score_grows_with_time_since_shift() {
        // The "long detection delay" property: the cumulative sum needs time.
        let d = raw(20);
        let pre: Vec<f64> = (0..10)
            .map(|i| 5.0 + 0.2 * ((i % 5) as f64 - 2.0))
            .collect();
        let shift = 1.0;
        // Shift visible for 2 samples vs for 10 samples.
        let mut short = pre.clone();
        short.extend((0..8).map(|i| 5.0 + 0.2 * ((i % 5) as f64 - 2.0)));
        short.extend([5.0 + shift, 5.0 + shift]);
        let mut long = pre.clone();
        long.extend(std::iter::repeat_n(5.0 + shift, 10));
        assert!(d.score(&long) > d.score(&short));
    }

    #[test]
    fn seasonal_drift_fools_cusum() {
        // A slow ramp (diurnal drift) with no real change still accumulates,
        // and survives the bootstrap: shuffling destroys the ramp's
        // cumulative structure, so the observed excursion dwarfs the q95.
        let d = CusumDetector::new(60);
        let w: Vec<f64> = (0..60).map(|i| 100.0 + 0.5 * i as f64).collect();
        assert!(d.score(&w) > 1.5, "CUSUM should (wrongly) fire on drift");
    }

    #[test]
    fn bootstrap_score_is_deterministic_and_significant_on_shift() {
        let d = CusumDetector::new(20);
        let pre: Vec<f64> = (0..10)
            .map(|i| 5.0 + 0.1 * ((i % 5) as f64 - 2.0))
            .collect();
        let post: Vec<f64> = (0..10)
            .map(|i| 8.0 + 0.1 * ((i % 5) as f64 - 2.0))
            .collect();
        let w = window(&pre, &post);
        let a = d.score(&w);
        let b = d.score(&w);
        assert_eq!(a, b, "bootstrap must be deterministic");
        assert!(
            a > 1.0,
            "a 30σ mid-window shift must be significant, got {a}"
        );
    }

    #[test]
    fn bootstrap_insignificant_on_exchangeable_noise() {
        // i.i.d.-ish noise: shuffling is distribution-preserving, so the
        // observed statistic sits inside the bootstrap distribution.
        let d = CusumDetector::new(20);
        let w: Vec<f64> = (0..20)
            .map(|i| 5.0 + ((i * 2654435761usize) % 97) as f64 / 97.0 - 0.5)
            .collect();
        let s = d.score(&w);
        assert!(s < 1.5, "score {s}");
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[3.0, 1.0, 3.0, 2.0]);
        // sorted: 1(rank1), 2(rank2), 3,3(ranks 3,4 → 3.5 each)
        assert_eq!(r, vec![3.5, 1.0, 3.5, 2.0]);
    }

    #[test]
    fn rank_statistic_peaks_for_mid_window_change() {
        // The rank-cusum statistic grows as the change point approaches the
        // window center — the mechanism behind CUSUM's detection delay.
        let stat_for = |split: usize| -> f64 {
            let mut w = vec![0.0; 40];
            for x in w.iter_mut().skip(split) {
                *x = 10.0;
            }
            // Tiny *pseudo-random* jitter so ranks are unique without the
            // jitter itself forming a monotone (rampy) sequence.
            for (i, x) in w.iter_mut().enumerate() {
                *x += ((i * 2654435761) % 97) as f64 * 1e-6;
            }
            rank_cusum_statistic(&ranks(&w))
        };
        let early = stat_for(36); // change only 4 samples into the window
        let mid = stat_for(20);
        assert!(mid > 2.0 * early, "mid {mid} vs early {early}");
    }

    #[test]
    fn rank_based_needs_change_inside_window() {
        // A shift covering only the last 3 of 60 samples is not yet
        // significant; the same shift at mid-window is. This is the delay
        // property Fig. 5 shows.
        let d = CusumDetector::paper_default();
        let noise = |i: usize| ((i * 2654435761) % 89) as f64 / 89.0;
        let fresh: Vec<f64> = (0..60)
            .map(|i| noise(i) + if i >= 57 { 8.0 } else { 0.0 })
            .collect();
        let established: Vec<f64> = (0..60)
            .map(|i| noise(i) + if i >= 30 { 8.0 } else { 0.0 })
            .collect();
        assert!(d.score(&fresh) < d.score(&established));
        assert!(d.score(&established) > 1.0);
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn bad_baseline_rejected() {
        let _ = CusumDetector::with_params(10, 9, 0.5, None);
    }
}
