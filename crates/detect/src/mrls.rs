//! MRLS — Multiscale Robust Local Subspace, the PRISM baseline
//! (Mahimkar et al., CoNEXT 2011).
//!
//! PRISM detects maintenance-induced changes by fitting, at several time
//! scales, a *robust* low-rank subspace to the local trajectory matrix and
//! scoring the newest data by its residual against that subspace. The
//! robustness comes from an iteratively reweighted (l1-flavoured) SVD: each
//! iteration downweights columns with large residuals and refits, which is
//! "the iteration of Singular Value Decomposition … with l1-norm \[that\]
//! exhibits high computational complexity" per FUNNEL §1 — the very reason
//! FUNNEL rejects MRLS for million-KPI scale.
//!
//! This implementation reproduces both published behaviours the paper
//! leans on:
//!
//! * **cost** — `iterations × scales` dense SVDs per window;
//! * **spike sensitivity** — the newest column's residual spikes on any
//!   outlier, and the multiscale max keeps it ("MRLS was sensitive to
//!   spikes, and it was hardly feasible to modify MRLS to detect level
//!   shifts or ramp up/downs only", §4.2.1).

use crate::detector::WindowScorer;
use funnel_linalg::hankel::HankelMatrix;
use funnel_linalg::matrix::Mat;
use funnel_linalg::svd::svd;
use funnel_timeseries::stats::{mad, median};

/// How the per-scale residual scores combine into the final score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAggregation {
    /// Largest scale score: most sensitive, fires the instant any scale
    /// sees the newest column as anomalous.
    Max,
    /// Mean across scales: PRISM's composite behaviour — coarse scales need
    /// several post-change samples before their residual builds, so level
    /// shifts are declared only once established, while a sharp spike still
    /// registers at every scale simultaneously.
    Mean,
    /// Smallest scale score: strict cross-scale agreement.
    Min,
}

/// The MRLS detector.
#[derive(Debug, Clone)]
pub struct MrlsDetector {
    window_len: usize,
    /// Sub-window (Hankel row) sizes, one per scale.
    scales: Vec<usize>,
    /// Rank of the local subspace.
    rank: usize,
    /// IRLS iterations (each one is an SVD per scale).
    iterations: usize,
    /// Cross-scale combination.
    aggregation: ScaleAggregation,
}

impl MrlsDetector {
    /// Creates MRLS over windows of `window_len` with dyadic scales
    /// `window_len/8, /4, /2` (clamped to ≥ 2), rank-2 subspaces, 10
    /// IRLS iterations, and mean cross-scale aggregation.
    ///
    /// # Panics
    ///
    /// Panics if `window_len < 8`.
    pub fn new(window_len: usize) -> Self {
        assert!(window_len >= 8, "window too short for multiscale analysis");
        let scales = vec![
            (window_len / 8).max(2),
            (window_len / 4).max(3),
            (window_len / 2).max(4),
        ];
        Self {
            window_len,
            scales,
            rank: 2,
            iterations: 10,
            aggregation: ScaleAggregation::Mean,
        }
    }

    /// Overrides the cross-scale aggregation.
    pub fn with_aggregation(mut self, aggregation: ScaleAggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// The paper's evaluation configuration (`W = 32`).
    pub fn paper_default() -> Self {
        Self::new(crate::W_MRLS)
    }

    /// Full-control constructor.
    ///
    /// # Panics
    ///
    /// Panics when a scale leaves fewer than 2 Hankel columns, or
    /// `iterations == 0`, or `rank == 0`.
    pub fn with_params(
        window_len: usize,
        scales: Vec<usize>,
        rank: usize,
        iterations: usize,
    ) -> Self {
        assert!(
            rank > 0 && iterations > 0,
            "rank and iterations must be positive"
        );
        for &s in &scales {
            assert!(s >= 2, "scale must be at least 2");
            assert!(
                window_len > s,
                "scale {s} leaves no columns in window {window_len}"
            );
        }
        Self {
            window_len,
            scales,
            rank,
            iterations,
            aggregation: ScaleAggregation::Mean,
        }
    }

    /// Robust residual score of the newest column at one scale.
    ///
    /// The local subspace is fit (robustly) to the *past* columns only — if
    /// the newest column took part in the fit, a large anomaly would drag
    /// the weighted subspace onto itself and score zero. The newest column
    /// is then judged by its residual in robust units of the past columns'
    /// residuals.
    fn scale_score(&self, window: &[f64], omega: usize) -> f64 {
        let delta = window.len() - omega + 1;
        let h = HankelMatrix::new(window, omega, delta).to_dense();
        let cols = delta;
        if cols < 3 {
            return 0.0;
        }
        let past_cols = cols - 1;
        let rank = self.rank.min(omega).min(past_cols);

        // IRLS over the past columns: fit a subspace to weighted columns,
        // reweight by residual (the l1-flavoured robustification).
        let mut weights = vec![1.0; past_cols];
        let mut residuals = vec![0.0; past_cols];
        let mut basis = self.weighted_subspace(&h, &weights, past_cols, rank);
        for _ in 0..self.iterations {
            for (j, r) in residuals.iter_mut().enumerate() {
                *r = column_residual(&h, &basis, j);
            }
            let eps = median(&residuals).max(1e-9) * 0.1 + 1e-12;
            for (w, r) in weights.iter_mut().zip(&residuals) {
                *w = 1.0 / (r + eps);
            }
            basis = self.weighted_subspace(&h, &weights, past_cols, rank);
        }
        for (j, r) in residuals.iter_mut().enumerate() {
            *r = column_residual(&h, &basis, j);
        }

        // Score: newest column's residual in robust units of the past ones.
        let newest = column_residual(&h, &basis, cols - 1);
        let scale = mad(&residuals).max(0.1 * median(&residuals)).max(1e-9);
        (newest - median(&residuals)) / scale
    }

    /// Rank-`rank` left subspace of the first `ncols` columns, weighted.
    fn weighted_subspace(&self, h: &Mat, weights: &[f64], ncols: usize, rank: usize) -> Mat {
        let mut wm = Mat::zeros(h.rows(), ncols);
        for j in 0..ncols {
            for i in 0..h.rows() {
                wm[(i, j)] = h[(i, j)] * weights[j];
            }
        }
        svd(&wm).left_vectors(rank)
    }
}

/// Euclidean distance of column `j` of `h` from the span of `basis`.
fn column_residual(h: &Mat, basis: &Mat, j: usize) -> f64 {
    let col = h.col(j);
    let mut resid = col.clone();
    for b in 0..basis.cols() {
        let proj: f64 = (0..h.rows()).map(|i| basis[(i, b)] * col[i]).sum();
        for (i, r) in resid.iter_mut().enumerate() {
            *r -= proj * basis[(i, b)];
        }
    }
    // funnel-lint: allow(float-accumulation-order): fold over a Vec in fixed index order, not a hashed container
    resid.iter().map(|r| r * r).sum::<f64>().sqrt()
}

impl WindowScorer for MrlsDetector {
    fn window_len(&self) -> usize {
        self.window_len
    }

    fn score(&self, window: &[f64]) -> f64 {
        assert_eq!(window.len(), self.window_len, "MRLS window length mismatch");
        // Robust-standardize so thresholds transfer across KPI magnitudes.
        let m = median(window);
        let s = mad(window).max(1e-9);
        let std_window: Vec<f64> = window.iter().map(|x| (x - m) / s).collect();
        let scores = self
            .scales
            .iter()
            .map(|&omega| self.scale_score(&std_window, omega));
        match self.aggregation {
            ScaleAggregation::Max => scores.fold(0.0, f64::max),
            ScaleAggregation::Min => scores.fold(f64::INFINITY, f64::min),
            ScaleAggregation::Mean => {
                let n = self.scales.len().max(1) as f64;
                // Compensated, so the mean is insensitive to scale order.
                funnel_timeseries::stats::stable_sum(scores) / n
            }
        }
    }

    fn name(&self) -> &'static str {
        "MRLS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wiggle(i: usize) -> f64 {
        0.15 * ((i as f64) * 1.1).sin() + 0.1 * ((i as f64) * 0.37).cos()
    }

    #[test]
    fn flat_window_scores_low() {
        let d = MrlsDetector::paper_default();
        let w: Vec<f64> = (0..32).map(|i| 10.0 + wiggle(i)).collect();
        let s = d.score(&w);
        assert!(s < 5.0, "score {s}");
    }

    #[test]
    fn recent_level_shift_scores_high() {
        let d = MrlsDetector::paper_default();
        let w: Vec<f64> = (0..32)
            .map(|i| 10.0 + wiggle(i) + if i >= 28 { 6.0 } else { 0.0 })
            .collect();
        let s = d.score(&w);
        assert!(s > 5.0, "score {s}");
    }

    #[test]
    fn spike_sensitivity_reproduced() {
        // A one-sample spike at the end should fire — the paper's stated
        // MRLS weakness on variable KPIs.
        let d = MrlsDetector::paper_default();
        let mut w: Vec<f64> = (0..32).map(|i| 10.0 + wiggle(i)).collect();
        *w.last_mut().unwrap() += 8.0;
        let s = d.score(&w);
        assert!(s > 5.0, "score {s}");
    }

    #[test]
    fn irls_downweights_contaminated_columns() {
        // Baseline contamination: an old spike inside the window should not
        // prevent the robust fit from flagging a real new shift.
        let d = MrlsDetector::paper_default();
        let mut w: Vec<f64> = (0..32)
            .map(|i| 10.0 + wiggle(i) + if i >= 28 { 6.0 } else { 0.0 })
            .collect();
        w[5] += 9.0; // old outlier
        let s = d.score(&w);
        assert!(s > 3.0, "contaminated score {s}");
    }

    #[test]
    fn multiscale_uses_all_scales() {
        let d = MrlsDetector::with_params(32, vec![4], 2, 5);
        let w: Vec<f64> = (0..32).map(|i| 10.0 + wiggle(i)).collect();
        assert!(d.score(&w).is_finite());
    }

    #[test]
    #[should_panic(expected = "leaves no columns")]
    fn oversized_scale_rejected() {
        let _ = MrlsDetector::with_params(8, vec![8], 2, 5);
    }
}
