//! Adapters exposing the `funnel-sst` scorers as [`WindowScorer`]s.

use crate::detector::WindowScorer;
use funnel_sst::{ClassicSst, FastSst, RobustSst, SstScorer};

/// Newtype adapter: any SST scorer as a [`WindowScorer`].
#[derive(Debug, Clone)]
pub struct SstDetector<S> {
    inner: S,
    name: &'static str,
}

impl SstDetector<FastSst> {
    /// The detector FUNNEL deploys: IKA-accelerated robust SST.
    pub fn fast(inner: FastSst) -> Self {
        Self {
            inner,
            name: "FUNNEL-SST",
        }
    }
}

impl SstDetector<RobustSst> {
    /// Exact robust SST (the "Improved SST" row of Table 1 when run without
    /// DiD).
    pub fn robust(inner: RobustSst) -> Self {
        Self {
            inner,
            name: "Improved-SST",
        }
    }
}

impl SstDetector<ClassicSst> {
    /// Classic SST (pre-§3.2.2 formulation).
    pub fn classic(inner: ClassicSst) -> Self {
        Self {
            inner,
            name: "Classic-SST",
        }
    }
}

impl<S> SstDetector<S> {
    /// The wrapped scorer.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: SstScorer> WindowScorer for SstDetector<S> {
    fn window_len(&self) -> usize {
        self.inner.config().window_len()
    }

    fn score(&self, window: &[f64]) -> f64 {
        self.inner.score_window(window)
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorRunner;
    use funnel_sst::SstConfig;
    use funnel_timeseries::series::TimeSeries;

    #[test]
    fn fast_sst_detects_step_through_driver() {
        let scorer = SstDetector::fast(FastSst::new(SstConfig::paper_default()));
        assert_eq!(scorer.window_len(), 34);
        assert_eq!(scorer.name(), "FUNNEL-SST");

        let mut v: Vec<f64> = (0..80)
            .map(|i| 10.0 + 0.2 * ((i as f64) * 0.8).sin())
            .collect();
        for x in v.iter_mut().skip(40) {
            *x += 8.0;
        }
        let series = TimeSeries::new(0, v);
        let runner = DetectorRunner::new(scorer, 0.3, 3);
        let events = runner.run(&series);
        assert!(!events.is_empty(), "step not detected");
        // Declared after the onset at minute 40.
        assert!(events[0].declared_at >= 40);
    }

    #[test]
    fn quiet_series_stays_quiet() {
        let scorer = SstDetector::robust(RobustSst::new(SstConfig::paper_default()));
        let v: Vec<f64> = (0..80)
            .map(|i| 10.0 + 0.2 * ((i as f64) * 0.8).sin())
            .collect();
        let runner = DetectorRunner::new(scorer, 0.5, 3);
        assert!(runner.run(&TimeSeries::new(0, v)).is_empty());
    }

    #[test]
    fn classic_adapter_exposes_config_width() {
        let scorer = SstDetector::classic(ClassicSst::new(SstConfig::quick()));
        assert_eq!(scorer.window_len(), SstConfig::quick().window_len());
    }
}
