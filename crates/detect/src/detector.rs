//! Detector abstraction and the sliding-window driver.
//!
//! Every method in the paper's evaluation "took a time window of x(i), …,
//! x(i+W) as its input" and "the time window moves forward every minute"
//! (§4.1). [`WindowScorer`] is that pure function; [`DetectorRunner`] adds
//! the operational policy: a declaration threshold, the 7-minute persistence
//! rule that separates level shifts and ramps from one-off events, and
//! re-arming so that one behaviour change produces one event.

use funnel_timeseries::mask::CoverageMask;
use funnel_timeseries::series::{MinuteBin, TimeSeries};
use funnel_timeseries::window::SlidingWindows;

/// A pure window → change-score function.
pub trait WindowScorer {
    /// The window width `W` this scorer expects.
    fn window_len(&self) -> usize;

    /// Scores one window of exactly [`WindowScorer::window_len`] samples;
    /// higher means "more evidence of a behaviour change at/near the end of
    /// this window".
    fn score(&self, window: &[f64]) -> f64;

    /// A short name for tables and logs.
    fn name(&self) -> &'static str;
}

/// A declared behaviour change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangeEvent {
    /// Absolute minute at which the change was *declared* (the decision
    /// minute of the window that completed the persistence run).
    pub declared_at: MinuteBin,
    /// Absolute minute of the first window in the persistent run — the
    /// detector's estimate of when the change became visible.
    pub first_exceeded_at: MinuteBin,
    /// Peak score observed during the persistent run.
    pub peak_score: f64,
}

/// Result of a coverage-aware detector run ([`DetectorRunner::run_masked`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MaskedRun {
    /// Declared changes (only from windows with adequate coverage).
    pub events: Vec<ChangeEvent>,
    /// Windows skipped because their measured-minute coverage fell below
    /// the threshold. A skipped window breaks any persistence run in
    /// progress: interpolated data must not count toward the 7-minute rule.
    pub skipped_windows: usize,
    /// Total windows the series yielded.
    pub total_windows: usize,
    /// Events refused by [`DetectorRunner::run_masked_gap_aware`] because
    /// their change point fell inside — or within one window-length of —
    /// a contiguous coverage gap at least `min_gap` minutes long. Nonzero
    /// means "a change may be hiding behind an unhealed partition": the
    /// caller should report `Inconclusive` and re-assess after backfill,
    /// not declare the item clean.
    pub suppressed_events: usize,
}

impl MaskedRun {
    /// Fraction of windows that were scoreable (1.0 = nothing skipped,
    /// 0.0 when the series yielded no windows at all).
    pub fn scored_fraction(&self) -> f64 {
        if self.total_windows == 0 {
            0.0
        } else {
            1.0 - self.skipped_windows as f64 / self.total_windows as f64
        }
    }
}

/// Threshold + persistence + re-arm driver around a [`WindowScorer`].
#[derive(Debug, Clone)]
pub struct DetectorRunner<S> {
    scorer: S,
    threshold: f64,
    persistence: usize,
}

impl<S: WindowScorer> DetectorRunner<S> {
    /// Creates a runner declaring a change after `persistence` consecutive
    /// windows score at or above `threshold`. `persistence` is clamped to a
    /// minimum of 1.
    pub fn new(scorer: S, threshold: f64, persistence: usize) -> Self {
        Self {
            scorer,
            threshold,
            persistence: persistence.max(1),
        }
    }

    /// The wrapped scorer.
    pub fn scorer(&self) -> &S {
        &self.scorer
    }

    /// The declaration threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The persistence requirement in windows (= minutes at 1-min bins).
    pub fn persistence(&self) -> usize {
        self.persistence
    }

    /// Runs the detector over a whole series, returning every declared
    /// change. After a declaration the runner re-arms once the score falls
    /// below threshold, so a single long-lived shift yields a single event.
    pub fn run(&self, series: &TimeSeries) -> Vec<ChangeEvent> {
        let _span = funnel_obs::span!(funnel_obs::names::SPAN_DETECT);
        let mut events = Vec::new();
        let mut run_len = 0usize;
        let mut run_start: MinuteBin = 0;
        let mut run_peak = 0.0f64;
        let mut armed = true;

        for w in SlidingWindows::new(series, self.scorer.window_len()) {
            let s = self.scorer.score(w.values);
            if s >= self.threshold {
                if run_len == 0 {
                    run_start = w.decision_minute;
                    run_peak = s;
                } else {
                    run_peak = run_peak.max(s);
                }
                run_len += 1;
                if armed && run_len >= self.persistence {
                    events.push(ChangeEvent {
                        declared_at: w.decision_minute,
                        first_exceeded_at: run_start,
                        peak_score: run_peak,
                    });
                    armed = false;
                }
            } else {
                run_len = 0;
                armed = true;
            }
        }
        funnel_obs::counter_add(funnel_obs::names::DETECT_CHANGE_POINTS, events.len() as u64);
        events
    }

    /// Coverage-aware [`DetectorRunner::run`]: windows whose fraction of
    /// truly measured minutes (per `mask`) falls below `min_coverage` are
    /// skipped instead of scored — forward-filled gaps carry no evidence,
    /// and scoring them manufactures both false positives (a fill plateau
    /// looks like a level shift ending) and false negatives (a real shift
    /// hidden inside a gap). Skipping a window also resets the persistence
    /// run, so a declaration always rests on `persistence` consecutive
    /// *measured* windows. With a fully-present mask the events are
    /// identical to [`DetectorRunner::run`].
    pub fn run_masked(
        &self,
        series: &TimeSeries,
        mask: &CoverageMask,
        min_coverage: f64,
    ) -> MaskedRun {
        let _span = funnel_obs::span!(funnel_obs::names::SPAN_DETECT);
        let width = self.scorer.window_len();
        // O(1) per-window coverage via prefix sums over the mask.
        let pfx = mask.prefix_counts();
        let coverage_of = |from: MinuteBin, to: MinuteBin| -> f64 {
            debug_assert!(from < to);
            let lo = from.clamp(mask.start(), mask.end());
            let hi = to.clamp(mask.start(), mask.end());
            let present = pfx[(hi - mask.start()) as usize] - pfx[(lo - mask.start()) as usize];
            f64::from(present) / (to - from) as f64
        };

        let mut out = MaskedRun {
            events: Vec::new(),
            skipped_windows: 0,
            total_windows: 0,
            suppressed_events: 0,
        };
        let mut run_len = 0usize;
        let mut run_start: MinuteBin = 0;
        let mut run_peak = 0.0f64;
        let mut armed = true;

        for w in SlidingWindows::new(series, width) {
            out.total_windows += 1;
            let first_minute = w.decision_minute + 1 - width as u64;
            if coverage_of(first_minute, w.decision_minute + 1) < min_coverage {
                out.skipped_windows += 1;
                // Too much interpolation to score; the persistence run is
                // broken, but a declared event stays declared (no re-arm —
                // a gap is not evidence the shift ended).
                run_len = 0;
                continue;
            }
            let s = self.scorer.score(w.values);
            if s >= self.threshold {
                if run_len == 0 {
                    run_start = w.decision_minute;
                    run_peak = s;
                } else {
                    run_peak = run_peak.max(s);
                }
                run_len += 1;
                if armed && run_len >= self.persistence {
                    out.events.push(ChangeEvent {
                        declared_at: w.decision_minute,
                        first_exceeded_at: run_start,
                        peak_score: run_peak,
                    });
                    armed = false;
                }
            } else {
                run_len = 0;
                armed = true;
            }
        }
        funnel_obs::counter_add(
            funnel_obs::names::DETECT_CHANGE_POINTS,
            out.events.len() as u64,
        );
        out
    }

    /// [`DetectorRunner::run_masked`] hardened against *correlated*
    /// outages: any declared change whose change point
    /// ([`ChangeEvent::first_exceeded_at`]) falls inside — or within one
    /// window-length of — a contiguous coverage gap of at least `min_gap`
    /// minutes is refused and counted in
    /// [`MaskedRun::suppressed_events`] instead of returned.
    ///
    /// Per-window coverage thresholds already handle scattered per-frame
    /// loss, but a partition leaves one long gap whose forward-filled
    /// plateau ends in a step artifact exactly where the heal lands; a
    /// change point bordering such a gap is indistinguishable from that
    /// artifact until backfill restores the span. `min_gap` distinguishes
    /// the two regimes (use the persistence length: a gap long enough to
    /// fake the persistence rule). `min_gap` is clamped to a minimum of 1.
    pub fn run_masked_gap_aware(
        &self,
        series: &TimeSeries,
        mask: &CoverageMask,
        min_coverage: f64,
        min_gap: u64,
    ) -> MaskedRun {
        let mut out = self.run_masked(series, mask, min_coverage);
        let guard = self.scorer.window_len() as u64;
        let gaps: Vec<(MinuteBin, MinuteBin)> = mask
            .gaps_in(series.start(), series.end())
            .into_iter()
            .filter(|&(s, e)| e - s >= min_gap.max(1))
            .collect();
        if gaps.is_empty() {
            return out;
        }
        let before = out.events.len();
        out.events.retain(|ev| {
            !gaps.iter().any(|&(s, e)| {
                ev.first_exceeded_at + guard >= s && ev.first_exceeded_at < e + guard
            })
        });
        out.suppressed_events = before - out.events.len();
        funnel_obs::counter_add(
            funnel_obs::names::DETECT_GAP_SUPPRESSED,
            out.suppressed_events as u64,
        );
        out
    }

    /// Convenience: whether the series contains at least one declared
    /// change, and if so the first event.
    pub fn first_change(&self, series: &TimeSeries) -> Option<ChangeEvent> {
        // Early-exit variant of `run` (stops at the first declaration).
        let mut run_len = 0usize;
        let mut run_start: MinuteBin = 0;
        let mut run_peak = 0.0f64;
        for w in SlidingWindows::new(series, self.scorer.window_len()) {
            let s = self.scorer.score(w.values);
            if s >= self.threshold {
                if run_len == 0 {
                    run_start = w.decision_minute;
                    run_peak = s;
                } else {
                    run_peak = run_peak.max(s);
                }
                run_len += 1;
                if run_len >= self.persistence {
                    return Some(ChangeEvent {
                        declared_at: w.decision_minute,
                        first_exceeded_at: run_start,
                        peak_score: run_peak,
                    });
                }
            } else {
                run_len = 0;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scores 1.0 whenever the window mean exceeds 5, else 0.
    struct MeanScorer;
    impl WindowScorer for MeanScorer {
        fn window_len(&self) -> usize {
            4
        }
        fn score(&self, window: &[f64]) -> f64 {
            let m = window.iter().sum::<f64>() / window.len() as f64;
            if m > 5.0 {
                1.0
            } else {
                0.0
            }
        }
        fn name(&self) -> &'static str {
            "mean"
        }
    }

    fn step_series(pre: usize, post: usize) -> TimeSeries {
        let mut v = vec![0.0; pre];
        v.extend(vec![10.0; post]);
        TimeSeries::new(0, v)
    }

    #[test]
    fn persistence_filters_short_excursions() {
        // A 4-sample bump yields exactly 3 consecutive windows with mean > 5
        // (window width 4); persistence 5 ⇒ no event.
        let mut v = vec![0.0; 10];
        v.extend(vec![10.0; 4]);
        v.extend(vec![0.0; 10]);
        let series = TimeSeries::new(0, v);
        let r = DetectorRunner::new(MeanScorer, 0.5, 5);
        assert!(r.run(&series).is_empty());
        // Persistence 1 catches it.
        let r1 = DetectorRunner::new(MeanScorer, 0.5, 1);
        assert_eq!(r1.run(&series).len(), 1);
    }

    #[test]
    fn declaration_time_includes_persistence_wait() {
        let series = step_series(10, 20);
        let r = DetectorRunner::new(MeanScorer, 0.5, 7);
        let events = r.run(&series);
        assert_eq!(events.len(), 1);
        let e = events[0];
        // First window with mean > 5: some minutes after onset (10);
        // declaration is persistence-1 windows later.
        assert_eq!(e.declared_at, e.first_exceeded_at + 6);
        assert!(e.peak_score >= 0.5);
    }

    #[test]
    fn rearm_produces_one_event_per_excursion() {
        let mut v = vec![0.0; 10];
        v.extend(vec![10.0; 10]);
        v.extend(vec![0.0; 10]);
        v.extend(vec![10.0; 10]);
        v.extend(vec![0.0; 5]);
        let series = TimeSeries::new(0, v);
        let r = DetectorRunner::new(MeanScorer, 0.5, 3);
        assert_eq!(r.run(&series).len(), 2);
    }

    #[test]
    fn long_shift_is_single_event() {
        let series = step_series(10, 50);
        let r = DetectorRunner::new(MeanScorer, 0.5, 7);
        assert_eq!(r.run(&series).len(), 1);
    }

    #[test]
    fn first_change_matches_run() {
        let series = step_series(10, 20);
        let r = DetectorRunner::new(MeanScorer, 0.5, 7);
        assert_eq!(r.first_change(&series), r.run(&series).first().copied());
        let quiet = TimeSeries::new(0, vec![0.0; 30]);
        assert_eq!(r.first_change(&quiet), None);
    }

    #[test]
    fn persistence_clamped_to_one() {
        let r = DetectorRunner::new(MeanScorer, 0.5, 0);
        assert_eq!(r.persistence(), 1);
    }

    #[test]
    fn full_mask_matches_unmasked_run() {
        let series = step_series(10, 20);
        let mask = CoverageMask::all_present(0, series.len());
        let r = DetectorRunner::new(MeanScorer, 0.5, 7);
        let masked = r.run_masked(&series, &mask, 0.8);
        assert_eq!(masked.events, r.run(&series));
        assert_eq!(masked.skipped_windows, 0);
        assert_eq!(masked.scored_fraction(), 1.0);
    }

    #[test]
    fn low_coverage_windows_are_skipped_not_scored() {
        let series = step_series(10, 20);
        // Nothing was really measured: every window must be skipped and no
        // change declared, even though the (filled) values contain a step.
        let mask = CoverageMask::new(0);
        let r = DetectorRunner::new(MeanScorer, 0.5, 7);
        let masked = r.run_masked(&series, &mask, 0.8);
        assert!(masked.events.is_empty());
        assert_eq!(masked.skipped_windows, masked.total_windows);
        assert_eq!(masked.scored_fraction(), 0.0);
    }

    #[test]
    fn gap_adjacent_change_point_is_suppressed() {
        // Real step at minute 30, and a 10-minute unhealed gap right before
        // it (20..30): the step's change point borders the gap, so it is
        // indistinguishable from the fill plateau ending — refused.
        let series = step_series(30, 30);
        let mut mask = CoverageMask::new(0);
        for minute in 0..series.len() as u64 {
            if !(20..30).contains(&minute) {
                mask.mark(minute);
            }
        }
        let r = DetectorRunner::new(MeanScorer, 0.5, 7);
        let plain = r.run_masked(&series, &mask, 0.5);
        assert_eq!(plain.events.len(), 1);
        assert_eq!(plain.suppressed_events, 0);
        let aware = r.run_masked_gap_aware(&series, &mask, 0.5, 7);
        assert!(aware.events.is_empty());
        assert_eq!(aware.suppressed_events, 1);
    }

    #[test]
    fn change_point_far_from_gap_survives_gap_awareness() {
        // Gap at 5..15, step at minute 40: window-length guard (4) does not
        // reach the change point, so the event stands.
        let series = step_series(40, 30);
        let mut mask = CoverageMask::new(0);
        for minute in 0..series.len() as u64 {
            if !(5..15).contains(&minute) {
                mask.mark(minute);
            }
        }
        let r = DetectorRunner::new(MeanScorer, 0.5, 7);
        let aware = r.run_masked_gap_aware(&series, &mask, 0.5, 7);
        assert_eq!(aware.events.len(), 1);
        assert_eq!(aware.suppressed_events, 0);
        assert_eq!(aware.events, r.run_masked(&series, &mask, 0.5).events);
    }

    #[test]
    fn short_gaps_do_not_trigger_suppression() {
        // A 2-minute hole right before the step is ordinary frame loss, not
        // a partition: below min_gap, the event stands.
        let series = step_series(30, 30);
        let mut mask = CoverageMask::new(0);
        for minute in 0..series.len() as u64 {
            if !(27..29).contains(&minute) {
                mask.mark(minute);
            }
        }
        let r = DetectorRunner::new(MeanScorer, 0.5, 7);
        let aware = r.run_masked_gap_aware(&series, &mask, 0.5, 7);
        assert_eq!(aware.events.len(), 1);
        assert_eq!(aware.suppressed_events, 0);
    }

    #[test]
    fn full_mask_gap_aware_matches_run_masked() {
        let series = step_series(10, 20);
        let mask = CoverageMask::all_present(0, series.len());
        let r = DetectorRunner::new(MeanScorer, 0.5, 7);
        assert_eq!(
            r.run_masked_gap_aware(&series, &mask, 0.8, 7),
            r.run_masked(&series, &mask, 0.8)
        );
    }

    #[test]
    fn gap_breaks_persistence_run() {
        // Step at minute 10; persistence 7 with window width 4 ⇒ declaration
        // needs 7 consecutive scoreable windows after onset. Punch a hole in
        // the middle of that run: the declaration must come later than with
        // a full mask (the run restarts after the gap).
        let series = step_series(10, 30);
        let full = CoverageMask::all_present(0, series.len());
        let mut holed = CoverageMask::new(0);
        for minute in 0..series.len() as u64 {
            if !(16..=17).contains(&minute) {
                holed.mark(minute);
            }
        }
        let r = DetectorRunner::new(MeanScorer, 0.5, 7);
        let clean = r.run_masked(&series, &full, 0.95);
        let degraded = r.run_masked(&series, &holed, 0.95);
        assert_eq!(clean.events.len(), 1);
        assert_eq!(degraded.events.len(), 1);
        assert!(degraded.skipped_windows > 0);
        assert!(
            degraded.events[0].declared_at > clean.events[0].declared_at,
            "gap must delay the declaration ({} vs {})",
            degraded.events[0].declared_at,
            clean.events[0].declared_at
        );
    }
}
