//! Detector abstraction and the sliding-window driver.
//!
//! Every method in the paper's evaluation "took a time window of x(i), …,
//! x(i+W) as its input" and "the time window moves forward every minute"
//! (§4.1). [`WindowScorer`] is that pure function; [`DetectorRunner`] adds
//! the operational policy: a declaration threshold, the 7-minute persistence
//! rule that separates level shifts and ramps from one-off events, and
//! re-arming so that one behaviour change produces one event.

use funnel_timeseries::series::{MinuteBin, TimeSeries};
use funnel_timeseries::window::SlidingWindows;

/// A pure window → change-score function.
pub trait WindowScorer {
    /// The window width `W` this scorer expects.
    fn window_len(&self) -> usize;

    /// Scores one window of exactly [`WindowScorer::window_len`] samples;
    /// higher means "more evidence of a behaviour change at/near the end of
    /// this window".
    fn score(&self, window: &[f64]) -> f64;

    /// A short name for tables and logs.
    fn name(&self) -> &'static str;
}

/// A declared behaviour change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangeEvent {
    /// Absolute minute at which the change was *declared* (the decision
    /// minute of the window that completed the persistence run).
    pub declared_at: MinuteBin,
    /// Absolute minute of the first window in the persistent run — the
    /// detector's estimate of when the change became visible.
    pub first_exceeded_at: MinuteBin,
    /// Peak score observed during the persistent run.
    pub peak_score: f64,
}

/// Threshold + persistence + re-arm driver around a [`WindowScorer`].
#[derive(Debug, Clone)]
pub struct DetectorRunner<S> {
    scorer: S,
    threshold: f64,
    persistence: usize,
}

impl<S: WindowScorer> DetectorRunner<S> {
    /// Creates a runner declaring a change after `persistence` consecutive
    /// windows score at or above `threshold`. `persistence` is clamped to a
    /// minimum of 1.
    pub fn new(scorer: S, threshold: f64, persistence: usize) -> Self {
        Self { scorer, threshold, persistence: persistence.max(1) }
    }

    /// The wrapped scorer.
    pub fn scorer(&self) -> &S {
        &self.scorer
    }

    /// The declaration threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The persistence requirement in windows (= minutes at 1-min bins).
    pub fn persistence(&self) -> usize {
        self.persistence
    }

    /// Runs the detector over a whole series, returning every declared
    /// change. After a declaration the runner re-arms once the score falls
    /// below threshold, so a single long-lived shift yields a single event.
    pub fn run(&self, series: &TimeSeries) -> Vec<ChangeEvent> {
        let mut events = Vec::new();
        let mut run_len = 0usize;
        let mut run_start: MinuteBin = 0;
        let mut run_peak = 0.0f64;
        let mut armed = true;

        for w in SlidingWindows::new(series, self.scorer.window_len()) {
            let s = self.scorer.score(w.values);
            if s >= self.threshold {
                if run_len == 0 {
                    run_start = w.decision_minute;
                    run_peak = s;
                } else {
                    run_peak = run_peak.max(s);
                }
                run_len += 1;
                if armed && run_len >= self.persistence {
                    events.push(ChangeEvent {
                        declared_at: w.decision_minute,
                        first_exceeded_at: run_start,
                        peak_score: run_peak,
                    });
                    armed = false;
                }
            } else {
                run_len = 0;
                armed = true;
            }
        }
        events
    }

    /// Convenience: whether the series contains at least one declared
    /// change, and if so the first event.
    pub fn first_change(&self, series: &TimeSeries) -> Option<ChangeEvent> {
        // Early-exit variant of `run` (stops at the first declaration).
        let mut run_len = 0usize;
        let mut run_start: MinuteBin = 0;
        let mut run_peak = 0.0f64;
        for w in SlidingWindows::new(series, self.scorer.window_len()) {
            let s = self.scorer.score(w.values);
            if s >= self.threshold {
                if run_len == 0 {
                    run_start = w.decision_minute;
                    run_peak = s;
                } else {
                    run_peak = run_peak.max(s);
                }
                run_len += 1;
                if run_len >= self.persistence {
                    return Some(ChangeEvent {
                        declared_at: w.decision_minute,
                        first_exceeded_at: run_start,
                        peak_score: run_peak,
                    });
                }
            } else {
                run_len = 0;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scores 1.0 whenever the window mean exceeds 5, else 0.
    struct MeanScorer;
    impl WindowScorer for MeanScorer {
        fn window_len(&self) -> usize {
            4
        }
        fn score(&self, window: &[f64]) -> f64 {
            let m = window.iter().sum::<f64>() / window.len() as f64;
            if m > 5.0 {
                1.0
            } else {
                0.0
            }
        }
        fn name(&self) -> &'static str {
            "mean"
        }
    }

    fn step_series(pre: usize, post: usize) -> TimeSeries {
        let mut v = vec![0.0; pre];
        v.extend(vec![10.0; post]);
        TimeSeries::new(0, v)
    }

    #[test]
    fn persistence_filters_short_excursions() {
        // A 4-sample bump yields exactly 3 consecutive windows with mean > 5
        // (window width 4); persistence 5 ⇒ no event.
        let mut v = vec![0.0; 10];
        v.extend(vec![10.0; 4]);
        v.extend(vec![0.0; 10]);
        let series = TimeSeries::new(0, v);
        let r = DetectorRunner::new(MeanScorer, 0.5, 5);
        assert!(r.run(&series).is_empty());
        // Persistence 1 catches it.
        let r1 = DetectorRunner::new(MeanScorer, 0.5, 1);
        assert_eq!(r1.run(&series).len(), 1);
    }

    #[test]
    fn declaration_time_includes_persistence_wait() {
        let series = step_series(10, 20);
        let r = DetectorRunner::new(MeanScorer, 0.5, 7);
        let events = r.run(&series);
        assert_eq!(events.len(), 1);
        let e = events[0];
        // First window with mean > 5: some minutes after onset (10);
        // declaration is persistence-1 windows later.
        assert_eq!(e.declared_at, e.first_exceeded_at + 6);
        assert!(e.peak_score >= 0.5);
    }

    #[test]
    fn rearm_produces_one_event_per_excursion() {
        let mut v = vec![0.0; 10];
        v.extend(vec![10.0; 10]);
        v.extend(vec![0.0; 10]);
        v.extend(vec![10.0; 10]);
        v.extend(vec![0.0; 5]);
        let series = TimeSeries::new(0, v);
        let r = DetectorRunner::new(MeanScorer, 0.5, 3);
        assert_eq!(r.run(&series).len(), 2);
    }

    #[test]
    fn long_shift_is_single_event() {
        let series = step_series(10, 50);
        let r = DetectorRunner::new(MeanScorer, 0.5, 7);
        assert_eq!(r.run(&series).len(), 1);
    }

    #[test]
    fn first_change_matches_run() {
        let series = step_series(10, 20);
        let r = DetectorRunner::new(MeanScorer, 0.5, 7);
        assert_eq!(r.first_change(&series), r.run(&series).first().copied());
        let quiet = TimeSeries::new(0, vec![0.0; 30]);
        assert_eq!(r.first_change(&quiet), None);
    }

    #[test]
    fn persistence_clamped_to_one() {
        let r = DetectorRunner::new(MeanScorer, 0.5, 0);
        assert_eq!(r.persistence(), 1);
    }
}
