//! Week-over-week (period-over-period) change detection.
//!
//! The related-work baseline of Chen et al. (SIGCOMM 2013), cited by the
//! paper for seasonal time series (§6): compare the most recent samples
//! with the *same clock window one season earlier* and score the robust
//! discrepancy. It handles seasonality by construction but needs a full
//! period of history per window and reacts slowly to anything the period
//! does not explain — the contrast that motivates FUNNEL's SST + DiD split.
//!
//! Implemented as a [`WindowScorer`] whose window spans one full period
//! plus the comparison span: the leading `compare_span` samples are "the
//! same window last period", the trailing `compare_span` samples are "now".

use crate::detector::WindowScorer;
use funnel_timeseries::stats::{mad, median};

/// Period-over-period detector.
#[derive(Debug, Clone)]
pub struct WowDetector {
    period: usize,
    compare_span: usize,
}

impl WowDetector {
    /// Creates a detector comparing `compare_span`-minute windows across a
    /// `period` (e.g. 1440 for day-over-day, 10080 for week-over-week).
    ///
    /// # Panics
    ///
    /// Panics if `compare_span == 0` or `compare_span > period`.
    pub fn new(period: usize, compare_span: usize) -> Self {
        assert!(compare_span > 0, "compare span must be positive");
        assert!(
            compare_span <= period,
            "compare span cannot exceed the period"
        );
        Self {
            period,
            compare_span,
        }
    }

    /// Day-over-day with a 30-minute comparison window.
    pub fn day_over_day() -> Self {
        Self::new(funnel_timeseries::MINUTES_PER_DAY, 30)
    }
}

impl WindowScorer for WowDetector {
    fn window_len(&self) -> usize {
        self.period + self.compare_span
    }

    /// Robust z-distance between "now" and "same time last period":
    /// `|median_now − median_then| / max(MAD_now, MAD_then, ε)`.
    fn score(&self, window: &[f64]) -> f64 {
        assert_eq!(
            window.len(),
            self.window_len(),
            "WoW window length mismatch"
        );
        let then = &window[..self.compare_span];
        let now = &window[window.len() - self.compare_span..];
        let scale = mad(then).max(mad(now)).max(1e-9);
        (median(now) - median(then)).abs() / scale
    }

    fn name(&self) -> &'static str {
        "WoW"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funnel_timeseries::MINUTES_PER_DAY;

    /// Strongly seasonal signal: same value at the same clock minute.
    fn diurnal(minute: usize) -> f64 {
        let phase = (minute % MINUTES_PER_DAY) as f64 / MINUTES_PER_DAY as f64;
        1000.0 + 400.0 * (phase * std::f64::consts::TAU).sin()
    }

    #[test]
    fn pure_seasonality_scores_near_zero() {
        let d = WowDetector::day_over_day();
        // Steep morning ramp, but identical to yesterday's.
        let start = 6 * 60;
        let w: Vec<f64> = (0..d.window_len())
            .map(|i| diurnal(start + i) + 0.5 * ((i % 7) as f64 - 3.0))
            .collect();
        let s = d.score(&w);
        assert!(s < 3.0, "seasonal score {s}");
    }

    #[test]
    fn level_shift_on_seasonal_signal_scores_high() {
        let d = WowDetector::day_over_day();
        let start = 6 * 60;
        let shift_at = d.window_len() - 20; // 20 minutes ago
        let w: Vec<f64> = (0..d.window_len())
            .map(|i| {
                diurnal(start + i)
                    + 0.5 * ((i % 7) as f64 - 3.0)
                    + if i >= shift_at { -200.0 } else { 0.0 }
            })
            .collect();
        let s = d.score(&w);
        assert!(s > 10.0, "shift score {s}");
    }

    #[test]
    fn needs_a_full_period_of_history() {
        let d = WowDetector::day_over_day();
        assert_eq!(d.window_len(), 1440 + 30);
        assert_eq!(d.name(), "WoW");
    }

    #[test]
    fn period_drift_fools_wow() {
        // A pattern whose *period* changed (e.g. a holiday): WoW fires even
        // though nothing is wrong with the service — the weakness that
        // keeps it a baseline rather than the answer.
        let d = WowDetector::day_over_day();
        let w: Vec<f64> = (0..d.window_len())
            .map(|i| {
                // "Yesterday" trough, "today" peak at the same clock time.
                if i < 30 {
                    600.0 + (i % 5) as f64
                } else {
                    1400.0 + (i % 5) as f64
                }
            })
            .collect();
        assert!(d.score(&w) > 10.0);
    }

    #[test]
    #[should_panic(expected = "compare span")]
    fn zero_span_rejected() {
        let _ = WowDetector::new(1440, 0);
    }
}
