//! Detection-delay accounting (paper §4.4).
//!
//! "Suppose that a method correctly detects … a KPI change firstly when the
//! input time window is x(i+1), …, x(i+w), and the KPI change starts at time
//! c, then the detection delay is (w − c) minutes." I.e. the delay is the
//! distance from the ground-truth onset to the *end of the first window*
//! that correctly declares the change. Declarations strictly before the
//! onset are false positives, not detections, and do not count.

use crate::detector::ChangeEvent;
use funnel_timeseries::series::MinuteBin;

/// Outcome of matching declared events against a ground-truth onset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayOutcome {
    /// Change detected `minutes` after its onset.
    Detected {
        /// Detection delay in minutes.
        minutes: u64,
    },
    /// No event at or after the onset.
    Missed,
}

impl DelayOutcome {
    /// The delay in minutes, if detected.
    pub fn minutes(&self) -> Option<u64> {
        match self {
            DelayOutcome::Detected { minutes } => Some(*minutes),
            DelayOutcome::Missed => None,
        }
    }
}

/// Matches `events` (any order) against a ground-truth `onset`, returning
/// the delay of the earliest event declared at or after the onset.
pub fn detection_delay(events: &[ChangeEvent], onset: MinuteBin) -> DelayOutcome {
    events
        .iter()
        .filter(|e| e.declared_at >= onset)
        .map(|e| e.declared_at - onset)
        .min()
        .map_or(DelayOutcome::Missed, |minutes| DelayOutcome::Detected {
            minutes,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: MinuteBin) -> ChangeEvent {
        ChangeEvent {
            declared_at: at,
            first_exceeded_at: at,
            peak_score: 1.0,
        }
    }

    #[test]
    fn earliest_valid_event_wins() {
        let events = [ev(50), ev(45), ev(70)];
        assert_eq!(
            detection_delay(&events, 40),
            DelayOutcome::Detected { minutes: 5 }
        );
    }

    #[test]
    fn pre_onset_events_are_ignored() {
        let events = [ev(10), ev(20)];
        assert_eq!(detection_delay(&events, 30), DelayOutcome::Missed);
        let events = [ev(10), ev(35)];
        assert_eq!(
            detection_delay(&events, 30),
            DelayOutcome::Detected { minutes: 5 }
        );
    }

    #[test]
    fn empty_events_is_missed() {
        assert_eq!(detection_delay(&[], 5), DelayOutcome::Missed);
        assert_eq!(DelayOutcome::Missed.minutes(), None);
    }

    #[test]
    fn zero_delay_when_declared_at_onset() {
        assert_eq!(
            detection_delay(&[ev(30)], 30),
            DelayOutcome::Detected { minutes: 0 }
        );
    }
}
