//! The streaming engine's headline contracts.
//!
//! * Streaming verdicts are **byte-identical** to the batch pipeline on
//!   every key that was neither shed nor stale, at every worker count.
//! * Late frames heal through the backfill path and still converge on the
//!   batch verdicts.
//! * Load shedding is a pure function of the seed — two runs shed the same
//!   set — and every shed work unit completes as `Inconclusive` flagged
//!   `LoadShed` instead of stalling or guessing.
//! * The verdict channel drops (and counts) rather than blocking.

use funnel_core::quality::QualityIssue;
use funnel_core::stream::StreamAssessment;
use funnel_core::{FunnelConfig, StreamConfig, StreamEngine, Verdict};
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::kpi::KpiKind;
use funnel_sim::live::LiveFeed;
use funnel_sim::store::{Measurement, MetricStore};
use funnel_sim::world::{SimConfig, World, WorldBuilder};
use funnel_sst::SstConfig;
use funnel_topology::change::{ChangeId, ChangeKind};
use funnel_topology::model::ServiceId;
use std::collections::BTreeMap;

const DURATION: u64 = 2880;
const CHANGE_MINUTE: u64 = 1700;

fn test_config(workers: usize) -> FunnelConfig {
    let mut c = FunnelConfig::paper_default();
    c.sst = SstConfig::quick();
    c.assess.workers = workers;
    c
}

fn stream_config(funnel: &FunnelConfig) -> StreamConfig {
    let mut s = StreamConfig::paired_with(funnel);
    s.ring_capacity = StreamConfig::capacity_for(funnel, DURATION);
    s
}

fn shifted_world() -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig {
        seed: 5,
        start: 0,
        duration: DURATION as usize,
    });
    let svc = b.add_service("prod.stream", 3).unwrap();
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        9.0,
    );
    let id = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            2,
            CHANGE_MINUTE,
            effect,
            "stream equivalence",
        )
        .unwrap();
    (b.build(), id)
}

fn service_kinds(world: &World) -> BTreeMap<ServiceId, Vec<KpiKind>> {
    world
        .topology()
        .services()
        .map(|(id, _)| (id, world.kinds_of_service(id).to_vec()))
        .collect()
}

/// Replays `feed` into a fresh store — the batch pipeline's input, built
/// from the exact same measurement sequence the engine saw.
fn replay_feed(feed: &LiveFeed) -> MetricStore {
    let store = MetricStore::new();
    for (_, batch) in feed.arrivals() {
        for m in batch {
            store.append(m.key, m.minute, m.value);
        }
    }
    store
}

fn batch_items(world: &World, change: ChangeId, feed: &LiveFeed, workers: usize) -> String {
    let record = world.change_log().get(change).unwrap().clone();
    let kinds = service_kinds(world);
    let snapshot = replay_feed(feed).snapshot();
    let batch = funnel_core::Funnel::new(test_config(workers))
        .assess_change_with(&snapshot, world.topology(), &record, &|svc| {
            kinds.get(&svc).cloned().unwrap_or_default()
        })
        .unwrap();
    format!("{:?}", batch.items)
}

fn run_engine(
    world: &World,
    change: ChangeId,
    funnel_cfg: FunnelConfig,
    stream_cfg: StreamConfig,
    feed: &LiveFeed,
) -> (StreamEngine, Vec<StreamAssessment>) {
    let record = world.change_log().get(change).unwrap().clone();
    let mut engine = StreamEngine::new(funnel_cfg, stream_cfg, service_kinds(world));
    engine.track_change(world.topology(), record).unwrap();
    let mut completed = Vec::new();
    for (minute, batch) in feed.arrivals() {
        for &m in batch {
            engine.offer(m);
        }
        completed.extend(engine.tick(minute).completed);
    }
    (engine, completed)
}

#[test]
fn streaming_matches_batch_at_every_worker_count() {
    let (world, change) = shifted_world();
    let feed = LiveFeed::from_store(&world.materialize().unwrap());
    let reference = batch_items(&world, change, &feed, 1);
    for workers in [1usize, 3, 8] {
        let funnel_cfg = test_config(workers);
        let mut stream_cfg = stream_config(&funnel_cfg);
        stream_cfg.workers = workers;
        let (engine, completed) = run_engine(&world, change, funnel_cfg, stream_cfg, &feed);
        assert_eq!(completed.len(), 1, "workers={workers}");
        let got = completed.first().unwrap();
        assert!(got.shed.is_empty(), "workers={workers}");
        assert!(got.stale.is_empty(), "workers={workers}");
        assert_eq!(
            format!("{:?}", got.items),
            reference,
            "streaming != batch at workers={workers}"
        );
        assert_eq!(engine.stats().shed, 0);
        // The shifted KPI should actually have been caught live.
        assert!(got.detection_latency.is_some(), "workers={workers}");
        assert_eq!(
            batch_items(&world, change, &feed, workers),
            reference,
            "batch itself drifted at workers={workers}"
        );
    }
}

#[test]
fn late_frames_heal_through_backfill() {
    let (world, change) = shifted_world();
    let feed = LiveFeed::from_store(&world.materialize().unwrap());
    let reference = batch_items(&world, change, &feed, 1);

    // Hold back every frame of minutes [200, 260) and deliver each 30
    // minutes late — out of order, but all healed long before the change's
    // assessment window closes.
    let mut arrivals: BTreeMap<u64, Vec<Measurement>> = BTreeMap::new();
    for (minute, batch) in feed.arrivals() {
        for &m in batch {
            let when = if (200..260).contains(&m.minute) {
                minute + 30
            } else {
                minute
            };
            arrivals.entry(when).or_default().push(m);
        }
    }

    let funnel_cfg = test_config(1);
    let stream_cfg = stream_config(&funnel_cfg);
    let record = world.change_log().get(change).unwrap().clone();
    let mut engine = StreamEngine::new(funnel_cfg, stream_cfg, service_kinds(&world));
    engine.track_change(world.topology(), record).unwrap();
    let mut completed = Vec::new();
    for (&minute, batch) in &arrivals {
        for &m in batch {
            engine.offer(m);
        }
        completed.extend(engine.tick(minute).completed);
    }

    assert!(
        engine.stats().late_backfilled > 0,
        "the late path never fired"
    );
    assert_eq!(completed.len(), 1);
    let got = completed.first().unwrap();
    assert!(got.shed.is_empty());
    assert_eq!(
        format!("{:?}", got.items),
        reference,
        "backfilled stream diverged from batch"
    );
}

#[test]
fn shedding_is_deterministic_and_flagged() {
    let (world, change) = shifted_world();
    let feed = LiveFeed::from_store(&world.materialize().unwrap());
    let reference = batch_items(&world, change, &feed, 1);

    let run = || {
        let funnel_cfg = test_config(1);
        let mut stream_cfg = stream_config(&funnel_cfg);
        stream_cfg.tick_budget = 10; // far fewer folds than keys per tick
        stream_cfg.shed_seed = 77;
        run_engine(&world, change, funnel_cfg, stream_cfg, &feed)
    };
    let (engine_a, completed_a) = run();
    let (engine_b, _) = run();

    assert!(engine_a.stats().shed > 0, "budget never triggered shedding");
    assert_eq!(
        engine_a.shed_log(),
        engine_b.shed_log(),
        "same seed must shed the same set"
    );

    assert_eq!(completed_a.len(), 1);
    let got = completed_a.first().unwrap();
    assert!(!got.shed.is_empty(), "no work key was shed in-window");
    for item in &got.items {
        if got.shed.contains(&item.key) {
            assert_eq!(
                item.verdict,
                Verdict::Inconclusive {
                    awaiting_backfill: false
                },
                "{:?}",
                item.key
            );
            assert!(
                item.quality.report.issues.contains(&QualityIssue::LoadShed),
                "{:?}",
                item.key
            );
        }
    }
    // Non-shed, non-stale keys still match the batch items byte-for-byte.
    let batch_by_key: BTreeMap<String, String> = {
        let record = world.change_log().get(change).unwrap().clone();
        let kinds = service_kinds(&world);
        let snapshot = replay_feed(&feed).snapshot();
        funnel_core::Funnel::new(test_config(1))
            .assess_change_with(&snapshot, world.topology(), &record, &|svc| {
                kinds.get(&svc).cloned().unwrap_or_default()
            })
            .unwrap()
            .items
            .into_iter()
            .map(|i| (format!("{:?}", i.key), format!("{i:?}")))
            .collect()
    };
    let mut survivors = 0;
    for item in &got.items {
        if got.shed.contains(&item.key) || got.stale.contains(&item.key) {
            continue;
        }
        survivors += 1;
        assert_eq!(
            batch_by_key.get(&format!("{:?}", item.key)),
            Some(&format!("{item:?}")),
            "surviving key diverged from batch"
        );
    }
    assert!(survivors > 0, "everything was shed — budget too small");
    let _ = reference;
}

#[test]
fn verdict_channel_drops_instead_of_blocking() {
    let (world, change) = shifted_world();
    let feed = LiveFeed::from_store(&world.materialize().unwrap());
    let funnel_cfg = test_config(1);
    let mut stream_cfg = stream_config(&funnel_cfg);
    stream_cfg.verdict_capacity = 2; // nobody drains it in this test
    let (engine, completed) = run_engine(&world, change, funnel_cfg, stream_cfg, &feed);
    assert_eq!(completed.len(), 1, "engine stalled on a full channel");
    let items = completed.first().unwrap().items.len();
    assert!(items > 2);
    let stats = engine.stats();
    assert_eq!(stats.verdicts, 2);
    assert_eq!(stats.verdicts_dropped as usize, items - 2);
    assert_eq!(engine.verdicts().len(), 2);
}

#[test]
fn overload_stays_bounded_and_makes_progress() {
    let (world, change) = shifted_world();
    let feed = LiveFeed::from_store(&world.materialize().unwrap());
    let funnel_cfg = test_config(1);
    let mut stream_cfg = stream_config(&funnel_cfg);
    let keys = replay_feed(&feed).keys().len();
    stream_cfg.tick_budget = keys as u64; // sized for 1× ingest
    let record = world.change_log().get(change).unwrap().clone();
    let mut engine = StreamEngine::new(funnel_cfg, stream_cfg.clone(), service_kinds(&world));
    engine.track_change(world.topology(), record).unwrap();

    // 10× overload: ten minutes of frames land between consecutive ticks.
    let mut completed = Vec::new();
    let mut pending = 0u64;
    let mut last = 0;
    for (minute, batch) in feed.arrivals() {
        for &m in batch {
            engine.offer(m);
        }
        pending += 1;
        last = minute;
        if pending == 10 {
            completed.extend(engine.tick(minute).completed);
            pending = 0;
        }
    }
    completed.extend(engine.tick(last).completed);

    let stats = engine.stats();
    assert!(stats.shed > 0, "10x overload never shed");
    assert_eq!(completed.len(), 1, "the change never completed");
    // Resident window memory is exactly the configured bound.
    assert_eq!(
        engine.window_bytes(),
        keys * stream_cfg.ring_capacity * 9,
        "window memory drifted from the accounting bound"
    );
    assert_eq!(stats.peak_window_bytes, engine.window_bytes());
}
