//! The diagnosis stage's headline contracts.
//!
//! * **Deterministic** — the diagnosis report is byte-identical at 1, 3,
//!   and 8 assessment workers, over degraded (lossy-replay) telemetry.
//! * **Read-only** — enabling the stage leaves the assessment itself
//!   byte-identical to a diag-off run, on both the batch and the
//!   streaming path.
//! * **Bias-aware** — a control pool that was already shifted before the
//!   deployment is flagged `population_mismatch` while the DiD verdict
//!   stays `caused`; an honest pool stays `clean`.
//! * **Streaming parity** — the engine's completion hook attaches the same
//!   diagnosis the batch path computes over an equivalent snapshot.

use funnel_core::pipeline::{ChangeAssessment, Funnel};
use funnel_core::{enumerate_work_units, DiagConfig, DiagReport, FunnelConfig, KpiSource};
use funnel_core::{StreamConfig, StreamEngine};
use funnel_diag::BiasFlag;
use funnel_sim::agent::{replay_with_faults, FaultPlan};
use funnel_sim::effect::{ChangeEffect, EffectScope};
use funnel_sim::kpi::{KpiKey, KpiKind};
use funnel_sim::live::LiveFeed;
use funnel_sim::world::{SimConfig, World, WorldBuilder};
use funnel_sim::MetricStore;
use funnel_sst::SstConfig;
use funnel_timeseries::series::TimeSeries;
use funnel_topology::change::{ChangeId, ChangeKind};
use funnel_topology::impact::{identify_impact_set, Entity};
use funnel_topology::model::ServiceId;
use std::collections::BTreeMap;

/// A dark-launch regression over a fleet large enough for a control pool.
fn lossy_world() -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig::days(17, 8));
    let svc = b.add_service("prod.search", 8).unwrap();
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        60.0,
    );
    let minute = 7 * 1440 + 9 * 60;
    let id = b
        .deploy_change(ChangeKind::Upgrade, svc, 2, minute, effect, "diag chaos")
        .unwrap();
    (b.build(), id)
}

fn funnel_with(workers: usize, diagnose: bool) -> Funnel {
    let mut config = FunnelConfig::paper_default();
    config.assess.workers = workers;
    if diagnose {
        config.diagnose = DiagConfig::on();
    }
    Funnel::new(config)
}

fn assess_and_diagnose(
    funnel: &Funnel,
    source: &(impl KpiSource + Sync),
    world: &World,
    change: ChangeId,
) -> (ChangeAssessment, Option<DiagReport>) {
    let record = world.change_log().get(change).unwrap();
    let assessment = funnel
        .assess_change_with(source, world.topology(), record, &|s| {
            world.kinds_of_service(s).to_vec()
        })
        .unwrap();
    let diagnosis = funnel.diagnose(source, world.topology(), record, &assessment);
    (assessment, diagnosis)
}

#[test]
fn diag_report_is_byte_identical_across_worker_counts() {
    let (world, change) = lossy_world();
    let store = MetricStore::new();
    replay_with_faults(&world, &store, 4, FaultPlan::lossy(2026, 0.10)).unwrap();

    let (_, baseline) = assess_and_diagnose(&funnel_with(1, true), &store, &world, change);
    let baseline = baseline.unwrap().to_json();
    assert!(baseline.contains("\"schema_version\": 1"));
    for workers in [3usize, 8] {
        let (_, again) = assess_and_diagnose(&funnel_with(workers, true), &store, &world, change);
        assert_eq!(
            baseline,
            again.unwrap().to_json(),
            "diagnosis diverged at {workers} workers"
        );
    }
}

#[test]
fn diagnosis_is_read_only_over_the_assessment() {
    let (world, change) = lossy_world();
    let store = MetricStore::new();
    replay_with_faults(&world, &store, 4, FaultPlan::lossy(2026, 0.10)).unwrap();

    let (plain, none) = assess_and_diagnose(&funnel_with(1, false), &store, &world, change);
    assert!(none.is_none(), "disabled stage must return no report");
    let (diagnosed, report) = assess_and_diagnose(&funnel_with(1, true), &store, &world, change);
    assert!(report.is_some(), "enabled stage must report");
    assert_eq!(
        format!("{:?}", plain.items),
        format!("{:?}", diagnosed.items),
        "enabling diagnosis perturbed the assessment items"
    );
}

// ---- bias check -------------------------------------------------------

/// One fixed series per key: the bias tests need exact control over the
/// control pool's pre-change baseline.
struct MapSource {
    series: BTreeMap<KpiKey, TimeSeries>,
}

impl KpiSource for MapSource {
    fn series(&self, key: &KpiKey) -> Option<TimeSeries> {
        self.series.get(key).cloned()
    }
}

fn jitter(salt: u64, minute: u64) -> f64 {
    (minute
        .wrapping_mul(2654435761)
        .wrapping_add(salt.wrapping_mul(97))
        % 7) as f64
        * 0.5
}

fn key_salt(key: &KpiKey) -> u64 {
    let entity = match key.entity {
        Entity::Server(s) => 1000 + s.0 as u64,
        Entity::Instance(i) => 2000 + i.0 as u64,
        Entity::Service(s) => 3000 + s.0 as u64,
    };
    entity * 31 + key.kind.name().len() as u64
}

/// A +60 delay shift on the treated instances over hand-built telemetry
/// whose control instances idle at `control_level` (180 = honest pool,
/// 220 = pool that was hotter before the deployment ever landed).
fn bias_world(control_level: f64) -> (World, ChangeId, MapSource) {
    let mut b = WorldBuilder::new(SimConfig::days(9, 8));
    let svc = b.add_service("prod.pipe", 8).unwrap();
    let t0 = 8 * 1440;
    let change = b
        .deploy_change(
            ChangeKind::Upgrade,
            svc,
            2,
            t0,
            ChangeEffect::none(),
            "bias demo",
        )
        .unwrap();
    let world = b.build();

    let record = world.change_log().get(change).unwrap();
    let impact = identify_impact_set(world.topology(), record).unwrap();
    let mut keys = enumerate_work_units(&impact, record, &|s| world.kinds_of_service(s).to_vec());
    for &i in &impact.cinstances {
        for &kind in world.kinds_of_service(svc) {
            keys.push(KpiKey::new(Entity::Instance(i), kind));
        }
    }
    for &s in &impact.cservers {
        for kind in KpiKind::SERVER_KINDS {
            keys.push(KpiKey::new(Entity::Server(s), kind));
        }
    }
    keys.sort_unstable();
    keys.dedup();

    let start = t0 - 300;
    let mut series = BTreeMap::new();
    for key in keys {
        let treated_delay = key.kind == KpiKind::PageViewResponseDelay
            && matches!(key.entity, Entity::Instance(i) if impact.tinstances.contains(&i));
        let control = match key.entity {
            Entity::Instance(i) => impact.cinstances.contains(&i),
            Entity::Server(s) => impact.cservers.contains(&s),
            Entity::Service(_) => false,
        };
        let level = if control { control_level } else { 180.0 };
        let salt = key_salt(&key);
        let values: Vec<f64> = (start..t0 + 101)
            .map(|m| {
                let shift = if treated_delay && m >= t0 { 60.0 } else { 0.0 };
                level + shift + jitter(salt, m)
            })
            .collect();
        series.insert(key, TimeSeries::new(start, values));
    }
    (world, change, MapSource { series })
}

#[test]
fn skewed_control_pool_flags_population_mismatch() {
    let funnel = funnel_with(1, true);
    let (world, change, source) = bias_world(220.0);
    let (assessment, report) = assess_and_diagnose(&funnel, &source, &world, change);
    let report = report.unwrap();
    // The DiD contrast subtracts the constant offset, so the verdict is
    // still `caused` — the bias check is the only thing that notices the
    // counterfactual was never exchangeable with the treated group.
    assert!(assessment.has_impact());
    assert!(report.mismatch_count() > 0, "skewed pool not flagged");
    for item in &report.items {
        assert_eq!(
            item.bias.flag,
            BiasFlag::PopulationMismatch,
            "{}",
            item.label
        );
        assert!(item.bias.median_divergence > 3.0, "{}", item.label);
    }
    assert!(report.to_json().contains("population_mismatch"));
}

#[test]
fn honest_control_pool_stays_clean() {
    let funnel = funnel_with(1, true);
    let (world, change, source) = bias_world(180.0);
    let (assessment, report) = assess_and_diagnose(&funnel, &source, &world, change);
    let report = report.unwrap();
    assert!(assessment.has_impact());
    assert_eq!(report.mismatch_count(), 0, "honest pool wrongly flagged");
    for item in &report.items {
        assert_eq!(item.bias.flag, BiasFlag::Clean, "{}", item.label);
        assert!(item.bias.members > 0);
    }
}

// ---- streaming parity -------------------------------------------------

const STREAM_DURATION: u64 = 2880;

fn stream_world() -> (World, ChangeId) {
    let mut b = WorldBuilder::new(SimConfig {
        seed: 5,
        start: 0,
        duration: STREAM_DURATION as usize,
    });
    let svc = b.add_service("prod.stream", 4).unwrap();
    let effect = ChangeEffect::none().with_level_shift(
        KpiKind::PageViewResponseDelay,
        EffectScope::TreatedInstances,
        9.0,
    );
    let id = b
        .deploy_change(ChangeKind::Upgrade, svc, 2, 1700, effect, "stream diag")
        .unwrap();
    (b.build(), id)
}

fn service_kinds(world: &World) -> BTreeMap<ServiceId, Vec<KpiKind>> {
    world
        .topology()
        .services()
        .map(|(id, _)| (id, world.kinds_of_service(id).to_vec()))
        .collect()
}

#[test]
fn stream_completion_attaches_the_batch_diagnosis() {
    let (world, change) = stream_world();
    let mut funnel_cfg = FunnelConfig::paper_default();
    funnel_cfg.sst = SstConfig::quick();
    funnel_cfg.diagnose = DiagConfig::on();
    let mut stream_cfg = StreamConfig::paired_with(&funnel_cfg);
    stream_cfg.ring_capacity = StreamConfig::capacity_for(&funnel_cfg, STREAM_DURATION);

    let feed = LiveFeed::from_store(&world.materialize().unwrap());
    let record = world.change_log().get(change).unwrap().clone();
    let mut engine = StreamEngine::new(funnel_cfg.clone(), stream_cfg, service_kinds(&world));
    engine
        .track_change(world.topology(), record.clone())
        .unwrap();
    let mut completed = Vec::new();
    for (minute, batch) in feed.arrivals() {
        for &m in batch {
            engine.offer(m);
        }
        completed.extend(engine.tick(minute).completed);
    }
    assert_eq!(completed.len(), 1);
    let streamed = completed.pop().unwrap();
    let stream_diag = streamed.diagnosis.expect("enabled stage must attach");
    assert!(
        !stream_diag.items.is_empty(),
        "regression must be diagnosed"
    );

    // The batch path over the same measurement sequence produces the same
    // diagnosis bytes (streaming ≡ batch extends to the explanation layer).
    let store = MetricStore::new();
    for (_, batch) in feed.arrivals() {
        for m in batch {
            store.append(m.key, m.minute, m.value);
        }
    }
    let snapshot = store.snapshot();
    let funnel = Funnel::new(funnel_cfg);
    let kinds = service_kinds(&world);
    let batch = funnel
        .assess_change_with(&snapshot, world.topology(), &record, &|svc| {
            kinds.get(&svc).cloned().unwrap_or_default()
        })
        .unwrap();
    let batch_diag = funnel
        .diagnose(&snapshot, world.topology(), &record, &batch)
        .unwrap();
    assert_eq!(stream_diag.to_json(), batch_diag.to_json());

    // Diag-off engine run: identical items, no diagnosis attached.
    let mut off_cfg = FunnelConfig::paper_default();
    off_cfg.sst = SstConfig::quick();
    let mut off_stream = StreamConfig::paired_with(&off_cfg);
    off_stream.ring_capacity = StreamConfig::capacity_for(&off_cfg, STREAM_DURATION);
    let mut off_engine = StreamEngine::new(off_cfg, off_stream, service_kinds(&world));
    off_engine.track_change(world.topology(), record).unwrap();
    let mut off_completed = Vec::new();
    for (minute, batch) in feed.arrivals() {
        for &m in batch {
            off_engine.offer(m);
        }
        off_completed.extend(off_engine.tick(minute).completed);
    }
    assert_eq!(off_completed.len(), 1);
    let off = off_completed.pop().unwrap();
    assert!(off.diagnosis.is_none());
    assert_eq!(
        format!("{:?}", off.items),
        format!("{:?}", streamed.items),
        "enabling diagnosis perturbed the streaming items"
    );
}
